"""FIFO buffer model.

Tasks communicate over fixed-capacity FIFO buffers.  A buffer ``b`` from task
``w_a`` to task ``w_b`` is placed in memory ``ν(b)``, has containers of size
``ζ(b)`` and starts with ``ι(b)`` initially filled containers.  Its capacity
``γ(b)`` — the total number of containers — is an *output* of the joint
budget/buffer computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ModelError


@dataclass(frozen=True)
class Buffer:
    """A FIFO buffer between two tasks of the same task graph.

    Attributes
    ----------
    name:
        Unique identifier (unique within the whole configuration).
    source, target:
        Names of the producing and consuming tasks.  Self-edges
        (``source == target``) are allowed and model cyclic state of a task.
    memory:
        Name of the memory ``ν(b)`` the buffer is placed in.
    container_size:
        Size ``ζ(b)`` of one container, in the memory's capacity unit.
    initial_tokens:
        Number ``ι(b)`` of initially *filled* containers.
    capacity_weight:
        Coefficient ``b(b)`` of this buffer's capacity in the objective
        function of the joint optimisation.
    min_capacity, max_capacity:
        Optional bounds on the computed capacity ``γ(b)`` in containers.  The
        capacity always has to be at least ``max(initial_tokens, 1)``.
    """

    name: str
    source: str
    target: str
    memory: str
    container_size: float = 1.0
    initial_tokens: int = 0
    capacity_weight: float = 1.0
    min_capacity: Optional[int] = None
    max_capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("buffer name must be non-empty")
        if not self.source or not self.target:
            raise ModelError(
                f"buffer {self.name!r} must connect two tasks (source and target)"
            )
        if not self.memory:
            raise ModelError(f"buffer {self.name!r} must be placed in a memory")
        if self.container_size <= 0.0:
            raise ModelError(
                f"buffer {self.name!r} needs a positive container size, got "
                f"{self.container_size!r}"
            )
        if self.initial_tokens < 0:
            raise ModelError(
                f"buffer {self.name!r} has a negative number of initial tokens"
            )
        if self.capacity_weight < 0.0:
            raise ModelError(f"buffer {self.name!r} has a negative capacity weight")
        if self.min_capacity is not None and self.min_capacity < 1:
            raise ModelError(f"buffer {self.name!r}: min_capacity must be at least 1")
        if self.max_capacity is not None and self.max_capacity < 1:
            raise ModelError(f"buffer {self.name!r}: max_capacity must be at least 1")
        if (
            self.min_capacity is not None
            and self.max_capacity is not None
            and self.min_capacity > self.max_capacity
        ):
            raise ModelError(
                f"buffer {self.name!r}: min_capacity {self.min_capacity} exceeds "
                f"max_capacity {self.max_capacity}"
            )
        if self.max_capacity is not None and self.max_capacity < self.initial_tokens:
            raise ModelError(
                f"buffer {self.name!r}: max_capacity {self.max_capacity} is smaller "
                f"than the number of initially filled containers {self.initial_tokens}"
            )

    @property
    def smallest_feasible_capacity(self) -> int:
        """Smallest capacity that can hold the initial tokens and one transfer."""
        lower = max(1, self.initial_tokens)
        if self.min_capacity is not None:
            lower = max(lower, self.min_capacity)
        return lower

    def storage_for(self, capacity: int) -> float:
        """Memory footprint of this buffer for a given capacity in containers."""
        if capacity < 1:
            raise ModelError(
                f"buffer {self.name!r}: capacity must be at least one container"
            )
        return capacity * self.container_size

    def with_bounds(
        self, min_capacity: Optional[int] = None, max_capacity: Optional[int] = None
    ) -> "Buffer":
        """Return a copy with different capacity bounds (used by sweeps)."""
        return Buffer(
            name=self.name,
            source=self.source,
            target=self.target,
            memory=self.memory,
            container_size=self.container_size,
            initial_tokens=self.initial_tokens,
            capacity_weight=self.capacity_weight,
            min_capacity=min_capacity,
            max_capacity=max_capacity,
        )
