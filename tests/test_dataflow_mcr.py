"""Tests for maximum-cycle-ratio analysis and PAS feasibility."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataflow.graph import Actor, Queue, SRDFGraph
from repro.dataflow.mcr import (
    critical_cycles,
    cycle_ratios,
    is_period_feasible,
    longest_path_potentials,
    maximum_cycle_ratio,
    minimum_feasible_period,
    throughput,
)


class TestCycleRatios:
    def test_two_actor_cycle(self, two_actor_cycle):
        ratios = cycle_ratios(two_actor_cycle)
        assert len(ratios) == 1
        assert ratios[0].ratio == pytest.approx(2.5)

    def test_self_loop(self, self_loop_actor):
        ratios = cycle_ratios(self_loop_actor)
        assert len(ratios) == 1
        assert ratios[0].ratio == pytest.approx(4.0)

    def test_deadlocked_cycle_has_infinite_ratio(self, deadlocked_srdf):
        ratios = cycle_ratios(deadlocked_srdf)
        assert any(math.isinf(r.ratio) for r in ratios)


class TestMaximumCycleRatio:
    def test_two_actor_cycle(self, two_actor_cycle):
        assert maximum_cycle_ratio(two_actor_cycle) == pytest.approx(2.5, rel=1e-6)

    def test_pipeline_with_feedback(self, pipeline_srdf):
        assert maximum_cycle_ratio(pipeline_srdf) == pytest.approx(2.0, rel=1e-6)

    def test_enumeration_agrees_with_lawler(self, pipeline_srdf, two_actor_cycle):
        for graph in (pipeline_srdf, two_actor_cycle):
            exact = maximum_cycle_ratio(graph, method="enumerate")
            lawler = maximum_cycle_ratio(graph, method="lawler")
            assert lawler == pytest.approx(exact, rel=1e-6)

    def test_acyclic_graph_has_zero_mcr(self):
        graph = SRDFGraph("dag")
        graph.add_actor(Actor("a", 5.0))
        graph.add_actor(Actor("b", 5.0))
        graph.add_queue(Queue("ab", "a", "b", tokens=0))
        assert maximum_cycle_ratio(graph) == 0.0
        assert throughput(graph) == math.inf

    def test_deadlock_gives_infinite_mcr(self, deadlocked_srdf):
        assert math.isinf(maximum_cycle_ratio(deadlocked_srdf))
        assert throughput(deadlocked_srdf) == 0.0

    def test_graph_without_queues(self):
        graph = SRDFGraph("isolated")
        graph.add_actor(Actor("a", 3.0))
        assert maximum_cycle_ratio(graph) == 0.0

    def test_unknown_method_rejected(self, two_actor_cycle):
        from repro.exceptions import AnalysisError

        with pytest.raises(AnalysisError):
            maximum_cycle_ratio(two_actor_cycle, method="howard")

    def test_tiny_durations_report_positive_mcr(self):
        # Firing durations near the absolute tolerance (1e-9): probing the
        # trivial-cycle case at an unscaled epsilon misreports the genuinely
        # positive MCR of 2e-9 as 0.0.
        graph = SRDFGraph("nano")
        graph.add_actor(Actor("a", 1e-9))
        graph.add_actor(Actor("b", 1e-9))
        graph.add_queue(Queue("ab", "a", "b", tokens=0))
        graph.add_queue(Queue("ba", "b", "a", tokens=1))
        exact = maximum_cycle_ratio(graph, method="enumerate")
        assert exact == pytest.approx(2e-9, rel=1e-9)
        # At this scale the Bellman-Ford relaxation's absolute 1e-12 slack
        # limits the attainable precision to ~1e-3 relative; the point of the
        # fix is that the MCR is positive and approximately right, not 0.0.
        lawler = maximum_cycle_ratio(graph, method="lawler")
        assert lawler > 0.0
        assert lawler == pytest.approx(exact, rel=1e-3)
        assert throughput(graph) == pytest.approx(0.5e9, rel=1e-3)

    def test_tiny_cycle_next_to_large_acyclic_actor(self):
        # A mixed-scale graph: the duration-scaled probe must not be inflated
        # by actors outside every cycle, or the tiny cycle's genuinely
        # positive MCR (2e-9 here) would be misreported as 0.0.
        graph = SRDFGraph("mixed")
        graph.add_actor(Actor("a", 1e-9))
        graph.add_actor(Actor("b", 1e-9))
        graph.add_actor(Actor("big", 10.0))
        graph.add_queue(Queue("ab", "a", "b", tokens=0))
        graph.add_queue(Queue("ba", "b", "a", tokens=1))
        graph.add_queue(Queue("abig", "a", "big", tokens=0))
        exact = maximum_cycle_ratio(graph, method="enumerate")
        assert exact == pytest.approx(2e-9, rel=1e-9)
        lawler = maximum_cycle_ratio(graph, method="lawler")
        assert lawler > 0.0
        assert lawler == pytest.approx(exact, rel=1e-2)

    def test_sub_tolerance_cycle_next_to_large_acyclic_actor(self):
        # Even an MCR *below* the absolute search tolerance (5e-10 here) must
        # classify as positive when a big acyclic actor dominates the
        # duration sum — the classification is structural, not epsilon-based.
        graph = SRDFGraph("sub-tolerance")
        graph.add_actor(Actor("a", 0.25e-9))
        graph.add_actor(Actor("b", 0.25e-9))
        graph.add_actor(Actor("big", 10.0))
        graph.add_queue(Queue("ab", "a", "b", tokens=0))
        graph.add_queue(Queue("ba", "b", "a", tokens=1))
        graph.add_queue(Queue("abig", "a", "big", tokens=0))
        assert maximum_cycle_ratio(graph, method="enumerate") == pytest.approx(
            5e-10, rel=1e-9
        )
        assert maximum_cycle_ratio(graph, method="lawler") > 0.0

    def test_tiny_duration_trivial_cycles_still_report_zero(self):
        # A token-carrying cycle whose actors all fire in zero time has MCR 0
        # regardless of the duration scale of the rest of the graph.
        graph = SRDFGraph("zero-cycle")
        graph.add_actor(Actor("a", 0.0))
        graph.add_actor(Actor("b", 0.0))
        graph.add_actor(Actor("c", 1e-9))
        graph.add_queue(Queue("ab", "a", "b", tokens=1))
        graph.add_queue(Queue("ba", "b", "a", tokens=1))
        graph.add_queue(Queue("ac", "a", "c", tokens=0))
        assert maximum_cycle_ratio(graph) == 0.0

    def test_multiple_cycles_take_the_maximum(self):
        graph = SRDFGraph("two-cycles")
        for name, duration in (("a", 1.0), ("b", 1.0), ("c", 10.0)):
            graph.add_actor(Actor(name, duration))
        graph.add_queue(Queue("ab", "a", "b", tokens=1))
        graph.add_queue(Queue("ba", "b", "a", tokens=1))  # ratio (1+1)/2 = 1
        graph.add_queue(Queue("cc", "c", "c", tokens=1))  # ratio 10
        assert maximum_cycle_ratio(graph) == pytest.approx(10.0, rel=1e-6)
        critical = critical_cycles(graph)
        assert len(critical) == 1
        assert critical[0].queues[0].name == "cc"


class TestPeriodFeasibility:
    def test_feasible_above_mcr_infeasible_below(self, pipeline_srdf):
        mcr = maximum_cycle_ratio(pipeline_srdf)
        assert is_period_feasible(pipeline_srdf, mcr * 1.01)
        assert not is_period_feasible(pipeline_srdf, mcr * 0.9)

    def test_non_positive_period_infeasible(self, pipeline_srdf):
        assert not is_period_feasible(pipeline_srdf, 0.0)
        assert not is_period_feasible(pipeline_srdf, -5.0)

    def test_potentials_satisfy_constraints(self, pipeline_srdf):
        period = 3.0
        potentials = longest_path_potentials(pipeline_srdf, period)
        assert potentials is not None
        for queue in pipeline_srdf.queues:
            lhs = potentials[queue.target]
            rhs = (
                potentials[queue.source]
                + pipeline_srdf.firing_duration(queue.source)
                - queue.tokens * period
            )
            assert lhs >= rhs - 1e-9

    def test_potentials_none_when_infeasible(self, pipeline_srdf):
        assert longest_path_potentials(pipeline_srdf, 0.5) is None

    def test_minimum_feasible_period_alias(self, two_actor_cycle):
        assert minimum_feasible_period(two_actor_cycle) == pytest.approx(2.5, rel=1e-6)


@settings(max_examples=40, deadline=None)
@given(
    durations=st.lists(
        st.floats(min_value=0.1, max_value=20.0, allow_nan=False), min_size=2, max_size=6
    ),
    tokens=st.integers(min_value=1, max_value=4),
)
def test_ring_mcr_matches_closed_form(durations, tokens):
    """Property: a single token-carrying ring has MCR = Σ durations / tokens."""
    graph = SRDFGraph("ring")
    n = len(durations)
    for i, duration in enumerate(durations):
        graph.add_actor(Actor(f"a{i}", duration))
    for i in range(n):
        graph.add_queue(
            Queue(f"q{i}", f"a{i}", f"a{(i + 1) % n}", tokens=tokens if i == n - 1 else 0)
        )
    expected = sum(durations) / tokens
    assert maximum_cycle_ratio(graph) == pytest.approx(expected, rel=1e-6)
    assert maximum_cycle_ratio(graph, method="enumerate") == pytest.approx(expected, rel=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    duration_a=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    duration_b=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    tokens_ab=st.integers(min_value=0, max_value=3),
    tokens_ba=st.integers(min_value=1, max_value=3),
    scale=st.floats(min_value=1.01, max_value=3.0, allow_nan=False),
)
def test_feasibility_is_monotone_in_the_period(duration_a, duration_b, tokens_ab, tokens_ba, scale):
    """Property: if a period is feasible, every larger period is feasible too."""
    graph = SRDFGraph("pair")
    graph.add_actor(Actor("a", duration_a))
    graph.add_actor(Actor("b", duration_b))
    graph.add_queue(Queue("ab", "a", "b", tokens=tokens_ab))
    graph.add_queue(Queue("ba", "b", "a", tokens=tokens_ba))
    mcr = maximum_cycle_ratio(graph)
    assert is_period_feasible(graph, mcr * scale)
    assert not is_period_feasible(graph, mcr / (scale * 1.05))
