"""Per-processor budget allocations.

This module ties the abstract budgets computed by the optimiser to concrete
budget-scheduler configurations: it checks Constraint (4)/(9) of the paper —
the budgets (plus scheduling overhead) fit in the replenishment interval —
and materialises TDM slot tables for each processor of a mapped
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.exceptions import AllocationError
from repro.scheduling.latency_rate import LatencyRateServer
from repro.scheduling.tdm import TdmScheduler, TdmSlotTable, build_slot_table
from repro.taskgraph.configuration import MappedConfiguration
from repro.taskgraph.platform import Processor


@dataclass
class BudgetAllocation:
    """Budgets of the tasks bound to one processor."""

    processor: Processor
    budgets: Dict[str, float] = field(default_factory=dict)
    granularity: float = 1.0

    @property
    def total_budget(self) -> float:
        return sum(self.budgets.values())

    @property
    def utilisation(self) -> float:
        """Fraction of the replenishment interval handed out as budgets."""
        return self.total_budget / self.processor.replenishment_interval

    def is_feasible(self, tolerance: float = 1e-9) -> bool:
        """Constraint (4): budgets plus overhead fit in the replenishment interval."""
        return (
            self.total_budget + self.processor.scheduling_overhead
            <= self.processor.replenishment_interval + tolerance
        )

    def latency_rate_bounds(self) -> Dict[str, LatencyRateServer]:
        """Latency-rate guarantee per task under this allocation."""
        return {
            task: LatencyRateServer.from_budget(
                budget, self.processor.replenishment_interval
            )
            for task, budget in self.budgets.items()
        }

    def slot_table(self, interleave: bool = True) -> TdmSlotTable:
        """Materialise a TDM slot table realising these budgets."""
        if not self.is_feasible():
            raise AllocationError(
                f"budgets on processor {self.processor.name!r} exceed its "
                f"replenishment interval"
            )
        return build_slot_table(
            budgets=self.budgets,
            replenishment_interval=self.processor.replenishment_interval,
            granularity=self.granularity,
            scheduling_overhead=self.processor.scheduling_overhead,
            interleave=interleave,
        )

    def scheduler(self, interleave: bool = True) -> TdmScheduler:
        return TdmScheduler(self.slot_table(interleave=interleave))


def allocations_from_mapping(mapped: MappedConfiguration) -> Dict[str, BudgetAllocation]:
    """Group the budgets of a mapped configuration per processor.

    Tasks without a recorded budget are skipped; detecting missing budgets is
    the job of :func:`repro.core.validation.verify_mapping`.
    """
    configuration = mapped.configuration
    allocations: Dict[str, BudgetAllocation] = {}
    for processor_name, processor in configuration.platform.processors.items():
        allocation = BudgetAllocation(
            processor=processor, granularity=configuration.granularity
        )
        for task in configuration.tasks_on_processor(processor_name):
            if task.name in mapped.budgets:
                allocation.budgets[task.name] = mapped.budget(task.name)
        allocations[processor_name] = allocation
    return allocations


def validate_budget_feasibility(mapped: MappedConfiguration) -> List[str]:
    """Return a list of violations of the per-processor capacity constraint."""
    problems: List[str] = []
    for processor_name, allocation in allocations_from_mapping(mapped).items():
        if not allocation.is_feasible():
            problems.append(
                f"processor {processor_name!r}: budgets {allocation.total_budget:.6g} "
                f"plus overhead {allocation.processor.scheduling_overhead:.6g} exceed "
                f"the replenishment interval "
                f"{allocation.processor.replenishment_interval:.6g}"
            )
    return problems
