"""Command-line style experiment runner.

``python -m repro.experiments.runner`` regenerates the data behind every
figure of the paper's evaluation section and prints it as plain-text tables
(the same rows the benchmarks assert on and EXPERIMENTS.md records).

The figure sweeps can run through two engines:

* ``direct`` (default) — :class:`~repro.core.tradeoff.TradeoffExplorer`
  solves each capacity bound in-process, exactly as the seed did;
* ``batch`` — the sweeps are submitted as sweep *families* to
  :class:`~repro.batch.executor.BatchExecutor`, adding the persistent result
  cache (``--cache-dir``).  Both engines produce identical figure data and
  both solve each sweep through the session API: the cone program compiles
  once per figure and every sweep point warm-starts from its neighbour.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional, Sequence

from repro.analysis.report import render_table
from repro.core.tradeoff import TradeoffCurve, TradeoffPoint
from repro.exceptions import AllocationError
from repro.experiments.figure2 import (
    DEFAULT_CAPACITY_SWEEP as FIGURE2_SWEEP,
    build_configuration as build_figure2_configuration,
    figure2_from_curve,
    run_figure2,
)
from repro.experiments.figure3 import (
    DEFAULT_CAPACITY_SWEEP as FIGURE3_SWEEP,
    build_configuration as build_figure3_configuration,
    figure3_from_curve,
    run_figure3,
)
from repro.taskgraph.configuration import Configuration


def batch_capacity_sweep(
    configuration: Configuration,
    capacity_sweep: Sequence[int],
    backend: str = "auto",
    workers: int = 1,
    cache_dir: Optional[str] = None,
) -> TradeoffCurve:
    """Run a capacity-bound sweep through the batch engine.

    Produces the same :class:`~repro.core.tradeoff.TradeoffCurve` a
    :class:`~repro.core.tradeoff.TradeoffExplorer` sweep would — the sweep is
    submitted as one *family* (:meth:`~repro.batch.executor.BatchExecutor.
    run_sweep`), so the batch engine also compiles the cone program once and
    warm-starts every point from its neighbour, and the whole family is one
    entry in the persistent result cache.

    ``workers`` is accepted for interface stability but has no effect here:
    a sweep family is one sequential warm-start chain, so it always solves
    inline rather than fanning points out over the process pool (which the
    per-item campaign path still uses).
    """
    from repro.batch import BatchExecutor, ExecutorConfig, make_cache

    del workers  # families are sequential by construction; see docstring
    executor = BatchExecutor(
        # No backend fallback: the direct engine solves with exactly the
        # requested backend, so the batch engine must too — a silent retry
        # on another backend would make the figure data lie about its origin.
        config=ExecutorConfig(backend=backend, fallback_backends=()),
        cache=make_cache(cache_dir, enabled=cache_dir is not None),
    )
    result = executor.run_sweep(
        configuration, capacity_sweep, label=f"{configuration.name}@sweep"
    )
    if result.status != "ok":
        # The direct engine propagates solver failures as exceptions;
        # mapping them to infeasible points would silently corrupt the
        # figure data, so the batch engine must fail loudly too.
        raise AllocationError(
            f"batch sweep {result.label!r} failed "
            f"({result.status}): {result.error}"
        )
    curve = TradeoffCurve(
        configuration_name=configuration.name,
        solver_stats=dict(result.solver_stats),
    )
    for point in result.points:
        curve.points.append(
            TradeoffPoint(
                capacity_limit=int(point["capacity_limit"]),
                feasible=bool(point["feasible"]),
                budgets=dict(point.get("budgets", {})),
                relaxed_budgets=dict(point.get("relaxed_budgets", {})),
                capacities={
                    name: int(value)
                    for name, value in dict(point.get("capacities", {})).items()
                },
                objective_value=point.get("objective_value"),
                solve_stats=dict(point.get("stats", {})),
            )
        )
    return curve


def run_all(
    backend: str = "auto",
    stream=None,
    engine: str = "direct",
    workers: int = 1,
    cache_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Run every experiment, print the tables, and return the raw results.

    With ``engine="batch"`` the figure sweeps are routed through the batch
    allocation engine (see :func:`batch_capacity_sweep`).
    """
    if engine not in ("direct", "batch"):
        raise ValueError(f"unknown engine {engine!r}; expected 'direct' or 'batch'")
    stream = stream or sys.stdout
    results: Dict[str, object] = {}

    def figure2_direct():
        return run_figure2(backend=backend)

    def figure2_batch():
        curve = batch_capacity_sweep(
            build_figure2_configuration(),
            FIGURE2_SWEEP,
            backend=backend,
            workers=workers,
            cache_dir=cache_dir,
        )
        return figure2_from_curve(curve)

    def figure3_direct():
        return run_figure3(backend=backend)

    def figure3_batch():
        curve = batch_capacity_sweep(
            build_figure3_configuration(),
            FIGURE3_SWEEP,
            backend=backend,
            workers=workers,
            cache_dir=cache_dir,
        )
        return figure3_from_curve(curve)

    run2: Callable = figure2_batch if engine == "batch" else figure2_direct
    run3: Callable = figure3_batch if engine == "batch" else figure3_direct

    start = time.perf_counter()
    figure2 = run2()
    elapsed2 = time.perf_counter() - start
    results["figure2"] = figure2
    print("Figure 2(a): producer-consumer budget vs. buffer capacity", file=stream)
    print(render_table(figure2.rows()), file=stream)
    print("", file=stream)
    print("Figure 2(b): budget reduction per extra container", file=stream)
    print(render_table(figure2.reduction_rows()), file=stream)
    print(f"(sweep solved in {elapsed2:.3f} s{_stats_suffix(figure2.curve)})", file=stream)
    print("", file=stream)

    start = time.perf_counter()
    figure3 = run3()
    elapsed3 = time.perf_counter() - start
    results["figure3"] = figure3
    print("Figure 3: three-task chain, per-task budgets vs. common capacity bound", file=stream)
    print(render_table(figure3.rows()), file=stream)
    print(f"(sweep solved in {elapsed3:.3f} s{_stats_suffix(figure3.curve)})", file=stream)

    results["runtime_seconds"] = {"figure2": elapsed2, "figure3": elapsed3}
    results["solver_stats"] = {
        "figure2": dict(figure2.curve.solver_stats) if figure2.curve else {},
        "figure3": dict(figure3.curve.solver_stats) if figure3.curve else {},
    }
    results["engine"] = engine
    return results


def _stats_suffix(curve: Optional[TradeoffCurve]) -> str:
    """Render a sweep's session statistics for the figure footer lines."""
    if curve is None or not curve.solver_stats:
        return ""
    stats = curve.solver_stats
    return (
        f"; {stats.get('compiles', 0)} compile(s), "
        f"phase I skipped on {stats.get('phase1_skipped', 0)}/{stats.get('solves', 0)} "
        f"solves, {stats.get('newton_iterations', 0)} Newton iterations"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        default="auto",
        choices=["auto", "barrier", "scipy"],
        help="cone-solver backend to use (default: auto)",
    )
    parser.add_argument(
        "--engine",
        default="direct",
        choices=["direct", "batch"],
        help="run the sweeps in-process or through the batch engine (default: direct)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the batch engine (kept for compatibility; "
        "the figure sweeps run as single warm-start families and always "
        "solve inline)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory for the batch engine (default: no cache)",
    )
    arguments = parser.parse_args(argv)
    run_all(
        backend=arguments.backend,
        engine=arguments.engine,
        workers=arguments.workers,
        cache_dir=arguments.cache_dir,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via examples
    raise SystemExit(main())
