"""Throughput analysis of mapped configurations.

Given a mapped configuration (budgets + buffer capacities), these helpers
answer the questions a system integrator asks after the allocator ran:

* what is the minimum period each task graph can actually sustain (its
  maximum cycle ratio), and how much slack is left against the requirement?
* which cycles of the dataflow graph are critical (and therefore which
  buffers/budgets to enlarge when more performance is needed)?
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.dataflow.construction import build_srdf_specification, instantiate_srdf
from repro.dataflow.mcr import CycleRatio, critical_cycles, maximum_cycle_ratio
from repro.taskgraph.configuration import MappedConfiguration


@dataclass
class GraphThroughputReport:
    """Throughput figures for one task graph under a mapping."""

    graph_name: str
    required_period: float
    minimum_period: float
    critical: List[CycleRatio] = field(default_factory=list)

    @property
    def slack(self) -> float:
        """How much slower the graph could run and still meet its requirement."""
        if math.isinf(self.minimum_period):
            return -math.inf
        return self.required_period - self.minimum_period

    @property
    def meets_requirement(self) -> bool:
        # The minimum period is computed by a bisection with a small relative
        # tolerance, so the comparison allows for the same order of slack.
        return self.minimum_period <= self.required_period * (1.0 + 1e-6)

    @property
    def throughput(self) -> float:
        """Iterations per time unit the mapping can sustain."""
        if self.minimum_period <= 0.0:
            return math.inf
        return 1.0 / self.minimum_period

    def critical_buffer_names(self) -> List[str]:
        """Buffers appearing on a critical cycle (candidates for enlargement)."""
        names: List[str] = []
        for cycle in self.critical:
            for queue in cycle.queues:
                # Queue names of buffer queues are "<buffer>.data" / "<buffer>.space".
                if queue.name.endswith(".data") or queue.name.endswith(".space"):
                    buffer_name = queue.name.rsplit(".", 1)[0]
                    if buffer_name not in names:
                        names.append(buffer_name)
        return names


def analyse_throughput(
    mapped: MappedConfiguration, include_critical_cycles: bool = True
) -> Dict[str, GraphThroughputReport]:
    """Compute a :class:`GraphThroughputReport` for every task graph."""
    configuration = mapped.configuration
    reports: Dict[str, GraphThroughputReport] = {}
    for graph in configuration.task_graphs:
        spec = build_srdf_specification(graph)
        srdf = instantiate_srdf(
            spec, graph, configuration.platform, mapped.budgets, mapped.buffer_capacities
        )
        minimum_period = maximum_cycle_ratio(srdf)
        critical = critical_cycles(srdf) if include_critical_cycles else []
        reports[graph.name] = GraphThroughputReport(
            graph_name=graph.name,
            required_period=graph.period,
            minimum_period=minimum_period,
            critical=critical,
        )
    return reports


def utilisation_summary(mapped: MappedConfiguration) -> Dict[str, float]:
    """Budget utilisation per processor (fraction of the replenishment interval)."""
    configuration = mapped.configuration
    return {
        name: mapped.processor_utilisation(name)
        for name in configuration.platform.processors
    }
