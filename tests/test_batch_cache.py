"""Tests of the persistent content-addressed result cache."""

from __future__ import annotations

import json

from repro.batch.cache import NullCache, ResultCache, cache_key, canonical_json
from repro.taskgraph import serialization
from repro.taskgraph.generators import chain_configuration, producer_consumer_configuration

OPTIONS = {
    "backend": "auto",
    "weights": "prefer-budgets",
    "verify": True,
    "run_simulation": False,
    "fallback_backends": ["scipy"],
}


def config_dict(**kwargs):
    return serialization.configuration_to_dict(
        producer_consumer_configuration(**kwargs)
    )


class TestCacheKey:
    def test_key_is_stable_across_dict_ordering(self):
        base = config_dict()
        reordered = json.loads(canonical_json(base))  # same content, new dict
        assert cache_key(base, OPTIONS) == cache_key(reordered, OPTIONS)

    def test_key_depends_on_configuration(self):
        assert cache_key(config_dict(), OPTIONS) != cache_key(
            config_dict(period=12.0), OPTIONS
        )
        other = serialization.configuration_to_dict(chain_configuration())
        assert cache_key(config_dict(), OPTIONS) != cache_key(other, OPTIONS)

    def test_key_depends_on_result_relevant_options(self):
        scipy_options = {**OPTIONS, "backend": "scipy"}
        assert cache_key(config_dict(), OPTIONS) != cache_key(
            config_dict(), scipy_options
        )

    def test_key_depends_on_capacity_limits(self):
        assert cache_key(config_dict(), OPTIONS) != cache_key(
            config_dict(), OPTIONS, capacity_limits={"bab": 3}
        )
        assert cache_key(config_dict(), OPTIONS, capacity_limits={"bab": 3}) == cache_key(
            config_dict(), OPTIONS, capacity_limits={"bab": 3}
        )


class TestNonFinitePayloads:
    """NaN/inf handling: canonical JSON and cache files must stay strict.

    ``json.dumps`` would happily emit the non-standard ``NaN``/``Infinity``
    literals, producing cache keys that are not stable identities and cache
    files strict parsers reject; both surfaces reject non-finite floats.
    """

    def test_cache_key_rejects_nan_configuration(self):
        import pytest

        bad = {**config_dict(), "period": float("nan")}
        with pytest.raises(ValueError, match="non-finite"):
            cache_key(bad, OPTIONS)

    def test_cache_key_rejects_infinite_limits(self):
        import pytest

        with pytest.raises(ValueError, match="non-finite"):
            cache_key(config_dict(), OPTIONS, capacity_limits={"bab": float("inf")})

    def test_canonical_json_rejects_nested_non_finite(self):
        import pytest

        for value in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="non-finite"):
                canonical_json({"a": {"b": [1.0, value]}})

    def test_put_declines_non_finite_payload(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key(config_dict(), OPTIONS)
        cache.put(key, {"status": "ok", "objective_value": float("nan")})
        # Nothing stored, nothing half-written, and the miss is clean.
        assert cache.get(key) is None
        assert len(cache) == 0
        assert cache.stores == 0
        assert not list((tmp_path / "cache").rglob("*.tmp"))

    def test_put_still_raises_on_genuine_serialisation_bugs(self, tmp_path):
        import pytest

        cache = ResultCache(tmp_path / "cache")
        circular = {"status": "ok"}
        circular["self"] = circular
        with pytest.raises(ValueError, match="[Cc]ircular"):
            cache.put(cache_key(config_dict(), OPTIONS), circular)
        assert len(cache) == 0

    def test_stored_entries_parse_under_a_strict_parser(self, tmp_path):
        def reject_constant(text):
            raise AssertionError(f"non-standard JSON constant {text!r}")

        cache = ResultCache(tmp_path / "cache")
        key = cache_key(config_dict(), OPTIONS)
        cache.put(key, {"status": "ok", "objective_value": 17.5})
        path = tmp_path / "cache" / key[:2] / f"{key}.json"
        payload = json.loads(path.read_text(), parse_constant=reject_constant)
        assert payload["objective_value"] == 17.5


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key(config_dict(), OPTIONS)
        assert cache.get(key) is None
        cache.put(key, {"status": "ok", "budgets": {"wa": 18.0}})
        assert cache.get(key) == {"status": "ok", "budgets": {"wa": 18.0}}
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1, "evictions": 0}
        assert len(cache) == 1

    def test_entries_are_sharded_json_files(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key(config_dict(), OPTIONS)
        cache.put(key, {"status": "ok"})
        path = tmp_path / "cache" / key[:2] / f"{key}.json"
        assert path.is_file()
        assert json.loads(path.read_text())["status"] == "ok"

    def test_corrupt_entry_is_a_miss_and_is_evicted(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key(config_dict(), OPTIONS)
        cache.put(key, {"status": "ok"})
        path = tmp_path / "cache" / key[:2] / f"{key}.json"
        path.write_text("{not json")
        assert cache.get(key) is None
        assert not path.exists()
        assert cache.stats()["evictions"] == 1
        # The slot is reusable: a fresh put hits again.
        cache.put(key, {"status": "ok"})
        assert cache.get(key) == {"status": "ok"}

    def test_truncated_entry_is_a_miss_and_is_evicted(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key(config_dict(), OPTIONS)
        cache.put(key, {"status": "ok", "budgets": {"wa": 18.0}})
        path = tmp_path / "cache" / key[:2] / f"{key}.json"
        complete = path.read_text()
        path.write_text(complete[: len(complete) // 2])
        assert cache.get(key) is None
        assert not path.exists()
        assert cache.stats()["evictions"] == 1

    def test_non_object_entry_is_a_miss_and_is_evicted(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key(config_dict(), OPTIONS)
        path = tmp_path / "cache" / key[:2] / f"{key}.json"
        path.parent.mkdir(parents=True)
        path.write_text("[1, 2, 3]")
        assert cache.get(key) is None
        assert not path.exists()

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        for index in range(3):
            cache.put(cache_key(config_dict(period=10.0 + index), OPTIONS), {"i": index})
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_shared_directory_between_instances(self, tmp_path):
        writer = ResultCache(tmp_path / "cache")
        key = cache_key(config_dict(), OPTIONS)
        writer.put(key, {"status": "ok"})
        reader = ResultCache(tmp_path / "cache")
        assert reader.get(key) == {"status": "ok"}


class TestNullCache:
    def test_null_cache_stores_nothing(self):
        cache = NullCache()
        cache.put("abc", {"status": "ok"})
        assert cache.get("abc") is None
        assert len(cache) == 0
        assert cache.stats() == {"hits": 0, "misses": 0, "stores": 0, "evictions": 0}
