"""Decomposed solving quickstart: price-coordinated per-application solves.

The joint workload allocation couples applications only through the shared
processor and memory capacity rows.  The *decomposed* solver mode exploits
that: each application is solved as its own standalone cone program against
a share of the shared capacities, subproblems fan out over a worker pool,
and only the shares are coordinated.  Uncontended workloads finish after one
parallel round (the standalone optima already fit); contended ones run the
price coordination and a warm-started joint polish that locks the result to
the joint optimum.

This example walks the three entry points:

1. ``formulation.solve(backend="decomposed", ...)`` — the solver layer,
2. ``JointAllocator.allocate_workload(workload, mode="decomposed")`` — the
   allocator mode switch (CLI equivalent:
   ``repro-map allocate-workload workload.json --mode decomposed --stats``),
3. the anytime admission fast path that the decomposed price view enables.
"""

from __future__ import annotations

from repro.core import (
    AdmissionController,
    AllocatorOptions,
    JointAllocator,
)
from repro.core.formulation import WorkloadSocpFormulation
from repro.core.objective import ObjectiveWeights
from repro.taskgraph import random_workload


def solver_layer() -> None:
    """Solve one workload jointly and decomposed; compare the optima."""
    print("=== solver layer: backend='decomposed' ===")
    workload = random_workload(application_count=6, seed=11)

    joint = WorkloadSocpFormulation(workload).solve(backend="auto")
    split = WorkloadSocpFormulation(workload).solve(
        backend="decomposed", decomposed_workers=2
    )
    gap = abs(split.objective - joint.objective) / max(1.0, abs(joint.objective))
    print(f"joint objective       {joint.objective:.6f}  ({joint.backend})")
    print(f"decomposed objective  {split.objective:.6f}  (gap {gap:.2e})")
    print(
        f"subproblems={split.stats['decomposed_blocks']}  "
        f"workers={split.stats['decomposed_workers']}  "
        f"coordination_skipped={split.stats['coordination_skipped']}  "
        f"parallel_speedup={split.stats['parallel_speedup']:.2f}x"
    )

    # A buffer-weighted objective makes the applications compete for the
    # shared capacity, so the price coordination (and the joint polish
    # that locks the optimum) actually runs.
    contended = random_workload(application_count=4, seed=1, wcet_range=(0.2, 0.6))
    weights = ObjectiveWeights.buffers_only()
    joint = WorkloadSocpFormulation(contended, weights=weights).solve(
        backend="auto"
    )
    split = WorkloadSocpFormulation(contended, weights=weights).solve(
        backend="decomposed"
    )
    gap = abs(split.objective - joint.objective) / max(1.0, abs(joint.objective))
    print(
        f"contended: gap {gap:.2e}  "
        f"price_iterations={split.stats['price_iterations']}  "
        f"rungs={split.stats['price_rungs']}  "
        f"joint_polish={split.stats.get('joint_polish', False)}"
    )
    print()


def allocator_layer() -> None:
    """The same switch one layer up: allocate_workload(mode=...)."""
    print("=== allocator layer: mode='decomposed' ===")
    workload = random_workload(application_count=4, seed=3)
    allocator = JointAllocator(
        options=AllocatorOptions(
            verify=False, run_simulation=False, mode="decomposed", workers=2
        )
    )
    mapped = allocator.allocate_workload(workload)
    stats = mapped.solver_info["solve_stats"]
    print(
        f"backend={mapped.solver_info['backend']}  "
        f"objective={mapped.objective_value:.4f}  "
        f"subproblems={stats['decomposed_blocks']}"
    )
    for name, application in mapped.applications.items():
        budgets = ", ".join(
            f"{task}={value:g}" for task, value in sorted(application.budgets.items())
        )
        print(f"  {name}: {budgets}")
    print()


def anytime_admission() -> None:
    """The price view answers admission questions before the exact solve."""
    print("=== anytime admission fast path ===")
    workload = random_workload(application_count=3, seed=0)
    applications = list(workload.applications)
    controller = AdmissionController(
        workload.platform,
        allocator=JointAllocator(
            options=AllocatorOptions(verify=False, run_simulation=False)
        ),
    )
    for application in applications:
        decision = controller.admit(application.name, application.configuration)
        outcome = "admitted" if decision.admitted else "rejected"
        print(
            f"  {application.name}: verdict={decision.verdict} "
            f"({decision.verdict_stage})  ->  exact solve: {outcome}"
        )
    print(
        "a firm verdict (admit/reject) always agrees with the exact solve;\n"
        "'uncertain' means the fast path could not decide and the exact\n"
        "solve alone settled it"
    )


if __name__ == "__main__":
    solver_layer()
    allocator_layer()
    anytime_admission()
