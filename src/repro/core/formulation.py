"""The SOCP formulation of Algorithm 1, assembled from per-application blocks.

Given a configuration, :class:`SocpFormulation` builds the second-order cone
program of the paper:

* **Variables** — per task ``w``: the relaxed budget ``β'(w)`` and the
  reciprocal-budget variable ``λ(w)``; per buffer ``b``: the relaxed capacity
  ``γ'(b)`` (the paper's ``δ'`` of the space queue is ``γ'(b) − ι(b)``); per
  SRDF actor ``v``: a start time ``s(v)`` (one reference actor per weakly
  connected component is pinned to 0 to remove the translation symmetry).
* **Constraint (6)** for every queue in E1 (the task-internal queues):
  ``s(v_i2) ≥ s(v_i1) + ̺(π(w_i)) − β'(w_i)``.
* **Constraint (7)** for every queue in E2 (self-loops, data and space
  queues): ``s(v_j) ≥ s(v_i) + ̺(π(w_i))·χ(w_i)·λ(w_i) − δ(e_ij)·µ``.
* **Constraint (8)**: ``λ(w_i)·β'(w_i) ≥ 1`` — the only non-affine (rotated
  second-order cone) constraint.
* **Constraint (9)** per processor: budgets, one granule of rounding slack per
  task, and the scheduling overhead fit in the replenishment interval.
* **Constraint (10)** per bounded memory: the relaxed capacities plus one
  container of rounding slack per buffer fit in the memory.
* **Objective (5)**: minimise the weighted sum of budgets and capacities.

Block structure
---------------

The program is not built monolithically: every application contributes one
:class:`FormulationBlock` holding its variables, its cone constraints
(Constraints (6)–(8)) and its objective terms, all namespaced per
application.  The applications are coupled **only** through the shared
capacity rows — Constraint (9) per processor and Constraint (10) per bounded
memory — which the assembler sums over every block.  A single-configuration
:class:`SocpFormulation` is exactly the 1-block special case (with an empty
namespace, so variable and constraint names are unchanged);
:class:`WorkloadSocpFormulation` assembles one block per application of a
:class:`~repro.taskgraph.workload.Workload`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import networkx as nx

from repro.exceptions import FormulationError, InfeasibleProblemError
from repro.core.objective import ObjectiveWeights
from repro.dataflow.construction import (
    SrdfSpecification,
    build_srdf_specification,
)
from repro.solver.expression import AffineExpression, Variable, linear_sum
from repro.solver.parametric import ParametricProblem
from repro.solver.problem import ConeProgram, bounds_collapse
from repro.solver.result import Solution
from repro.taskgraph.configuration import Configuration
from repro.taskgraph.platform import Platform
from repro.taskgraph.task import effective_cycles
from repro.taskgraph.workload import Workload


@dataclass
class FormulationVariables:
    """Handles to the decision variables of the SOCP, keyed by model names."""

    budgets: Dict[str, Variable] = field(default_factory=dict)
    reciprocals: Dict[str, Variable] = field(default_factory=dict)
    capacities: Dict[str, Variable] = field(default_factory=dict)
    start_times: Dict[str, AffineExpression] = field(default_factory=dict)


# -- shared bound arithmetic -------------------------------------------------------
def effective_budget_bounds(
    configuration: Configuration,
    graph,
    task,
    budget_limits: Mapping[str, float],
) -> Tuple[float, float]:
    """The effective ``β'(w)`` bounds under ``budget_limits``.

    The single definition of the budget-bound arithmetic: block assembly uses
    it at build time, and the parametric layer re-evaluates it per sweep
    point — both paths therefore raise the same
    :class:`InfeasibleProblemError` for contradictory bounds.

    ``β'(w) ≥ ̺·χ/µ`` is implied by Constraints (7)+(8) on the self-loop;
    stating it as a bound tightens the relaxation the solver works with
    without changing the optimum.
    """
    processor = configuration.platform.processor(task.processor)
    rho = processor.replenishment_interval
    lower = rho * graph.period_cycles(task.name, processor) / graph.period
    if task.min_budget is not None:
        lower = max(lower, task.min_budget)
    upper = processor.allocatable_capacity - configuration.granularity
    if task.max_budget is not None:
        upper = min(upper, task.max_budget)
    if task.name in budget_limits:
        upper = min(upper, float(budget_limits[task.name]))
    if upper < lower - 1e-12:
        raise InfeasibleProblemError(
            f"task {task.name!r}: the budget upper bound {upper:.6g} is "
            f"below the lower bound {lower:.6g} implied by the throughput "
            f"requirement"
        )
    return lower, upper


def effective_capacity_bounds(
    buffer, default_bound: float, capacity_limits: Mapping[str, int]
) -> Tuple[float, float]:
    """The effective ``γ'(b)`` bounds under ``capacity_limits``.

    Like :func:`effective_budget_bounds`, shared between build-time variable
    creation and the parametric per-point re-evaluation.
    """
    lower = float(buffer.smallest_feasible_capacity)
    upper = default_bound + buffer.initial_tokens
    if buffer.max_capacity is not None:
        upper = min(upper, float(buffer.max_capacity))
    if buffer.name in capacity_limits:
        upper = min(upper, float(capacity_limits[buffer.name]))
    if upper < lower - 1e-12:
        raise InfeasibleProblemError(
            f"buffer {buffer.name!r}: the capacity upper bound {upper:.6g} "
            f"is below the smallest feasible capacity {lower:.6g}"
        )
    return lower, upper


def sufficient_capacity_bound(configuration: Configuration, graph) -> float:
    """A buffer capacity that is always enough for this task graph.

    Any simple cycle of the constructed SRDF graph visits each task's
    actor pair at most once, and each pair contributes at most
    ``̺(p) + ̺(p)·χ(w)/β_min(w) = ̺(p) + µ`` to the cycle's duration
    (using the throughput-implied budget lower bound).  A space queue
    carrying ``⌈Σ(̺(p) + µ)/µ⌉`` tokens therefore satisfies Constraint (1)
    on every cycle through it regardless of the other variables, so
    capping capacities at this value (plus the initial tokens) never cuts
    off the optimum while keeping the feasible region bounded.
    """
    if not graph.is_cyclo_static:
        total = 0.0
        for task in graph.tasks:
            processor = configuration.platform.processor(task.processor)
            total += processor.replenishment_interval + graph.period
        return math.ceil(total / graph.period) + 1.0
    # Cyclo-static graphs: every unrolled copy contributes one actor pair to
    # a simple cycle, and the per-task copies together execute at most
    # q(w)·ΣP phases per period — the v2 durations still sum to at most µ at
    # the budget lower bound, while each copy adds one ̺(p) latency term.
    # Scale by the largest per-iteration token batch so the (tokens/T)-scaled
    # space queues still dominate every cycle.
    repetitions = graph.repetitions()
    total = 0.0
    for task in graph.tasks:
        processor = configuration.platform.processor(task.processor)
        copies = repetitions[task.name] * task.phase_count
        total += copies * processor.replenishment_interval + graph.period
    base = math.ceil(total / graph.period) + 1.0
    iteration_factor = max(
        (
            repetitions[buffer.source] * buffer.total_production
            for buffer in graph.buffers
        ),
        default=1,
    )
    return base * iteration_factor


class FormulationBlock:
    """The per-application slice of the cone program.

    A block owns everything that is private to one application: its decision
    variables (budgets, reciprocals, capacities, start times), the precedence
    and hyperbolic constraints of its SRDF graphs, and its objective terms.
    Variable and constraint names are qualified with the block's ``namespace``
    (empty for the single-configuration case, the application name in
    workloads), so blocks from different applications never collide even when
    their task names do.

    Blocks expose their per-resource usage (:meth:`processor_budget_terms`,
    :meth:`memory_usage_terms`) so the assembler can join them through the
    shared capacity rows — the only coupling between applications.
    """

    def __init__(
        self,
        configuration: Configuration,
        weights: ObjectiveWeights,
        capacity_limits: Optional[Mapping[str, int]] = None,
        budget_limits: Optional[Mapping[str, float]] = None,
        namespace: str = "",
    ) -> None:
        self.configuration = configuration
        self.weights = weights
        self.capacity_limits = dict(capacity_limits or {})
        self.budget_limits = dict(budget_limits or {})
        self.namespace = namespace
        self.specifications: Dict[str, SrdfSpecification] = {
            graph.name: build_srdf_specification(graph)
            for graph in configuration.task_graphs
        }
        self.variables = FormulationVariables()
        self._capacity_defaults: Dict[str, float] = {}

    def qualify(self, name: str) -> str:
        """The program-level (namespaced) name of a model entity."""
        return f"{self.namespace}/{name}" if self.namespace else name

    def capacity_default_bound(self, graph) -> float:
        """Per-graph sufficient capacity bound, cached (the graph is immutable)."""
        if graph.name not in self._capacity_defaults:
            self._capacity_defaults[graph.name] = sufficient_capacity_bound(
                self.configuration, graph
            )
        return self._capacity_defaults[graph.name]

    # -- variable creation -------------------------------------------------------
    def add_task_variables(self, program: ConeProgram) -> None:
        configuration = self.configuration
        for graph in configuration.task_graphs:
            for task in graph.tasks:
                processor = configuration.platform.processor(task.processor)
                rho = processor.replenishment_interval
                lower, upper = effective_budget_bounds(
                    configuration, graph, task, self.budget_limits
                )
                beta = program.add_variable(
                    f"beta[{self.qualify(task.name)}]", lower=lower, upper=upper
                )
                lam = program.add_variable(
                    f"lambda[{self.qualify(task.name)}]",
                    lower=1.0 / max(upper, 1e-12),
                    upper=graph.period
                    / (rho * graph.period_cycles(task.name, processor)),
                )
                self.variables.budgets[task.name] = beta
                self.variables.reciprocals[task.name] = lam

    def add_capacity_variables(self, program: ConeProgram) -> None:
        for graph in self.configuration.task_graphs:
            default_bound = self.capacity_default_bound(graph)
            for buffer in graph.buffers:
                lower, upper = effective_capacity_bounds(
                    buffer, default_bound, self.capacity_limits
                )
                capacity = program.add_variable(
                    f"capacity[{self.qualify(buffer.name)}]", lower=lower, upper=upper
                )
                self.variables.capacities[buffer.name] = capacity

    def add_start_time_variables(self, program: ConeProgram) -> None:
        """One start-time variable per actor, pinning one per weak component.

        Start times only appear in difference constraints, so each weakly
        connected component of the SRDF graph has a translation symmetry;
        pinning one actor per component to 0 removes it (the objective does
        not involve start times, so no optimality is lost).
        """
        for spec in self.specifications.values():
            component_graph = nx.Graph()
            component_graph.add_nodes_from(spec.actor_names())
            for queue in spec.queues:
                component_graph.add_edge(queue.source, queue.target)
            for component in nx.connected_components(component_graph):
                reference = sorted(component)[0]
                self.variables.start_times[reference] = AffineExpression({}, 0.0)
                for actor_name in sorted(component):
                    if actor_name == reference:
                        continue
                    var = program.add_variable(f"s[{self.qualify(actor_name)}]")
                    self.variables.start_times[actor_name] = AffineExpression({var: 1.0})

    # -- constraints -----------------------------------------------------------------
    def _queue_token_expression(self, graph_name: str, queue) -> AffineExpression:
        """The token count ``δ(e)`` of a queue as an affine expression."""
        if queue.fixed_tokens is not None:
            return AffineExpression({}, float(queue.fixed_tokens))
        graph = self.configuration.task_graph(graph_name)
        buffer = graph.buffer(queue.buffer)
        capacity = self.variables.capacities[buffer.name]
        if queue.token_offset is not None:
            return AffineExpression(
                {capacity: queue.token_scale}, float(queue.token_offset)
            )
        return AffineExpression({capacity: 1.0}, -float(buffer.initial_tokens))

    def add_precedence_constraints(self, program: ConeProgram) -> None:
        configuration = self.configuration
        for graph_name, spec in self.specifications.items():
            graph = configuration.task_graph(graph_name)
            period = graph.period
            for queue in spec.queues:
                task = graph.task(queue.source_task)
                processor = configuration.platform.processor(task.processor)
                rho = processor.replenishment_interval
                s_source = self.variables.start_times[queue.source]
                s_target = self.variables.start_times[queue.target]

                if queue.in_queue_set_e1:
                    # Constraint (6): s_j ≥ s_i + ̺ − β'
                    beta = self.variables.budgets[task.name]
                    rhs = s_source + rho - beta
                    program.add_greater_equal(
                        s_target, rhs, name=f"e1[{self.qualify(queue.name)}]"
                    )
                else:
                    # Constraint (7): s_j ≥ s_i + ̺·χ·λ − δ(e)·µ, with χ the
                    # effective (type/speed/phase-resolved) cycle count of
                    # the source copy — exactly task.wcet for plain models.
                    lam = self.variables.reciprocals[task.name]
                    tokens = self._queue_token_expression(graph_name, queue)
                    chi = effective_cycles(task, processor, queue.source_phase)
                    rhs = s_source + lam * (rho * chi) - tokens * period
                    program.add_greater_equal(
                        s_target, rhs, name=f"e2[{self.qualify(queue.name)}]"
                    )

    def add_reciprocal_constraints(self, program: ConeProgram) -> None:
        for task_name, beta in self.variables.budgets.items():
            lam = self.variables.reciprocals[task_name]
            # Constraint (8): λ·β' ≥ 1
            program.add_hyperbolic(
                lam, beta, 1.0, name=f"recip[{self.qualify(task_name)}]"
            )

    # -- coupling contributions ---------------------------------------------------
    def processor_budget_terms(
        self, processor_name: str
    ) -> Tuple[List[Variable], float]:
        """This block's contribution to Constraint (9) on one processor.

        Returns the budget variables of the block's tasks bound to the
        processor and the constant slack they carry (one granule of rounding
        slack per task, at *this application's* granularity).
        """
        tasks = self.configuration.tasks_on_processor(processor_name)
        budgets = [self.variables.budgets[task.name] for task in tasks]
        return budgets, self.configuration.granularity * len(tasks)

    def memory_usage_terms(self, memory_name: str) -> List[AffineExpression]:
        """This block's contribution to Constraint (10) on one memory.

        The +1 per buffer pre-charges the conservative rounding of the
        capacity.
        """
        buffers = self.configuration.buffers_in_memory(memory_name)
        return [
            (self.variables.capacities[buffer.name] + 1.0) * buffer.container_size
            for buffer in buffers
        ]

    def objective_terms(self) -> List[AffineExpression]:
        """This block's terms of Objective (5)."""
        terms: List[AffineExpression] = []
        for graph in self.configuration.task_graphs:
            for task in graph.tasks:
                coefficient = self.weights.budget_coefficient(task)
                if coefficient:
                    terms.append(self.variables.budgets[task.name] * coefficient)
            for buffer in graph.buffers:
                coefficient = self.weights.capacity_coefficient(buffer)
                if coefficient:
                    terms.append(self.variables.capacities[buffer.name] * coefficient)
        return terms

    def objective_value(self, solution: Solution) -> float:
        """This block's share of Objective (5) at a solution.

        The per-application objective is well defined because every objective
        term belongs to exactly one block; the shares sum to the joint
        optimum.
        """
        return sum(solution.value(term) for term in self.objective_terms())

    # -- warm start and extraction ------------------------------------------------
    def initial_point_into(self, values: Dict[Variable, float]) -> None:
        """Write this block's heuristic warm-start values into ``values``.

        The point strictly satisfies every hyperbolic constraint (``λ·β > 1``)
        and the simple bound constraints; phase I of the barrier solver
        repairs any remaining linear infeasibility.
        """
        configuration = self.configuration
        for graph in configuration.task_graphs:
            for task in graph.tasks:
                processor = configuration.platform.processor(task.processor)
                beta_var = self.variables.budgets[task.name]
                lower = beta_var.lower if beta_var.lower is not None else 1e-3
                upper = (
                    beta_var.upper
                    if beta_var.upper is not None
                    else processor.replenishment_interval
                )
                beta0 = min(max(0.5 * (lower + upper), lower * 1.01), upper * 0.999)
                values[beta_var] = beta0
                values[self.variables.reciprocals[task.name]] = 1.05 / beta0
            for buffer in graph.buffers:
                cap_var = self.variables.capacities[buffer.name]
                lower = cap_var.lower if cap_var.lower is not None else 1.0
                upper = cap_var.upper if cap_var.upper is not None else lower + 8.0
                values[cap_var] = 0.5 * (lower + upper)

    def extract_budgets(self, solution: Solution) -> Dict[str, float]:
        """Relaxed budgets ``β'(w)`` at a solution, keyed by bare task names."""
        return {
            name: solution.value(var) for name, var in self.variables.budgets.items()
        }

    def extract_capacities(self, solution: Solution) -> Dict[str, float]:
        """Relaxed capacities ``γ'(b)`` at a solution, keyed by bare buffer names."""
        return {
            name: solution.value(var)
            for name, var in self.variables.capacities.items()
        }

    def extract_start_times(self, solution: Solution) -> Dict[str, float]:
        """Start times ``s(v)`` of this block's SRDF actors at a solution."""
        return {
            name: solution.value(expr)
            for name, expr in self.variables.start_times.items()
        }


class _BlockAssembly:
    """Shared assembly of per-application blocks into one cone program.

    Subclasses provide ``self.blocks`` (the per-application
    :class:`FormulationBlock` list), ``self.platform`` (the shared platform)
    and ``self.program`` before calling :meth:`build`.  The assembler adds
    every block's variables and cone constraints, then joins the blocks
    through the shared capacity rows (Constraints (9) and (10)) and the
    summed objective.
    """

    blocks: List[FormulationBlock]
    platform: Platform
    program: ConeProgram
    _built: bool

    # -- public API ------------------------------------------------------------
    def build(self) -> ConeProgram:
        """Construct the cone program; idempotent.

        Each block's variables are registered together (tasks, capacities,
        start times per application) so that every application occupies one
        contiguous variable index range; the partition is declared to the
        program (:meth:`ConeProgram.declare_blocks`) and compiles into the
        :class:`~repro.solver.problem.BlockStructure` the barrier solver's
        structured Newton path keys off.  In the 1-block case the resulting
        variable order is exactly the historical one.
        """
        if self._built:
            return self.program
        groups: List[Tuple[Variable, ...]] = []
        for block in self.blocks:
            first = self.program.num_variables
            block.add_task_variables(self.program)
            block.add_capacity_variables(self.program)
            block.add_start_time_variables(self.program)
            groups.append(self.program.variable_slice(first))
        for block in self.blocks:
            block.add_precedence_constraints(self.program)
        for block in self.blocks:
            block.add_reciprocal_constraints(self.program)
        self._add_processor_coupling()
        self._add_memory_coupling()
        self._set_objective()
        self.program.declare_blocks(groups)
        self._built = True
        return self.program

    def initial_point(self) -> Dict[Variable, float]:
        """A heuristic warm-start point covering every block."""
        if not self._built:
            self.build()
        values: Dict[Variable, float] = {}
        for block in self.blocks:
            block.initial_point_into(values)
        return values

    def solve(self, backend: str = "auto", **options: object) -> Solution:
        """Build (if necessary) and solve the cone program."""
        program = self.build()
        return program.solve(
            backend=backend, initial_point=self.initial_point(), **options
        )

    # -- coupling rows ----------------------------------------------------------
    def _add_processor_coupling(self) -> None:
        """Constraint (9): all applications' budgets share each processor."""
        for processor_name, processor in self.platform.processors.items():
            budgets: List[Variable] = []
            slack = processor.scheduling_overhead
            for block in self.blocks:
                block_budgets, block_slack = block.processor_budget_terms(
                    processor_name
                )
                budgets.extend(block_budgets)
                slack += block_slack
            if not budgets:
                continue
            total = linear_sum(budgets) + slack
            self.program.add_less_equal(
                total,
                processor.replenishment_interval,
                name=f"processor[{processor_name}]",
            )

    def _add_memory_coupling(self) -> None:
        """Constraint (10): all applications' buffers share each bounded memory."""
        for memory_name, memory in self.platform.memories.items():
            if not memory.is_bounded:
                continue
            usage_terms: List[AffineExpression] = []
            for block in self.blocks:
                usage_terms.extend(block.memory_usage_terms(memory_name))
            if not usage_terms:
                continue
            self.program.add_less_equal(
                linear_sum(usage_terms), memory.capacity, name=f"memory[{memory_name}]"
            )

    def _set_objective(self) -> None:
        terms: List[AffineExpression] = []
        for block in self.blocks:
            terms.extend(block.objective_terms())
        self.program.minimize(linear_sum(terms))


class SocpFormulation(_BlockAssembly):
    """Builder of the joint budget / buffer-size cone program (Algorithm 1).

    The single-configuration case: exactly one :class:`FormulationBlock` with
    an empty namespace, so variable names (``beta[task]``, ``capacity[buf]``,
    ``s[actor]``) and constraint names are the same as they always were.
    """

    def __init__(
        self,
        configuration: Configuration,
        weights: Optional[ObjectiveWeights] = None,
        capacity_limits: Optional[Mapping[str, int]] = None,
        budget_limits: Optional[Mapping[str, float]] = None,
        name: Optional[str] = None,
    ) -> None:
        """Create the formulation.

        Parameters
        ----------
        configuration:
            The validated input configuration.
        weights:
            Objective weighting; defaults to the weights stored on the tasks
            and buffers themselves.
        capacity_limits:
            Optional per-buffer upper bounds on the capacity (containers),
            *in addition to* the bounds stored on the buffers.  Used by the
            trade-off sweeps of the paper's experiments.
        budget_limits:
            Optional per-task upper bounds on the budget, in addition to the
            bounds stored on the tasks.
        """
        self.configuration = configuration
        self.weights = weights or ObjectiveWeights()
        self.capacity_limits = dict(capacity_limits or {})
        self.budget_limits = dict(budget_limits or {})
        self.name = name or f"socp[{configuration.name}]"
        self.platform = configuration.platform
        self.blocks = [
            FormulationBlock(
                configuration,
                self.weights,
                capacity_limits=self.capacity_limits,
                budget_limits=self.budget_limits,
                namespace="",
            )
        ]
        self.specifications = self.blocks[0].specifications
        self.variables = self.blocks[0].variables
        self.program = ConeProgram(name=self.name)
        self._built = False

    # -- solution extraction ------------------------------------------------------
    def extract_budgets(self, solution: Solution) -> Dict[str, float]:
        """Relaxed budgets ``β'(w)`` at a solution."""
        return self.blocks[0].extract_budgets(solution)

    def extract_capacities(self, solution: Solution) -> Dict[str, float]:
        """Relaxed capacities ``γ'(b)`` at a solution."""
        return self.blocks[0].extract_capacities(solution)

    def extract_start_times(self, solution: Solution) -> Dict[str, float]:
        """Start times ``s(v)`` of all SRDF actors at a solution."""
        return self.blocks[0].extract_start_times(solution)


class WorkloadSocpFormulation(_BlockAssembly):
    """The joint cone program over every application of a workload.

    One :class:`FormulationBlock` per application, namespaced by the
    application name; the blocks are coupled only through the shared
    processor and memory capacity rows.  A one-application workload builds a
    program that is structurally identical to the application's own
    :class:`SocpFormulation` (same variables, bounds and constraints in the
    same order — only the names carry the application prefix), so both solve
    to the same optimum.

    ``capacity_limits`` and ``budget_limits`` are *per application*:
    mappings from application name to the per-buffer / per-task limit
    mappings :class:`SocpFormulation` takes.
    """

    def __init__(
        self,
        workload: Workload,
        weights: Optional[ObjectiveWeights] = None,
        capacity_limits: Optional[Mapping[str, Mapping[str, int]]] = None,
        budget_limits: Optional[Mapping[str, Mapping[str, float]]] = None,
        name: Optional[str] = None,
        reuse_blocks: Optional[Mapping[str, FormulationBlock]] = None,
    ) -> None:
        """Create the workload formulation.

        ``reuse_blocks`` optionally maps application names to
        :class:`FormulationBlock` objects from a *previous* formulation of an
        edited workload (incremental session rebuilds).  A block is reused
        only when it describes exactly the same application — same
        configuration object, namespace, weights and (absence of) limits — so
        its cached SRDF specifications and capacity bounds carry over;
        everything else gets a fresh block.  Reused blocks re-register their
        variables and constraints into this formulation's new program at
        :meth:`build` time.
        """
        self.workload = workload
        self.weights = weights or ObjectiveWeights()
        self.capacity_limits = _per_application_limits(workload, capacity_limits)
        self.budget_limits = _per_application_limits(workload, budget_limits)
        self.name = name or f"socp[{workload.name}]"
        self.platform = workload.platform
        self._blocks_by_application: Dict[str, FormulationBlock] = {}
        self._reused_applications: List[str] = []
        for application in workload.applications:
            block = None if reuse_blocks is None else reuse_blocks.get(application.name)
            if (
                block is not None
                and block.configuration is application.configuration
                and block.namespace == application.name
                and block.weights is self.weights
                and not block.capacity_limits
                and not block.budget_limits
                and not self.capacity_limits.get(application.name)
                and not self.budget_limits.get(application.name)
            ):
                self._reused_applications.append(application.name)
            else:
                block = FormulationBlock(
                    application.configuration,
                    self.weights,
                    capacity_limits=self.capacity_limits.get(application.name),
                    budget_limits=self.budget_limits.get(application.name),
                    namespace=application.name,
                )
            self._blocks_by_application[application.name] = block
        self.blocks = list(self._blocks_by_application.values())
        self.program = ConeProgram(name=self.name)
        self._built = False

    def block(self, application: str) -> FormulationBlock:
        try:
            return self._blocks_by_application[application]
        except KeyError:
            raise FormulationError(
                f"no application named {application!r} in workload "
                f"{self.workload.name!r}"
            ) from None

    # -- solution extraction ------------------------------------------------------
    def budgets_by_application(
        self, solution: Solution
    ) -> Dict[str, Dict[str, float]]:
        """Relaxed budgets per application, keyed by bare task names."""
        return {
            block.namespace: block.extract_budgets(solution) for block in self.blocks
        }

    def capacities_by_application(
        self, solution: Solution
    ) -> Dict[str, Dict[str, float]]:
        """Relaxed capacities per application, keyed by bare buffer names."""
        return {
            block.namespace: block.extract_capacities(solution)
            for block in self.blocks
        }


def _per_application_limits(
    workload: Workload, limits: Optional[Mapping[str, Mapping[str, float]]]
) -> Dict[str, Dict[str, float]]:
    """Validate per-application limit maps against the workload's applications."""
    if not limits:
        return {}
    known = set(workload.application_names)
    unknown = sorted(set(limits) - known)
    if unknown:
        raise FormulationError(
            f"limits reference unknown application(s) {unknown}; workload "
            f"{workload.name!r} has {sorted(known)}"
        )
    return {name: dict(values) for name, values in limits.items()}


class _ParametricAssembly:
    """Shared parametric plumbing over the blocks of an assembled formulation.

    Registers one parameter slot per variable-bound row the sweeps mutate —
    per block, so per-application limits of a workload get their own
    namespaced slots:

    * ``capacity_limit[<qualified buffer>]`` — the upper-bound row of ``γ'(b)``;
    * ``budget_limit[<qualified task>]`` — the upper-bound row of ``β'(w)``;
    * ``reciprocal_floor[<qualified task>]`` — the lower-bound row of ``λ(w)``,
      kept at ``1 / β'_max`` so the relaxation stays exactly as tight as the
      rebuilt program's.

    Variables whose static bounds already coincide compile to equality rows
    and expose no parametric slot; the registration records which slots exist
    so the per-point application skips the rest.
    """

    formulation: _BlockAssembly
    parametric: ParametricProblem

    def _register_blocks(self) -> None:
        self.formulation.build()
        self.parametric = ParametricProblem(self.formulation.program)
        self._budget_slots: Dict[str, bool] = {}
        self._reciprocal_slots: Dict[str, bool] = {}
        self._capacity_slots: Dict[str, bool] = {}
        for block in self.formulation.blocks:
            for task_name, beta in block.variables.budgets.items():
                qualified = block.qualify(task_name)
                self._budget_slots[qualified] = self._register(
                    f"budget_limit[{qualified}]", beta, upper=True
                )
                self._reciprocal_slots[qualified] = self._register(
                    f"reciprocal_floor[{qualified}]",
                    block.variables.reciprocals[task_name],
                    upper=False,
                )
            for buffer_name, capacity in block.variables.capacities.items():
                qualified = block.qualify(buffer_name)
                self._capacity_slots[qualified] = self._register(
                    f"capacity_limit[{qualified}]", capacity, upper=True
                )

    def _register(self, slot: str, variable: Variable, upper: bool) -> bool:
        try:
            if upper:
                self.parametric.register_upper_bound(slot, variable)
            else:
                self.parametric.register_lower_bound(slot, variable)
        except FormulationError:
            return False
        return True

    def initial_point(self) -> Dict[Variable, float]:
        """The heuristic start point of the underlying formulation."""
        return self.formulation.initial_point()

    def _apply_block_budget_limits(
        self,
        block: FormulationBlock,
        budget_limits: Mapping[str, float],
        pinned: List[str],
    ) -> None:
        for graph in block.configuration.task_graphs:
            for task in graph.tasks:
                lower, upper = effective_budget_bounds(
                    block.configuration, graph, task, budget_limits
                )
                qualified = block.qualify(task.name)
                if not self._budget_slots[qualified]:
                    continue
                if bounds_collapse(lower, upper):
                    pinned.append(f"beta[{qualified}]")
                self.parametric.set(f"budget_limit[{qualified}]", upper)
                if self._reciprocal_slots[qualified]:
                    self.parametric.set(
                        f"reciprocal_floor[{qualified}]", 1.0 / max(upper, 1e-12)
                    )

    def _apply_block_capacity_limits(
        self,
        block: FormulationBlock,
        capacity_limits: Mapping[str, int],
        pinned: List[str],
    ) -> None:
        for graph in block.configuration.task_graphs:
            default_bound = block.capacity_default_bound(graph)
            for buffer in graph.buffers:
                lower, upper = effective_capacity_bounds(
                    buffer, default_bound, capacity_limits
                )
                qualified = block.qualify(buffer.name)
                if not self._capacity_slots[qualified]:
                    continue
                if bounds_collapse(lower, upper):
                    pinned.append(f"capacity[{qualified}]")
                self.parametric.set(f"capacity_limit[{qualified}]", upper)


class ParametricSocpFormulation(_ParametricAssembly):
    """The SOCP of Algorithm 1 compiled once, with limits as parameters.

    Where :class:`SocpFormulation` bakes the sweep's ``capacity_limits`` and
    ``budget_limits`` into freshly built variable bounds — forcing a full
    rebuild and recompile per sweep point — this wrapper builds the program
    *without* the limits and registers the affected compiled rows as named
    parameters of a :class:`~repro.solver.parametric.ParametricProblem`.

    :meth:`apply_limits` recomputes the same effective bounds the rebuild
    path would (:func:`effective_budget_bounds` /
    :func:`effective_capacity_bounds` — ``min`` of the stored bounds and the
    sweep limit) and writes them into the compiled problem.  One structural
    case cannot be expressed by mutating right-hand sides: a limit that lands
    *exactly on* a variable's lower bound, which the rebuild path turns into
    an equality row.  ``apply_limits`` reports such pinned variables so the
    caller can fall back to a one-off rebuild for that point.
    """

    def __init__(
        self,
        configuration: Configuration,
        weights: Optional[ObjectiveWeights] = None,
        name: Optional[str] = None,
    ) -> None:
        self.configuration = configuration
        self.formulation = SocpFormulation(configuration, weights=weights, name=name)
        self._register_blocks()

    def apply_limits(
        self,
        capacity_limits: Optional[Mapping[str, int]] = None,
        budget_limits: Optional[Mapping[str, float]] = None,
    ) -> List[str]:
        """Write the effective bounds for one sweep point into the program.

        Re-evaluates the rebuild path's own bound arithmetic
        (:func:`effective_budget_bounds` / :func:`effective_capacity_bounds`)
        under the given limits — including raising
        :class:`InfeasibleProblemError` when a limit falls below a variable's
        lower bound, in the same variable order.  Returns the names of
        variables the limits pin onto their lower bound (the structural case
        that needs a rebuild, per
        :func:`repro.solver.problem.bounds_collapse`); an empty list means
        the compiled problem now describes exactly the limited program.
        """
        pinned: List[str] = []
        block = self.formulation.blocks[0]
        self._apply_block_budget_limits(block, dict(budget_limits or {}), pinned)
        self._apply_block_capacity_limits(block, dict(capacity_limits or {}), pinned)
        return pinned


class ParametricWorkloadFormulation(_ParametricAssembly):
    """A workload's cone program compiled once, with per-application limits
    as parameters.

    The multi-application counterpart of :class:`ParametricSocpFormulation`:
    one compiled program over every block, with each application's capacity
    and budget limits exposed as namespaced parameter slots, so
    warm-started :class:`~repro.solver.parametric.SolveSession`\\ s work on
    workloads exactly as they do on single configurations.
    """

    def __init__(
        self,
        workload: Workload,
        weights: Optional[ObjectiveWeights] = None,
        name: Optional[str] = None,
        reuse_blocks: Optional[Mapping[str, FormulationBlock]] = None,
    ) -> None:
        self.workload = workload
        self.formulation = WorkloadSocpFormulation(
            workload, weights=weights, name=name, reuse_blocks=reuse_blocks
        )
        self._register_blocks()

    def apply_limits(
        self,
        capacity_limits: Optional[Mapping[str, Mapping[str, int]]] = None,
        budget_limits: Optional[Mapping[str, Mapping[str, float]]] = None,
    ) -> List[str]:
        """Write one sweep point's per-application limits into the program.

        ``capacity_limits`` / ``budget_limits`` map application names to the
        per-buffer / per-task limit maps of that application; applications not
        mentioned keep (or return to) their unlimited bounds.  Returns the
        qualified names of pinned variables, as in
        :meth:`ParametricSocpFormulation.apply_limits`.
        """
        capacity_limits = _per_application_limits(self.workload, capacity_limits)
        budget_limits = _per_application_limits(self.workload, budget_limits)
        pinned: List[str] = []
        for block in self.formulation.blocks:
            self._apply_block_budget_limits(
                block, budget_limits.get(block.namespace, {}), pinned
            )
        for block in self.formulation.blocks:
            self._apply_block_capacity_limits(
                block, capacity_limits.get(block.namespace, {}), pinned
            )
        return pinned
