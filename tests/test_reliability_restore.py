"""Kill-and-restore equivalence: the ISSUE's headline acceptance test.

A durable replay is killed (hard, ``os._exit`` — no ``finally`` blocks, no
atexit) at seeded event boundaries; a fresh process restores from the
journal (and snapshot, when present) and finishes the trace.  The stitched
run must land on the same committed workload and the same per-event verdicts
as an uninterrupted run, within 1e-6.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.core import AllocatorOptions, JointAllocator, random_trace, replay_trace
from repro.reliability import (
    FaultPlan,
    armed,
    read_journal,
    replay_trace_durably,
    restore_controller,
)
from repro.reliability.faults import EXIT_STATUS

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="kill-and-restore test forks a child to crash",
)


def options() -> AllocatorOptions:
    return AllocatorOptions(verify=False, run_simulation=False)


def allocator() -> JointAllocator:
    return JointAllocator(options=options())


@pytest.fixture(scope="module")
def trace():
    return random_trace(event_count=8, seed=13, task_count=3, processor_count=3)


@pytest.fixture(scope="module")
def baseline(trace):
    return replay_trace(trace, allocator=allocator())


def crash_during_replay(trace, journal_path, crash_at, snapshot_every=0):
    """Run a durable replay in a forked child that dies at event ``crash_at``."""
    child = os.fork()
    if child == 0:
        # Child: never return into pytest — _exit on every path.
        try:
            plan = FaultPlan(seed=crash_at).arm(
                "replay.event", "exit", match=str(crash_at)
            )
            with armed(plan):
                replay_trace_durably(
                    trace,
                    journal_path,
                    snapshot_every=snapshot_every,
                    allocator=allocator(),
                )
        except BaseException:
            os._exit(99)
        os._exit(98)  # replay finished without crashing: wrong crash_at
    _, status = os.waitpid(child, 0)
    return os.waitstatus_to_exitcode(status)


def assert_matches_baseline(result, baseline):
    assert [r.status for r in result.records] == [r.status for r in baseline.records]
    for ours, theirs in zip(result.records, baseline.records):
        if theirs.objective_value is None:
            assert ours.objective_value is None
        else:
            assert ours.objective_value == pytest.approx(
                theirs.objective_value, abs=1e-6
            )
    if baseline.final_mapped is None:
        assert result.final_mapped is None
    else:
        assert result.final_mapped.objective_value == pytest.approx(
            baseline.final_mapped.objective_value, abs=1e-6
        )


@pytest.mark.parametrize("crash_at", [1, 4, 7])
def test_kill_and_restore_matches_an_uninterrupted_run(
    trace, baseline, tmp_path, crash_at
):
    journal_path = tmp_path / "run.journal"
    exitcode = crash_during_replay(trace, journal_path, crash_at)
    assert exitcode == EXIT_STATUS
    # The journal holds exactly the events committed before the crash.
    contents = read_journal(journal_path)
    assert contents.last_seq == crash_at
    result = replay_trace_durably(
        trace, journal_path, allocator=allocator(), resume=True
    )
    assert_matches_baseline(result, baseline)


def test_kill_and_restore_from_snapshot(trace, baseline, tmp_path):
    journal_path = tmp_path / "run.journal"
    exitcode = crash_during_replay(trace, journal_path, crash_at=6, snapshot_every=2)
    assert exitcode == EXIT_STATUS
    result = replay_trace_durably(
        trace,
        journal_path,
        snapshot_every=2,
        allocator=allocator(),
        resume=True,
    )
    assert_matches_baseline(result, baseline)


def test_double_crash_then_restore(trace, baseline, tmp_path):
    """Crash, resume, crash again further in, resume again: still equivalent."""
    journal_path = tmp_path / "run.journal"
    assert crash_during_replay(trace, journal_path, crash_at=2) == EXIT_STATUS

    child = os.fork()
    if child == 0:
        try:
            plan = FaultPlan(seed=5).arm("replay.event", "exit", match="5")
            with armed(plan):
                replay_trace_durably(
                    trace, journal_path, allocator=allocator(), resume=True
                )
        except BaseException:
            os._exit(99)
        os._exit(98)
    _, status = os.waitpid(child, 0)
    assert os.waitstatus_to_exitcode(status) == EXIT_STATUS
    assert read_journal(journal_path).last_seq == 5

    result = replay_trace_durably(
        trace, journal_path, allocator=allocator(), resume=True
    )
    assert_matches_baseline(result, baseline)


def test_restore_controller_from_a_crashed_journal(trace, tmp_path):
    """The restored controller is live: it can keep admitting after restore."""
    journal_path = tmp_path / "run.journal"
    assert crash_during_replay(trace, journal_path, crash_at=4) == EXIT_STATUS
    contents = read_journal(journal_path)
    controller, records = restore_controller(contents, allocator=allocator())
    assert len(records) == len(contents.entries)
    # Finish the trace by hand through the live controller.
    from repro.core import apply_trace_event

    for index in range(len(records), len(trace.events)):
        apply_trace_event(controller, index, trace.events[index])
    uninterrupted = replay_trace(trace, allocator=allocator())
    expected = (
        sorted(uninterrupted.final_mapped.applications)
        if uninterrupted.final_mapped is not None
        else []
    )
    assert sorted(controller.running) == expected
    if uninterrupted.final_mapped is not None:
        assert controller.mapped.objective_value == pytest.approx(
            uninterrupted.final_mapped.objective_value, abs=1e-6
        )
