"""Tests for budget schedulers: latency-rate servers, TDM slot tables, allocations."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import AllocationError, ModelError, SimulationError
from repro.scheduling import (
    BudgetAllocation,
    LatencyRateServer,
    TdmScheduler,
    TdmSlotTable,
    allocations_from_mapping,
    build_slot_table,
    required_budget_for_completion,
    validate_budget_feasibility,
)
from repro.taskgraph import MappedConfiguration, Processor
from repro.taskgraph.generators import producer_consumer_configuration


class TestLatencyRateServer:
    def test_from_budget(self):
        server = LatencyRateServer.from_budget(8.0, 40.0)
        assert server.latency == pytest.approx(32.0)
        assert server.rate == pytest.approx(0.2)

    def test_worst_case_completion_matches_actor_durations(self):
        """Θ + χ/r equals the sum of the two actor firing durations of the paper."""
        budget, interval, wcet = 8.0, 40.0, 1.0
        server = LatencyRateServer.from_budget(budget, interval)
        expected = (interval - budget) + interval * wcet / budget
        assert server.worst_case_completion(wcet) == pytest.approx(expected)

    def test_busy_period_service(self):
        server = LatencyRateServer.from_budget(10.0, 40.0)
        assert server.busy_period_service(30.0) == pytest.approx(0.0)
        assert server.busy_period_service(40.0) == pytest.approx(2.5)

    def test_invalid_inputs(self):
        with pytest.raises(ModelError):
            LatencyRateServer.from_budget(0.0, 40.0)
        with pytest.raises(ModelError):
            LatencyRateServer.from_budget(41.0, 40.0)
        with pytest.raises(ModelError):
            LatencyRateServer(latency=-1.0, rate=0.5)
        server = LatencyRateServer.from_budget(10.0, 40.0)
        with pytest.raises(ModelError):
            server.worst_case_completion(-1.0)

    def test_required_budget_for_completion(self):
        # The returned budget makes the latency-rate completion bound exactly
        # meet the deadline (for ̺ = 40, χ = 1, deadline = 10 that is ≈ 31.28).
        budget = required_budget_for_completion(1.0, 10.0, 40.0)
        server = LatencyRateServer.from_budget(budget, 40.0)
        assert server.worst_case_completion(1.0) == pytest.approx(10.0, rel=1e-9)
        with pytest.raises(ModelError):
            required_budget_for_completion(5.0, 3.0, 40.0)


class TestSlotTable:
    def test_build_and_budget_accounting(self):
        table = build_slot_table({"a": 3.0, "b": 2.0}, 10.0, granularity=1.0)
        assert table.wheel_length == pytest.approx(10.0)
        assert table.budget_of("a") == pytest.approx(3.0)
        assert table.budget_of("b") == pytest.approx(2.0)
        assert table.budget_of("missing") == 0.0
        assert table.tasks() == ("a", "b")

    def test_contiguous_allocation(self):
        table = build_slot_table(
            {"a": 3.0, "b": 2.0}, 10.0, granularity=1.0, interleave=False
        )
        owners = [owner for owner in table.owners if owner is not None]
        assert owners == ["a", "a", "a", "b", "b"]

    def test_rejects_non_granular_budget(self):
        with pytest.raises(ModelError):
            build_slot_table({"a": 2.5}, 10.0, granularity=1.0)

    def test_rejects_overcommitted_wheel(self):
        with pytest.raises(ModelError):
            build_slot_table({"a": 6.0, "b": 6.0}, 10.0, granularity=1.0)

    def test_overhead_reserves_slots(self):
        with pytest.raises(ModelError):
            build_slot_table({"a": 9.0}, 10.0, granularity=1.0, scheduling_overhead=2.0)

    def test_slot_table_validation(self):
        with pytest.raises(ModelError):
            TdmSlotTable(slot_length=0.0, owners=("a",))
        with pytest.raises(ModelError):
            TdmSlotTable(slot_length=1.0, owners=())


class TestTdmScheduler:
    def test_serving_within_one_slot(self):
        table = build_slot_table({"a": 5.0, "b": 5.0}, 10.0, granularity=1.0, interleave=False)
        scheduler = TdmScheduler(table)
        result = scheduler.serve("a", work=2.0, arrival=0.0)
        assert result.completion == pytest.approx(2.0)

    def test_arrival_outside_own_slots_waits(self):
        table = build_slot_table({"a": 2.0, "b": 8.0}, 10.0, granularity=1.0, interleave=False)
        scheduler = TdmScheduler(table)
        # 'a' owns slots [0, 2); arriving at t = 2 it must wait for the next wheel.
        result = scheduler.serve("a", work=1.0, arrival=2.0)
        assert result.completion == pytest.approx(11.0)

    def test_zero_work_completes_immediately(self):
        table = build_slot_table({"a": 2.0}, 10.0, granularity=1.0)
        scheduler = TdmScheduler(table)
        assert scheduler.serve("a", 0.0, arrival=3.3).completion == pytest.approx(3.3)

    def test_unknown_task_rejected(self):
        table = build_slot_table({"a": 2.0}, 10.0, granularity=1.0)
        with pytest.raises(SimulationError):
            TdmScheduler(table).serve("zzz", 1.0)

    def test_latency_rate_bound_is_conservative(self):
        """The paper's model bounds every concrete TDM schedule from above."""
        for budgets in ({"a": 2.0, "b": 8.0}, {"a": 5.0, "b": 5.0}, {"a": 1.0, "b": 3.0}):
            for interleave in (True, False):
                table = build_slot_table(budgets, 10.0, granularity=1.0, interleave=interleave)
                scheduler = TdmScheduler(table)
                for work in (0.5, 1.0, 2.7, 6.0):
                    bound = scheduler.latency_rate_bound("a").worst_case_completion(work)
                    observed = scheduler.worst_case_response("a", work, samples=40)
                    assert observed <= bound + 1e-9, (budgets, interleave, work)


class TestBudgetAllocation:
    def test_feasibility_and_utilisation(self):
        processor = Processor("p1", replenishment_interval=40.0, scheduling_overhead=2.0)
        allocation = BudgetAllocation(processor=processor, budgets={"a": 20.0, "b": 10.0})
        assert allocation.is_feasible()
        assert allocation.utilisation == pytest.approx(0.75)
        allocation.budgets["c"] = 10.0
        assert not allocation.is_feasible()

    def test_slot_table_round_trip(self):
        processor = Processor("p1", replenishment_interval=40.0)
        allocation = BudgetAllocation(
            processor=processor, budgets={"a": 8.0, "b": 4.0}, granularity=1.0
        )
        scheduler = allocation.scheduler()
        assert scheduler.slot_table.budget_of("a") == pytest.approx(8.0)
        bounds = allocation.latency_rate_bounds()
        assert bounds["a"].rate == pytest.approx(0.2)

    def test_infeasible_allocation_cannot_build_slot_table(self):
        processor = Processor("p1", replenishment_interval=10.0)
        allocation = BudgetAllocation(processor=processor, budgets={"a": 20.0})
        with pytest.raises(AllocationError):
            allocation.slot_table()

    def test_allocations_from_mapping(self):
        config = producer_consumer_configuration()
        mapped = MappedConfiguration(
            configuration=config,
            budgets={"wa": 18.0, "wb": 20.0},
            buffer_capacities={"bab": 5},
        )
        allocations = allocations_from_mapping(mapped)
        assert allocations["p1"].budgets == {"wa": 18.0}
        assert validate_budget_feasibility(mapped) == []
        mapped.budgets["wa"] = 50.0
        assert validate_budget_feasibility(mapped)


@settings(max_examples=30, deadline=None)
@given(
    slots=st.integers(min_value=1, max_value=8),
    total_slots=st.integers(min_value=10, max_value=20),
    work=st.floats(min_value=0.1, max_value=12.0, allow_nan=False),
    arrival_fraction=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    interleave=st.booleans(),
)
def test_tdm_response_never_exceeds_latency_rate_bound(
    slots, total_slots, work, arrival_fraction, interleave
):
    """Property: for any slot layout and arrival phase, the concrete TDM response
    time never exceeds the (̺ − β) + ̺·work/β bound used by the dataflow model."""
    budgets = {"task": float(slots), "other": float(total_slots - slots)}
    table = build_slot_table(budgets, float(total_slots), granularity=1.0, interleave=interleave)
    scheduler = TdmScheduler(table)
    arrival = arrival_fraction * table.wheel_length
    result = scheduler.serve("task", work, arrival=arrival)
    bound = scheduler.latency_rate_bound("task").worst_case_completion(work)
    assert result.response_time <= bound + 1e-7
