"""Structured-vs-dense Newton equivalence and engagement tests.

The block-structured barrier path (per-application block factorisations +
Schur-complement coupling solve, see :mod:`repro.solver.barrier`) must be a
pure performance change: on any workload program it has to return the same
optimum as the dense path to solver precision, engage automatically exactly
for multi-application programs with narrow coupling, and leave unstructured
programs on the dense path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AllocatorOptions, JointAllocator
from repro.core.formulation import WorkloadSocpFormulation
from repro.exceptions import FormulationError
from repro.solver import ConeProgram
from repro.solver.backends import solve_compiled
from repro.taskgraph import Workload
from repro.taskgraph.generators import random_dag_configuration


def make_workload(app_count: int, seed: int = 3, task_count: int = 4) -> Workload:
    """``app_count`` random applications competing for one shared platform."""
    applications = [
        random_dag_configuration(
            task_count=task_count,
            processor_count=4,
            seed=seed + index,
            wcet_range=(0.3, 0.9),
        )
        for index in range(app_count)
    ]
    workload = Workload(applications[0].platform, name=f"structured-{app_count}")
    for index, application in enumerate(applications):
        workload.add_application(f"app{index}", application)
    return workload


def solve_both(formulation, initial_point=None):
    """One compiled problem solved structured and dense; returns both solutions."""
    program = formulation.build()
    compiled = program.compile()
    structured = solve_compiled(
        compiled,
        backend="barrier",
        initial_point=initial_point,
        options={"structured": True},
    )
    dense = solve_compiled(
        compiled,
        backend="barrier",
        initial_point=initial_point,
        options={"structured": False},
    )
    return structured, dense


def assert_equivalent(structured, dense, atol: float = 1e-8) -> None:
    assert structured.is_optimal and dense.is_optimal
    assert structured.stats["structured"] is True
    assert dense.stats["structured"] is False
    assert structured.objective == pytest.approx(dense.objective, abs=atol)
    point_s, point_d = structured.by_name(), dense.by_name()
    assert point_s.keys() == point_d.keys()
    for name, value in point_s.items():
        assert value == pytest.approx(point_d[name], abs=atol), name


class TestStructuredDenseEquivalence:
    @pytest.mark.parametrize("app_count,seed", [(2, 3), (2, 17), (3, 7), (4, 29)])
    def test_random_workloads_agree(self, app_count, seed):
        formulation = WorkloadSocpFormulation(make_workload(app_count, seed=seed))
        initial = None
        structured, dense = solve_both(formulation, initial)
        assert_equivalent(structured, dense)

    def test_warm_started_from_heuristic_point(self):
        formulation = WorkloadSocpFormulation(make_workload(3, seed=11))
        program = formulation.build()
        compiled = program.compile()
        initial = compiled.vector_from_mapping(formulation.initial_point())
        structured, dense = solve_both(formulation, initial)
        assert_equivalent(structured, dense)

    def test_phase_one_required_case(self):
        """Cold start from zeros violates λ·β ≥ 1, so phase I must run — and
        the structured phase I (relaxation variable as the arrow border) has
        to match the dense one."""
        formulation = WorkloadSocpFormulation(make_workload(2, seed=5))
        structured, dense = solve_both(formulation, initial_point=None)
        assert structured.stats["phase1_skipped"] is False
        assert dense.stats["phase1_skipped"] is False
        assert structured.stats["phase1_newton_iterations"] > 0
        assert_equivalent(structured, dense)

    def test_pinned_bound_case(self):
        """A capacity limit landing on a buffer's lower bound compiles to an
        equality row; the blockwise elimination must agree with the dense
        SVD elimination."""
        workload = make_workload(2, seed=3)
        application = workload.applications[0]
        buffer = application.configuration.task_graphs[0].buffers[0]
        pinned = int(np.ceil(buffer.smallest_feasible_capacity))
        formulation = WorkloadSocpFormulation(
            workload,
            capacity_limits={application.name: {buffer.name: pinned}},
        )
        compiled = formulation.build().compile()
        assert compiled.A.size > 0 or pinned > buffer.smallest_feasible_capacity
        structured, dense = solve_both(formulation)
        assert_equivalent(structured, dense)


class TestEngagement:
    def test_multi_application_allocation_engages_automatically(self):
        allocator = JointAllocator(
            options=AllocatorOptions(verify=False, run_simulation=False)
        )
        mapped = allocator.allocate_workload(make_workload(2, seed=3))
        assert mapped.solver_info["solve_stats"]["structured"] is True

    def test_single_application_stays_dense(self):
        """One block has nothing to decouple; auto mode keeps the dense path."""
        formulation = WorkloadSocpFormulation(make_workload(1, seed=3))
        solution = formulation.solve(backend="barrier")
        assert solution.is_optimal
        assert solution.stats["structured"] is False

    def test_unstructured_program_falls_back_to_dense(self):
        """A program without declared blocks carries no structure, so even a
        forced ``structured=True`` runs (and reports) the dense path."""
        program = ConeProgram("plain")
        x = program.add_variable("x", lower=0.1, upper=10.0)
        y = program.add_variable("y", lower=0.1, upper=10.0)
        program.add_hyperbolic(x, y, 4.0, name="xy")
        program.minimize(x + y)
        compiled = program.compile()
        assert compiled.block_structure is None
        solution = solve_compiled(
            compiled, backend="barrier", options={"structured": True}
        )
        assert solution.is_optimal
        assert solution.stats["structured"] is False
        assert solution.objective == pytest.approx(4.0, abs=1e-5)

    def test_cross_block_cone_constraint_drops_structure(self):
        """Only linear rows may couple blocks: a hyperbolic constraint across
        two declared blocks cannot go through the Schur solve, so compilation
        emits no structure at all."""
        program = ConeProgram("cross")
        x = program.add_variable("x", lower=0.1, upper=10.0)
        y = program.add_variable("y", lower=0.1, upper=10.0)
        program.add_hyperbolic(x, y, 4.0, name="xy")
        program.minimize(x + y)
        program.declare_blocks([[x], [y]])
        assert program.compile().block_structure is None

    def test_fully_pinned_block_with_phase_one(self):
        """A block whose only variable collapses to an equality reduces to
        width zero; its border-only phase-I curvature (the ``t`` bound row is
        homed in block 0) must still enter the border Schur complement."""
        program = ConeProgram("pinned-block")
        x = program.add_variable("x", lower=2.0, upper=2.0)
        y = program.add_variable("y", lower=0.0, upper=10.0)
        program.add_less_equal(x + y, 5.0, name="coupling")
        program.maximize(y)
        program.declare_blocks([[x], [y]])
        compiled = program.compile()
        assert compiled.block_structure is not None
        assert compiled.A.size > 0  # the collapsed bound became an equality
        structured = solve_compiled(
            compiled, backend="barrier", options={"structured": True}
        )
        dense = solve_compiled(
            compiled, backend="barrier", options={"structured": False}
        )
        assert structured.is_optimal and dense.is_optimal
        assert structured.stats["structured"] is True
        # Starting from zeros, y = 0 sits on its bound, so phase I must run.
        assert structured.stats["phase1_skipped"] is False
        assert structured.objective == pytest.approx(-3.0, abs=1e-6)
        assert structured.by_name()["y"] == pytest.approx(
            dense.by_name()["y"], abs=1e-8
        )

    def test_declare_blocks_rejects_foreign_variables(self):
        program = ConeProgram("a")
        other = ConeProgram("b")
        foreign = other.add_variable("x")
        with pytest.raises(FormulationError):
            program.declare_blocks([[foreign]])


class TestBlockStructureCompilation:
    def test_workload_structure_shape(self):
        formulation = WorkloadSocpFormulation(make_workload(3, seed=3))
        compiled = formulation.build().compile()
        structure = compiled.block_structure
        assert structure is not None
        assert structure.num_blocks == 3
        # The ranges partition the variables contiguously and in order.
        expected_start = 0
        for start, stop in structure.ranges:
            assert start == expected_start
            assert stop > start
            expected_start = stop
        assert expected_start == compiled.num_variables
        # The coupling rows are exactly the shared capacity rows.
        coupling_names = {
            compiled.inequality_names[row] for row in structure.coupling_rows
        }
        assert coupling_names
        for name in coupling_names:
            assert name.startswith("processor[") or name.startswith("memory[")
        # Every non-coupling constraint is confined to one block.
        assert np.all(structure.row_blocks >= -1)
        assert len(structure.hyperbolic_blocks) == len(compiled.hyperbolic)

    def test_one_block_case_keeps_structure_but_not_engagement(self):
        formulation = WorkloadSocpFormulation(make_workload(1, seed=3))
        compiled = formulation.build().compile()
        assert compiled.block_structure is not None
        assert compiled.block_structure.num_blocks == 1


class TestEliminationCache:
    def test_session_computes_elimination_once(self):
        """A compile-once workload session reuses the cached null-space basis
        across every re-solve of the sweep."""
        workload = make_workload(2, seed=3)
        allocator = JointAllocator(
            options=AllocatorOptions(verify=False, run_simulation=False)
        )
        session = allocator.workload_session(workload)
        application = workload.applications[0]
        buffers = application.configuration.task_graphs[0].buffers
        for limit in (8, 7, 6):
            session.allocate(
                capacity_limits={
                    application.name: {buffer.name: limit for buffer in buffers}
                }
            )
        assert session.stats.solves == 3
        assert session.stats.rebuilds == 0
        assert session.stats.eliminations == 1

    def test_repeat_solve_reuses_cache(self):
        formulation = WorkloadSocpFormulation(make_workload(2, seed=3))
        compiled = formulation.build().compile()
        first = solve_compiled(compiled, backend="barrier")
        second = solve_compiled(compiled, backend="barrier")
        assert first.stats["elimination_computed"] is True
        assert second.stats["elimination_computed"] is False
        assert second.objective == pytest.approx(first.objective, abs=1e-9)
