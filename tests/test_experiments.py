"""Tests of the experiment drivers that regenerate the paper's figures.

These are the executable versions of the qualitative claims in Section V of
the paper; the benchmarks reuse the same drivers and additionally record
timings.
"""

from __future__ import annotations

import io

import pytest

from repro.baselines.budget_minimization import producer_consumer_minimum_budget
from repro.experiments import run_all, run_figure2, run_figure3
from repro.experiments.figure2 import build_configuration as build_figure2_configuration
from repro.experiments.figure3 import build_configuration as build_figure3_configuration


@pytest.fixture(scope="module")
def figure2():
    return run_figure2()


@pytest.fixture(scope="module")
def figure3():
    return run_figure3()


class TestFigure2Configuration:
    def test_matches_paper_parameters(self):
        config = build_figure2_configuration()
        graph = config.task_graphs[0]
        assert graph.period == 10.0
        assert {t.wcet for t in graph.tasks} == {1.0}
        assert {
            config.platform.processor(t.processor).replenishment_interval
            for t in graph.tasks
        } == {40.0}


class TestFigure2(object):
    def test_sweep_covers_one_to_ten_containers(self, figure2):
        assert figure2.capacity_limits == list(range(1, 11))

    def test_budget_curve_is_non_increasing_and_convex_shaped(self, figure2):
        budgets = figure2.relaxed_budget_wa
        assert all(b1 >= b2 - 1e-9 for b1, b2 in zip(budgets, budgets[1:]))
        # Endpoints reported by the paper: ≈ 36 Mcycles at 1 container and the
        # 4-Mcycle floor at 10 containers.
        assert budgets[0] == pytest.approx(36.1, abs=0.2)
        assert budgets[-1] == pytest.approx(4.0, abs=0.05)

    def test_both_tasks_get_equal_budgets(self, figure2):
        for wa, wb in zip(figure2.budget_wa, figure2.budget_wb):
            assert wa == pytest.approx(wb, abs=1.0)

    def test_matches_analytic_reference(self, figure2):
        for relaxed, analytic in zip(figure2.relaxed_budget_wa, figure2.analytic_budget):
            assert relaxed == pytest.approx(analytic, rel=2e-3)

    def test_ten_containers_minimise_the_budget(self, figure2):
        """The paper: 'A buffer capacity of 10 containers minimises the budgets.'"""
        floor = producer_consumer_minimum_budget(10)
        assert figure2.relaxed_budget_wa[-1] == pytest.approx(floor, rel=1e-3)
        assert figure2.relaxed_budget_wa[-2] > floor + 0.25

    def test_reduction_curve_shape(self, figure2):
        """Figure 2(b): positive, diminishing, ≈ 4.8 Mcycles at 2 containers."""
        reductions = [step.reduction for step in figure2.reductions]
        assert len(reductions) == 9
        assert reductions[0] == pytest.approx(4.83, abs=0.1)
        assert all(r > 0.0 for r in reductions)
        assert all(r1 >= r2 - 1e-6 for r1, r2 in zip(reductions, reductions[1:]))
        assert reductions[-1] < 1.0

    def test_rows_render(self, figure2):
        rows = figure2.rows()
        assert len(rows) == 10
        assert set(rows[0]) >= {"buffer_capacity", "budget_wa_mcycles"}
        reduction_rows = figure2.reduction_rows()
        assert len(reduction_rows) == 9


class TestFigure3:
    def test_sweep_is_feasible_everywhere(self, figure3):
        assert figure3.capacity_limits == list(range(1, 11))

    def test_outer_tasks_are_symmetric(self, figure3):
        for wa, wc in zip(figure3.relaxed_budget_wa, figure3.relaxed_budget_wc):
            assert wa == pytest.approx(wc, rel=1e-2, abs=5e-2)

    def test_middle_task_budget_dominates(self, figure3):
        """Topology dependence: w_b interacts with two buffers, so its budget
        is reduced only after the budgets of w_a and w_c."""
        for wa, wb in zip(figure3.relaxed_budget_wa, figure3.relaxed_budget_wb):
            assert wb >= wa - 1e-6

    def test_budgets_decrease_with_capacity(self, figure3):
        for series in (figure3.relaxed_budget_wa, figure3.relaxed_budget_wb):
            assert all(b1 >= b2 - 1e-9 for b1, b2 in zip(series, series[1:]))

    def test_all_tasks_reach_the_floor_at_ten_containers(self, figure3):
        assert figure3.budget_wa[-1] == pytest.approx(4.0)
        assert figure3.budget_wb[-1] == pytest.approx(4.0)
        assert figure3.budget_wc[-1] == pytest.approx(4.0)

    def test_configuration_matches_paper(self):
        config = build_figure3_configuration()
        graph = config.task_graphs[0]
        assert len(graph.tasks) == 3
        assert len(graph.buffers) == 2
        assert len({t.processor for t in graph.tasks}) == 3


class TestRunner:
    def test_run_all_prints_tables_and_returns_results(self):
        stream = io.StringIO()
        results = run_all(stream=stream)
        output = stream.getvalue()
        assert "Figure 2(a)" in output
        assert "Figure 2(b)" in output
        assert "Figure 3" in output
        assert "figure2" in results and "figure3" in results
        assert results["runtime_seconds"]["figure2"] > 0.0

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_all(engine="frobnicate")


class TestBatchEngine:
    def test_batch_sweep_matches_direct_sweep(self):
        """The batch engine must reproduce the explorer sweep exactly."""
        from repro.experiments import batch_capacity_sweep, figure2_from_curve

        sweep = (1, 2, 3)
        direct = run_figure2(capacity_sweep=sweep)
        curve = batch_capacity_sweep(build_figure2_configuration(), sweep)
        batch = figure2_from_curve(curve)
        assert batch.rows() == direct.rows()
        assert batch.reduction_rows() == direct.reduction_rows()

    def test_batch_sweep_propagates_solver_failures(self, monkeypatch):
        """Errors must not be silently mapped to infeasible figure points."""
        import repro.batch.executor as executor_module
        from repro.exceptions import AllocationError
        from repro.experiments import batch_capacity_sweep

        def broken_solve(payload):
            return {
                "label": payload["label"],
                "key": payload["key"],
                "status": "error",
                "error": "synthetic failure",
                "solve_seconds": 0.0,
            }

        monkeypatch.setattr(executor_module, "_solve_payload", broken_solve)
        with pytest.raises(AllocationError, match="synthetic failure"):
            batch_capacity_sweep(build_figure2_configuration(), (1, 2))

    def test_run_all_with_batch_engine_and_cache(self, tmp_path):
        stream = io.StringIO()
        results = run_all(
            stream=stream, engine="batch", cache_dir=str(tmp_path / "cache")
        )
        assert results["engine"] == "batch"
        assert "Figure 2(a)" in stream.getvalue()
        # a second run is served from the cache and reproduces the figures
        rerun = run_all(
            stream=io.StringIO(), engine="batch", cache_dir=str(tmp_path / "cache")
        )
        assert rerun["figure2"].rows() == results["figure2"].rows()
        assert rerun["figure3"].rows() == results["figure3"].rows()
