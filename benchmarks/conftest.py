"""Shared configuration for the benchmark harness.

Every benchmark regenerates one artefact of the paper's evaluation section
(or one ablation listed in DESIGN.md) and asserts its qualitative shape, so a
benchmark run doubles as a reproduction run.  Numbers are attached to the
pytest-benchmark report via ``benchmark.extra_info`` so that
``pytest benchmarks/ --benchmark-only --benchmark-json=...`` captures both the
timings and the reproduced series.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def record_series():
    """Helper that attaches a named data series to the benchmark report."""

    def _record(benchmark, name, values):
        benchmark.extra_info[name] = values
        return values

    return _record
