"""General non-linear programming backend built on :func:`scipy.optimize.minimize`.

This backend exists for two reasons:

* as an independent cross-check of the from-scratch barrier interior-point
  method (the test-suite solves the same programs with both backends and
  compares optima), and
* as a fallback when the barrier method fails to converge on an unusually
  ill-conditioned instance.

It handles exactly the same constraint families as the barrier solver:
linear (in)equalities, hyperbolic constraints ``p(x)·q(x) ≥ w`` and general
second-order cone constraints ``‖A·x + b‖ ≤ c·x + d``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
from scipy.optimize import minimize

from repro.solver.problem import CompiledProblem
from repro.solver.result import Solution, SolverStatus

_FEASIBILITY_TOLERANCE = 1e-6


def _initial_guess(problem: CompiledProblem, initial_point: Optional[np.ndarray]) -> np.ndarray:
    if initial_point is not None:
        return np.asarray(initial_point, dtype=float).copy()
    guess = np.ones(problem.num_variables)
    for i, var in enumerate(problem.variables):
        lower = var.lower if var.lower is not None else None
        upper = var.upper if var.upper is not None else None
        if lower is not None and upper is not None:
            guess[i] = 0.5 * (lower + upper)
        elif lower is not None:
            guess[i] = lower + 1.0
        elif upper is not None:
            guess[i] = upper - 1.0
    return guess


def _build_constraints(problem: CompiledProblem) -> List[dict]:
    constraints: List[dict] = []

    if problem.G.size:
        G, h = problem.G, problem.h
        constraints.append(
            {
                "type": "ineq",
                "fun": lambda x, G=G, h=h: h - G @ x,
                "jac": lambda x, G=G: -G,
            }
        )
    if problem.A.size:
        A, b = problem.A, problem.b
        constraints.append(
            {
                "type": "eq",
                "fun": lambda x, A=A, b=b: A @ x - b,
                "jac": lambda x, A=A: A,
            }
        )
    for hyp in problem.hyperbolic:
        p, p0, q, q0, w = hyp.p, hyp.p0, hyp.q, hyp.q0, hyp.bound

        def fun(x, p=p, p0=p0, q=q, q0=q0, w=w):
            return np.array([(p @ x + p0) * (q @ x + q0) - w])

        def jac(x, p=p, p0=p0, q=q, q0=q0):
            return ((q @ x + q0) * p + (p @ x + p0) * q).reshape(1, -1)

        constraints.append({"type": "ineq", "fun": fun, "jac": jac})
    for cone in problem.cones:
        A, b, c, d = cone.A, cone.b, cone.c, cone.d

        def fun(x, A=A, b=b, c=c, d=d):
            u = A @ x + b
            return np.array([float(c @ x + d) - np.sqrt(float(u @ u) + 1e-16)])

        constraints.append({"type": "ineq", "fun": fun})
    return constraints


def solve_with_scipy(
    problem: CompiledProblem,
    initial_point: Optional[np.ndarray] = None,
    method: str = "SLSQP",
    max_iterations: int = 500,
) -> Solution:
    """Solve a compiled problem with a scipy general-purpose NLP method."""
    n = problem.num_variables
    if n == 0:
        return Solution(
            status=SolverStatus.OPTIMAL,
            objective=problem.c0,
            values={},
            backend="scipy",
        )

    x0 = _initial_guess(problem, initial_point)
    constraints = _build_constraints(problem)

    result = minimize(
        fun=lambda x: problem.objective_value(x),
        x0=x0,
        jac=lambda x: problem.c,
        constraints=constraints,
        method=method,
        options={"maxiter": max_iterations, "ftol": 1e-10},
    )

    x = np.asarray(result.x, dtype=float)
    linear_violation = problem.max_linear_violation(x)
    cone_margin = problem.min_cone_margin(x)
    feasible = linear_violation <= _FEASIBILITY_TOLERANCE and cone_margin >= -_FEASIBILITY_TOLERANCE

    if result.success and feasible:
        status = SolverStatus.OPTIMAL
    elif not feasible:
        status = SolverStatus.INFEASIBLE
    else:
        status = SolverStatus.NUMERICAL_ERROR

    return Solution(
        status=status,
        objective=problem.objective_value(x) if feasible else None,
        values=problem.point_as_mapping(x) if feasible else {},
        backend="scipy",
        iterations=int(getattr(result, "nit", 0) or 0),
        message=str(result.message),
    )
