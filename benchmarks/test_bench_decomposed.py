"""Decomposed solver scaling: per-application fan-out vs the sparse joint solve.

Seeded random workloads of 32/64/128 applications are solved three ways: the
sparse block-Newton joint baseline, the decomposed mode on one worker, and
the decomposed mode fanned out over worker processes.  The recorded metrics
are end-to-end wall-clock per instance and the speedup of the fan-out over
the one-worker decomposed run.  The optima must agree with the joint
baseline within ``1e-6`` at every size; on a machine with a core per worker
the 4-worker fan-out must at least halve the 64-application wall-clock
(fewer cores — shared CI runners, single-CPU containers — cannot show a
wall-clock speedup, so there the numbers are only recorded).
"""

from __future__ import annotations

import os
from time import perf_counter

import pytest

from repro.core.formulation import WorkloadSocpFormulation
from repro.taskgraph import random_workload

SIZES = (32, 64, 128)

#: Worker counts of the fan-out benchmarks (on the SPEEDUP_APPS workload).
SPEEDUP_APPS = 64
PARALLEL_WORKERS = 4

EQUIV_TOL = 1e-6

#: Wall-clock measurements shared between the benchmarks of this module
#: (pytest runs them in definition order: joint first, serial decomposed
#: next, fan-out last).
MEASURED = {}


def make_workload(apps: int):
    # Small granularity keeps the per-task budget floor (one granule each)
    # from saturating the shared processors at high application counts.
    return random_workload(application_count=apps, seed=7, granularity=0.05)


def solve(apps: int, backend: str, **options):
    return WorkloadSocpFormulation(make_workload(apps)).solve(
        backend=backend, **options
    )


def run_timed(benchmark, fn):
    """One timed run that also works under ``--benchmark-disable``.

    The smoke gate in CI runs this module with benchmarking disabled (where
    ``benchmark.stats`` is ``None``), so the wall-clock used by the speedup
    assertions is measured directly around the solve.
    """
    box = {}

    def timed():
        started = perf_counter()
        box["solution"] = fn()
        box["wall"] = perf_counter() - started
        return box["solution"]

    benchmark.pedantic(timed, rounds=1, iterations=1, warmup_rounds=0)
    return box["solution"], box["wall"]


@pytest.mark.benchmark(group="decomposed-scaling")
@pytest.mark.parametrize("apps", SIZES)
def test_joint_sparse_baseline(benchmark, apps):
    solution, wall = run_timed(benchmark, lambda: solve(apps, "auto"))
    assert solution.is_optimal
    MEASURED[("joint", apps)] = (wall, solution.objective)
    benchmark.extra_info["applications"] = apps
    benchmark.extra_info["backend"] = solution.backend
    benchmark.extra_info["wall_seconds"] = round(wall, 4)


@pytest.mark.benchmark(group="decomposed-scaling")
@pytest.mark.parametrize("apps", SIZES)
def test_decomposed_serial(benchmark, apps):
    solution, wall = run_timed(benchmark, lambda: solve(apps, "decomposed"))
    assert solution.is_optimal
    MEASURED[("decomposed", apps)] = wall
    benchmark.extra_info["applications"] = apps
    benchmark.extra_info["wall_seconds"] = round(wall, 4)
    benchmark.extra_info["blocks"] = solution.stats["decomposed_blocks"]
    benchmark.extra_info["subproblem_solves"] = solution.stats[
        "subproblem_solves"
    ]
    joint = MEASURED.get(("joint", apps))
    if joint is not None:
        joint_wall, joint_objective = joint
        benchmark.extra_info["vs_joint_wall"] = round(joint_wall / wall, 3)
        scale = max(1.0, abs(joint_objective))
        assert (
            abs(solution.objective - joint_objective) / scale < EQUIV_TOL
        ), f"decomposed optimum drifted from the joint baseline at {apps} apps"


@pytest.mark.benchmark(group="decomposed-workers")
@pytest.mark.parametrize("workers", (2, PARALLEL_WORKERS))
def test_decomposed_parallel(benchmark, workers):
    solution, wall = run_timed(
        benchmark,
        lambda: solve(
            SPEEDUP_APPS,
            "decomposed",
            decomposed_workers=workers,
            decomposed_fanout="process",
        ),
    )
    assert solution.is_optimal
    benchmark.extra_info["applications"] = SPEEDUP_APPS
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["wall_seconds"] = round(wall, 4)
    benchmark.extra_info["subproblem_speedup"] = round(
        solution.stats["parallel_speedup"], 3
    )

    joint = MEASURED.get(("joint", SPEEDUP_APPS))
    if joint is not None:
        scale = max(1.0, abs(joint[1]))
        assert abs(solution.objective - joint[1]) / scale < EQUIV_TOL

    serial_wall = MEASURED.get(("decomposed", SPEEDUP_APPS))
    if serial_wall is None:
        serial_wall = solve(SPEEDUP_APPS, "decomposed").solve_time or None
    if serial_wall is not None:
        speedup = serial_wall / wall
        benchmark.extra_info["speedup_vs_one_worker"] = round(speedup, 3)
        if os.cpu_count() and os.cpu_count() >= workers:
            # With a core per worker the fan-out must show near-linear
            # gains: at least half the ideal speedup, wall-clock to
            # wall-clock (pool spin-up and block shipping included).
            assert speedup >= workers / 2.0
