"""Tests of the declarative campaign specification layer."""

from __future__ import annotations

import json

import pytest

from repro.batch.campaign import (
    GENERATORS,
    CampaignEntry,
    CampaignSpec,
    load_campaign,
)
from repro.exceptions import ModelError
from repro.taskgraph import serialization
from repro.taskgraph.generators import producer_consumer_configuration


def make_spec(entries, **overrides):
    data = {"name": "test", "seed": 5, "entries": entries}
    data.update(overrides)
    return CampaignSpec.from_dict(data)


class TestExpansion:
    def test_sweep_cartesian_product(self):
        spec = make_spec(
            [
                {
                    "generator": "chain",
                    "sweep": {"stages": [2, 3], "period": [10.0, 20.0]},
                }
            ]
        )
        items = spec.expand()
        assert len(items) == 4
        assert all(item.capacity_limits is None for item in items)
        # axis order is document order, the product iterates the last axis fastest
        assert items[0].label == "0:chain[stages=2,period=10.0]"
        assert items[-1].label == "0:chain[stages=3,period=20.0]"

    def test_expansion_is_deterministic(self):
        entries = [
            {"generator": "chain", "sweep": {"stages": [2, 3]}},
            {
                "generator": "random_dag",
                "params": {"task_count": 6, "processor_count": 6},
                "count": 4,
            },
        ]
        first = make_spec(entries).expand()
        second = make_spec(entries).expand()
        assert [item.label for item in first] == [item.label for item in second]
        assert [item.configuration_dict() for item in first] == [
            item.configuration_dict() for item in second
        ]

    def test_count_draws_distinct_seeds_from_campaign_seed(self):
        entry = {
            "generator": "random_dag",
            "params": {"task_count": 6, "processor_count": 6},
            "count": 5,
        }
        items = make_spec([entry], seed=1).expand()
        other_seed = make_spec([entry], seed=2).expand()
        names = {item.configuration.name for item in items}
        assert len(names) == 5  # distinct instance seeds
        assert names != {item.configuration.name for item in other_seed}

    def test_explicit_configuration_dict(self):
        config = producer_consumer_configuration(max_capacity=4)
        spec = make_spec(
            [{"configuration": serialization.configuration_to_dict(config)}]
        )
        items = spec.expand()
        assert len(items) == 1
        assert items[0].configuration.name == "producer-consumer"

    def test_configuration_path_resolves_relative_to_campaign(self, tmp_path):
        serialization.save_configuration(
            producer_consumer_configuration(), tmp_path / "config.json"
        )
        campaign_path = tmp_path / "campaign.json"
        campaign_path.write_text(
            json.dumps(
                {
                    "name": "file-based",
                    "entries": [{"configuration_path": "config.json"}],
                }
            )
        )
        spec = load_campaign(campaign_path)
        items = spec.expand()
        assert items[0].configuration.name == "producer-consumer"

    def test_capacity_sweep_expands_per_buffer_limits(self):
        spec = make_spec(
            [{"generator": "producer_consumer", "capacity_sweep": "2:4"}]
        )
        items = spec.expand()
        assert [item.capacity_limits for item in items] == [
            {"bab": 2},
            {"bab": 3},
            {"bab": 4},
        ]
        assert items[0].label.endswith("@cap2")

    def test_capacity_sweep_list_form(self):
        spec = make_spec(
            [{"generator": "producer_consumer", "capacity_sweep": [3, 5]}]
        )
        assert [item.capacity_limits["bab"] for item in spec.expand()] == [3, 5]

    def test_capacity_sweep_comma_string_matches_cli_syntax(self):
        # the campaign field and the CLI --capacities option share one parser
        spec = make_spec(
            [{"generator": "producer_consumer", "capacity_sweep": "2,4"}]
        )
        assert [item.capacity_limits["bab"] for item in spec.expand()] == [2, 4]


class TestValidation:
    def test_unknown_generator(self):
        with pytest.raises(ModelError, match="unknown generator"):
            make_spec([{"generator": "nonexistent"}])

    def test_unknown_generator_parameter(self):
        with pytest.raises(ModelError, match="no parameter"):
            make_spec([{"generator": "chain", "params": {"bogus": 1}}])

    def test_entry_needs_exactly_one_source(self):
        with pytest.raises(ModelError, match="exactly one"):
            make_spec([{"generator": "chain", "configuration_path": "x.json"}])
        with pytest.raises(ModelError, match="exactly one"):
            make_spec([{}])

    def test_count_requires_seeded_generator(self):
        with pytest.raises(ModelError, match="seeded generator"):
            make_spec([{"generator": "chain", "count": 3}])

    def test_count_conflicts_with_explicit_seed(self):
        with pytest.raises(ModelError, match="mutually exclusive"):
            make_spec(
                [
                    {
                        "generator": "random_dag",
                        "params": {"task_count": 4, "processor_count": 2, "seed": 1},
                        "count": 3,
                    }
                ]
            )

    def test_params_and_sweep_must_not_overlap(self):
        with pytest.raises(ModelError, match="both 'params' and 'sweep'"):
            make_spec(
                [
                    {
                        "generator": "chain",
                        "params": {"stages": 3},
                        "sweep": {"stages": [2, 3]},
                    }
                ]
            )

    def test_reversed_capacity_sweep(self):
        with pytest.raises(ModelError, match="exceeds"):
            make_spec([{"generator": "producer_consumer", "capacity_sweep": "5:2"}])

    def test_non_integer_capacity_sweep(self):
        with pytest.raises(ModelError, match="integers"):
            make_spec([{"generator": "producer_consumer", "capacity_sweep": "a:b"}])

    def test_empty_entries_rejected(self):
        with pytest.raises(ModelError, match="non-empty"):
            CampaignSpec.from_dict({"name": "empty", "entries": []})

    def test_unknown_entry_field(self):
        with pytest.raises(ModelError, match="unknown campaign entry fields"):
            make_spec([{"generator": "chain", "frobnicate": True}])

    def test_invalid_json_document(self):
        with pytest.raises(ModelError, match="not valid JSON"):
            CampaignSpec.from_json("{nope")

    def test_newer_format_version_rejected(self):
        with pytest.raises(ModelError, match="newer"):
            CampaignSpec.from_dict(
                {"format_version": 99, "entries": [{"generator": "chain"}]}
            )


class TestRoundTrip:
    def test_to_dict_round_trips(self):
        spec = make_spec(
            [
                {"generator": "chain", "sweep": {"stages": [2, 3]}},
                {"generator": "producer_consumer", "capacity_sweep": [1, 2]},
            ]
        )
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert [item.label for item in clone.expand()] == [
            item.label for item in spec.expand()
        ]

    def test_registry_matches_generator_module(self):
        # every registered generator is callable with defaults or documented params
        assert set(GENERATORS) == {
            "producer_consumer",
            "chain",
            "fork_join",
            "ring",
            "random_dag",
            "multi_job",
            "csdf_chain",
            "heterogeneous_random",
        }

    def test_entry_to_dict_preserves_fields(self):
        entry = CampaignEntry.from_dict(
            {
                "generator": "random_dag",
                "params": {"task_count": 4, "processor_count": 2},
                "count": 2,
            }
        )
        data = entry.to_dict()
        assert data["count"] == 2
        assert data["params"]["task_count"] == 4
