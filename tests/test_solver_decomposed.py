"""Decomposed (price-coordination) solver mode: equivalence and plumbing.

The decomposed backend splits the joint cone program along its
``BlockStructure`` into per-application subproblems, coordinates the shared
capacities through prices and (on contended instances) locks the result with
a warm-started joint polish.  It must be a pure *performance* mode: these
tests pin that it agrees with the joint barrier/block-Newton solve within
``1e-6`` on

* seeded random workloads under the default objective (coupling inactive —
  the standalone optima already fit, coordination is skipped);
* contended buffer-weighted workloads (coordination + joint polish);
* workloads with pinned capacity/budget bounds;
* instances whose joint solve needs a phase-I start;
* the single-application degenerate case;

and that infeasible instances are reported infeasible by both paths, both
fanout kinds (thread/process) produce the same optimum, the option mapping
parses, the allocator mode routing works end-to-end, and the anytime
admission verdicts of a replayed trace agree with the exact solves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AdmissionController,
    AllocatorOptions,
    JointAllocator,
    random_trace,
    replay_trace,
)
from repro.core.admission import VERDICT_ADMIT, VERDICT_REJECT, VERDICT_UNCERTAIN
from repro.core.formulation import WorkloadSocpFormulation
from repro.core.objective import ObjectiveWeights
from repro.exceptions import ModelError
from repro.solver import DecomposedOptions, SolverStatus
from repro.taskgraph import random_workload

EQUIV_TOL = 1e-6


def solve_pair(formulation_args, formulation_kwargs=None, **decomposed_options):
    """Solve the same workload with the joint barrier and decomposed modes."""
    kwargs = dict(formulation_kwargs or {})
    joint = WorkloadSocpFormulation(*formulation_args, **kwargs).solve(
        backend="barrier"
    )
    split = WorkloadSocpFormulation(*formulation_args, **kwargs).solve(
        backend="decomposed", **decomposed_options
    )
    return joint, split


def assert_equivalent(joint, split, tol: float = EQUIV_TOL) -> None:
    assert joint.is_optimal and split.is_optimal
    scale = max(1.0, abs(joint.objective))
    assert abs(split.objective - joint.objective) / scale < tol
    point_j, point_s = joint.by_name(), split.by_name()
    for name, value in point_j.items():
        assert point_s[name] == pytest.approx(value, rel=1e-4, abs=1e-4), name


class TestEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_uncontended_random_workloads_match(self, seed):
        workload = random_workload(application_count=4, seed=seed)
        joint, split = solve_pair((workload,))
        assert_equivalent(joint, split)
        assert split.backend == "decomposed"
        # Default weights leave the coupling inactive: the standalone optima
        # already fit, so no price coordination (and no polish) is needed.
        assert split.stats["coordination_skipped"] is True
        assert split.stats["decomposed_blocks"] == 4
        assert "joint_polish" not in split.stats

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_contended_workloads_match_via_polish(self, seed):
        workload = random_workload(
            application_count=4, seed=seed, wcet_range=(0.2, 0.6)
        )
        joint, split = solve_pair(
            (workload,), {"weights": ObjectiveWeights.buffers_only()}
        )
        assert_equivalent(joint, split)
        assert split.stats["coordination_skipped"] is False
        assert split.stats["price_iterations"] > 0
        assert split.stats["price_rungs"] >= 1
        assert split.stats["joint_polish"] is True
        # The polish restarts off the strictly feasible coordinated point.
        assert split.stats["polish_phase1_skipped"] is True

    def test_phase_one_required_instance_matches(self):
        # A tight contended instance whose *joint* cold start needs phase I;
        # the decomposed path must agree regardless of how either side
        # reached strict feasibility.
        workload = random_workload(
            application_count=3, seed=5, wcet_range=(0.3, 0.9)
        )
        weights = ObjectiveWeights.buffers_only()
        joint, split = solve_pair((workload,), {"weights": weights})
        assert_equivalent(joint, split)

    def test_pinned_bounds_match(self):
        workload = random_workload(application_count=3, seed=2)
        formulation = WorkloadSocpFormulation(workload)
        free = formulation.solve(backend="barrier")
        # Pin the first application's largest buffer a little below its
        # unconstrained optimum, so the bound genuinely binds.
        app = workload.applications[0]
        caps = formulation.capacities_by_application(free)[app.name]
        buffer_name, buffer_value = max(caps.items(), key=lambda kv: kv[1])
        limit = max(1, int(np.floor(buffer_value)))
        joint, split = solve_pair(
            (workload,),
            {"capacity_limits": {app.name: {buffer_name: limit}}},
        )
        assert joint.status == split.status
        if joint.is_optimal:
            assert_equivalent(joint, split)

    def test_single_application_degenerate(self):
        workload = random_workload(application_count=1, seed=0)
        joint, split = solve_pair((workload,))
        assert_equivalent(joint, split)
        # One block means nothing to coordinate: the decomposed mode solves
        # jointly and flags the degenerate pass-through.
        assert split.stats.get("decomposed_degenerate") is True

    def test_infeasible_instances_agree(self):
        workload = random_workload(
            application_count=4, seed=1, wcet_range=(0.6, 1.8)
        )
        joint = WorkloadSocpFormulation(workload).solve(backend="barrier")
        split = WorkloadSocpFormulation(workload).solve(backend="decomposed")
        assert joint.status == SolverStatus.INFEASIBLE
        assert split.status == SolverStatus.INFEASIBLE
        assert split.backend == "decomposed"
        assert split.message

    @pytest.mark.parametrize("fanout", ["thread", "process"])
    def test_fanout_kinds_produce_the_same_optimum(self, fanout):
        workload = random_workload(application_count=4, seed=3)
        joint, split = solve_pair(
            (workload,),
            decomposed_workers=2,
            decomposed_fanout=fanout,
        )
        assert_equivalent(joint, split)
        assert split.stats["decomposed_fanout"] == fanout
        assert split.stats["decomposed_workers"] == 2
        assert split.stats["subproblem_solves"] >= 4
        assert split.stats["parallel_time"] > 0.0
        assert split.stats["parallel_speedup"] > 0.0


class TestOptions:
    def test_from_mapping_splits_decomposed_and_barrier_keys(self):
        parsed, passthrough = DecomposedOptions.from_mapping(
            {
                "decomposed_workers": 4,
                "decomposed_fanout": "process",
                "decomposed_polish": False,
                "decomposed_max_price_iterations": 17,
                "tolerance": 1e-8,
                "max_outer_iterations": 99,
            }
        )
        assert parsed.workers == 4
        assert parsed.fanout == "process"
        assert parsed.polish is False
        assert parsed.max_price_iterations == 17
        assert passthrough == {"tolerance": 1e-8, "max_outer_iterations": 99}

    def test_defaults(self):
        parsed, passthrough = DecomposedOptions.from_mapping({})
        assert parsed.workers == 0
        assert parsed.fanout == "thread"
        assert parsed.polish is True
        assert passthrough == {}

    def test_allocator_solve_kwargs(self):
        options = AllocatorOptions(
            verify=False, run_simulation=False, mode="decomposed", workers=3
        )
        kwargs = options.solve_kwargs()
        assert kwargs == {
            "backend": "decomposed",
            "decomposed_workers": 3,
            "decomposed_fanout": "thread",
        }
        assert options.solve_kwargs("joint") == {"backend": options.backend}
        with pytest.raises(ModelError):
            options.solve_kwargs("admm")


class TestAllocatorMode:
    def test_allocate_workload_decomposed_matches_joint(self):
        workload = random_workload(application_count=3, seed=4)
        joint_alloc = JointAllocator(
            options=AllocatorOptions(verify=False, run_simulation=False)
        ).allocate_workload(workload)
        split_alloc = JointAllocator(
            options=AllocatorOptions(verify=False, run_simulation=False)
        ).allocate_workload(workload, mode="decomposed")
        assert split_alloc.solver_info["backend"] == "decomposed"
        # The joint path runs the block-Newton backend; points can differ
        # along near-flat directions, but the optimal objective must agree.
        scale = max(1.0, abs(joint_alloc.objective_value))
        assert (
            abs(split_alloc.objective_value - joint_alloc.objective_value) / scale
            < EQUIV_TOL
        )
        assert set(split_alloc.applications) == set(joint_alloc.applications)

    def test_mode_can_live_on_the_options(self):
        workload = random_workload(application_count=2, seed=6)
        allocator = JointAllocator(
            options=AllocatorOptions(
                verify=False, run_simulation=False, mode="decomposed", workers=2
            )
        )
        mapped = allocator.allocate_workload(workload)
        assert mapped.solver_info["backend"] == "decomposed"
        assert mapped.solver_info["solve_stats"]["decomposed_workers"] == 2


class TestAnytimeAdmission:
    def test_replayed_trace_verdicts_agree_with_exact_solves(self):
        # A 12-event trace heavy enough to produce firm rejects: every firm
        # anytime verdict must agree with the exact solve's outcome.
        trace = random_trace(
            event_count=12, seed=12, wcet_range=(0.8, 2.4), concurrency=6
        )
        result = replay_trace(
            trace,
            allocator=JointAllocator(
                options=AllocatorOptions(verify=False, run_simulation=False)
            ),
        )
        firm = 0
        for record in result.records:
            if record.status not in ("admitted", "rejected"):
                continue
            assert record.verdict in (
                VERDICT_ADMIT,
                VERDICT_REJECT,
                VERDICT_UNCERTAIN,
            )
            if record.verdict == VERDICT_ADMIT:
                firm += 1
                assert record.status == "admitted", record.application
            elif record.verdict == VERDICT_REJECT:
                firm += 1
                assert record.status == "rejected", record.application
        assert firm > 0

    def test_first_arrival_verdict_is_uncertain_on_empty_platform(self):
        trace = random_trace(event_count=3, seed=0)
        result = replay_trace(
            trace,
            allocator=JointAllocator(
                options=AllocatorOptions(verify=False, run_simulation=False)
            ),
        )
        first = result.records[0]
        assert first.verdict == VERDICT_UNCERTAIN
        assert first.verdict_stage == "anytime-empty"

    def test_admit_decision_carries_verdict_fields(self):
        workload = random_workload(application_count=2, seed=0)
        platform = workload.platform
        controller = AdmissionController(
            platform,
            allocator=JointAllocator(
                options=AllocatorOptions(verify=False, run_simulation=False)
            ),
        )
        applications = list(workload.applications)
        first = controller.admit("a", applications[0].configuration)
        assert first.admitted
        assert first.verdict == VERDICT_UNCERTAIN  # nothing committed yet
        second = controller.admit("b", applications[1].configuration)
        assert second.verdict in (VERDICT_ADMIT, VERDICT_REJECT, VERDICT_UNCERTAIN)
        assert second.verdict_stage is not None
        payload = second.as_dict()
        assert "verdict" in payload and "verdict_stage" in payload
