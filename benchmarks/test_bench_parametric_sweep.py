"""Benchmark: parametric warm-started sweeps vs rebuild-per-point.

A 20-point capacity sweep over a random-DAG configuration is solved three
ways:

* **rebuild** — a fresh :class:`SocpFormulation` built, compiled and
  cold-started per point (the pre-session behaviour);
* **compile-once / cold-start** — one :class:`AllocationSession`, but every
  point ignores the previous optimum (isolates the compile-once gain);
* **warm-start** — the session default: one compilation, each point seeded
  from its neighbour, phase I skipped whenever that seed stays strictly
  feasible.

Besides the timings, the benchmark asserts the acceptance criteria of the
session API: a single compilation per sweep, phase I skipped on at least half
the points, budgets equal to the rebuild path within 1e-6, and strictly less
Newton work than the rebuild path (the deterministic counterpart of "faster").
"""

from __future__ import annotations

import pytest

from repro.core import AllocatorOptions, JointAllocator
from repro.taskgraph.generators import random_dag_configuration

SWEEP = tuple(range(3, 23))  # 20 points, clear of pinned lower bounds

_reference_cache = {}


def _configuration():
    return random_dag_configuration(task_count=6, processor_count=6, seed=3)


def _options():
    return AllocatorOptions(run_simulation=False, verify=False)


def _buffer_names(configuration):
    return [buffer.name for _, buffer in configuration.all_buffers()]


def _rebuild_sweep():
    """The pre-session path: one full build/compile/cold-solve per point."""
    configuration = _configuration()
    allocator = JointAllocator(options=_options())
    points = []
    for limit in SWEEP:
        limits = {name: int(limit) for name in _buffer_names(configuration)}
        mapped = allocator.allocate(configuration, capacity_limits=limits)
        points.append(mapped)
    return points


def _session_sweep(warm_start):
    configuration = _configuration()
    session = JointAllocator(options=_options()).session(configuration)
    points = []
    for limit in SWEEP:
        limits = {name: int(limit) for name in _buffer_names(configuration)}
        points.append(
            session.allocate(capacity_limits=limits, warm_start=warm_start)
        )
    return points, session.stats


def _reference_points():
    """The rebuild-per-point results, computed once per benchmark session."""
    if "points" not in _reference_cache:
        _reference_cache["points"] = _rebuild_sweep()
    return _reference_cache["points"]


def _newton_total(mapped_points):
    return sum(
        int(mapped.solver_info["solve_stats"].get("newton_iterations", 0))
        + int(mapped.solver_info["solve_stats"].get("phase1_newton_iterations", 0))
        for mapped in mapped_points
    )


def _assert_equivalent(points, reference):
    assert len(points) == len(reference)
    for mapped, ref in zip(points, reference):
        assert mapped.budgets == ref.budgets
        assert mapped.buffer_capacities == ref.buffer_capacities
        for task, budget in ref.relaxed_budgets.items():
            assert mapped.relaxed_budgets[task] == pytest.approx(budget, abs=1e-6)


def test_bench_sweep_rebuild_per_point(benchmark, record_series):
    points = benchmark(_rebuild_sweep)
    assert len(points) == len(SWEEP)
    record_series(benchmark, "newton_iterations_total", _newton_total(points))
    record_series(benchmark, "points", len(points))


def test_bench_sweep_compile_once_cold(benchmark, record_series):
    points, stats = benchmark(lambda: _session_sweep(warm_start=False))
    _assert_equivalent(points, _reference_points())
    assert stats.compiles == 1
    record_series(benchmark, "newton_iterations_total", _newton_total(points))


def test_bench_sweep_warm_start(benchmark, record_series):
    points, stats = benchmark(lambda: _session_sweep(warm_start=True))
    reference = _reference_points()
    _assert_equivalent(points, reference)

    # Acceptance criteria of the session API on this sweep.  `compiles`
    # counts rebuild-fallback compilations too, so together with
    # `rebuilds == 0` and `solves == len(SWEEP)` this pins "every point was
    # solved through the one compiled problem".
    assert stats.compiles == 1, "the sweep must compile exactly once"
    assert stats.rebuilds == 0, "no point may fall back to a rebuild"
    assert stats.solves == len(SWEEP)
    assert stats.phase1_skipped >= len(SWEEP) // 2, (
        f"phase I skipped on only {stats.phase1_skipped}/{len(SWEEP)} points"
    )
    warm_newton = _newton_total(points)
    rebuild_newton = _newton_total(reference)
    assert warm_newton < rebuild_newton, (
        f"warm-started sweep spent {warm_newton} Newton iterations, "
        f"rebuild path {rebuild_newton}"
    )
    record_series(benchmark, "newton_iterations_total", warm_newton)
    record_series(benchmark, "rebuild_newton_iterations_total", rebuild_newton)
    record_series(benchmark, "phase1_skipped", stats.phase1_skipped)
