"""Parametric cone programs and warm-started solve sessions.

Trade-off sweeps solve a *family* of cone programs that differ only in a few
right-hand sides (capacity bounds, budget bounds).  Rebuilding and recompiling
the symbolic program for every family member wastes most of the sweep's time;
this module provides the compile-once/solve-many counterpart of
:meth:`repro.solver.problem.ConeProgram.solve`:

* :class:`ParametricProblem` compiles a :class:`~repro.solver.problem.
  ConeProgram` **once** and exposes *named parameter slots* over the compiled
  inequality right-hand sides ``h`` — both named constraint rows and the
  variable-bound rows (``lb[x]`` / ``ub[x]``) that compilation emits.  Setting
  a parameter mutates ``h`` in place; the matrices ``G``, ``A`` and the cone
  blocks are shared across all solves.
* :class:`SolveSession` re-solves the parametric problem after parameter
  updates.  Each solve is warm-started from the previous optimum; the barrier
  backend skips phase I entirely whenever that point is still strictly
  feasible under the new parameters (see ``phase1_skipped`` in
  :attr:`~repro.solver.result.Solution.stats`).  The session aggregates solve
  statistics — compilations, solves, warm starts, phase-I skips, Newton
  iterations, wall time — for reporting layers.

Only inequality right-hand sides are parametric.  Structural changes (adding
constraints, turning a bound pair into an equality) require a fresh compile;
callers detect those cases and rebuild (see
:class:`repro.core.formulation.ParametricSocpFormulation`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Union

import numpy as np

from repro.exceptions import FormulationError
from repro.obs.trace import span as obs_span
from repro.solver.problem import CompiledProblem, ConeProgram
from repro.solver.expression import Variable
from repro.solver.result import Solution


@dataclass
class _Slot:
    """One registered parameter: ``h[row] = scale · value``."""

    row: int
    scale: float
    value: Optional[float] = None


class ParametricProblem:
    """A compiled cone program with named mutable right-hand-side slots."""

    def __init__(self, program: ConeProgram) -> None:
        self.program = program
        self.compiled: CompiledProblem = program.compile()
        self.sense = program.sense
        self._index_rows()

    @classmethod
    def from_compiled(
        cls,
        compiled: CompiledProblem,
        sense: str = "min",
        name: str = "<compiled>",
    ) -> "ParametricProblem":
        """Wrap an already-compiled problem without a symbolic program.

        The decomposed solver builds per-application subproblems directly at
        the compiled level (sliced matrices plus appended capacity-share
        rows); this constructor gives those subproblems the same named-slot /
        warm-started :class:`SolveSession` machinery as symbolically built
        programs.  ``sense`` describes how the *objective sign* should be
        reported — compiled problems are always minimisation forms, so the
        default ``"min"`` is correct unless the caller pre-negated ``c``.
        """
        self = cls.__new__(cls)
        self.program = None
        self.compiled = compiled
        self.sense = sense
        self.name = name
        self._index_rows()
        return self

    def _index_rows(self) -> None:
        counts = Counter(name for name in self.compiled.inequality_names if name)
        self._rows: Dict[str, int] = {}
        for index, name in enumerate(self.compiled.inequality_names):
            if name:
                self._rows.setdefault(name, index)
        # Duplicate names are ambiguous targets; registration rejects them.
        self._duplicates = {name for name, count in counts.items() if count > 1}
        self._slots: Dict[str, _Slot] = {}

    # -- registration ------------------------------------------------------
    def register_rhs(self, name: str, row_name: str, scale: float = 1.0) -> None:
        """Expose the inequality row ``row_name`` as parameter ``name``.

        After registration, ``set(name, value)`` rewrites the compiled
        right-hand side of that row to ``scale · value``.
        """
        if name in self._slots:
            raise FormulationError(f"duplicate parameter name {name!r}")
        if row_name in self._duplicates:
            raise FormulationError(
                f"inequality row name {row_name!r} is ambiguous; parametric "
                f"rows need unique constraint names"
            )
        try:
            row = self._rows[row_name]
        except KeyError:
            raise FormulationError(
                f"no inequality row named {row_name!r} in the compiled problem "
                f"(equality-collapsed bounds and unnamed constraints cannot be "
                f"parameters)"
            ) from None
        self._slots[name] = _Slot(row=row, scale=float(scale))

    def register_upper_bound(self, name: str, variable: Variable) -> None:
        """Expose a variable's compiled upper-bound row (``x ≤ value``)."""
        self.register_rhs(name, f"ub[{variable.name}]", scale=1.0)

    def register_lower_bound(self, name: str, variable: Variable) -> None:
        """Expose a variable's compiled lower-bound row (``x ≥ value``)."""
        self.register_rhs(name, f"lb[{variable.name}]", scale=-1.0)

    # -- parameter access ---------------------------------------------------
    def set(self, name: str, value: float) -> None:
        """Set one parameter, mutating the compiled ``h`` in place."""
        try:
            slot = self._slots[name]
        except KeyError:
            raise FormulationError(f"unknown parameter {name!r}") from None
        slot.value = float(value)
        self.compiled.h[slot.row] = slot.scale * slot.value

    def set_many(self, values: Mapping[str, float]) -> None:
        for name, value in values.items():
            self.set(name, value)

    def value(self, name: str) -> Optional[float]:
        try:
            return self._slots[name].value
        except KeyError:
            raise FormulationError(f"unknown parameter {name!r}") from None

    @property
    def parameters(self) -> Dict[str, Optional[float]]:
        """The current parameter values (``None`` when never set)."""
        return {name: slot.value for name, slot in self._slots.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = self.program.name if self.program is not None else self.name
        return f"ParametricProblem({name!r}, parameters={len(self._slots)})"


@dataclass
class SessionStats:
    """Aggregate statistics of a :class:`SolveSession`."""

    compiles: int = 0            #: symbolic-to-numeric compilations performed
    solves: int = 0              #: solver invocations through the session
    warm_started: int = 0        #: solves seeded from the previous optimum
    phase1_skipped: int = 0      #: solves whose barrier phase I was skipped
    newton_iterations: int = 0   #: phase-II Newton iterations, summed
    phase1_newton_iterations: int = 0  #: phase-I Newton iterations, summed
    solve_time: float = 0.0      #: wall-clock seconds inside the backends
    rebuilds: int = 0            #: full rebuild fallbacks (set by callers)
    #: equality-elimination null-space computations (SVDs) performed by the
    #: barrier backend.  The compiled problem caches the basis
    #: (:attr:`repro.solver.problem.CompiledProblem.elimination_cache`), so a
    #: compile-once session's whole sweep counts exactly one — each rebuild
    #: fallback adds one more for its freshly compiled problem.
    eliminations: int = 0
    #: per-block elimination accounting, summed over the session's solves:
    #: block SVDs actually performed vs per-block bases reused across
    #: incremental session edits
    #: (:func:`repro.solver.barrier.transfer_block_eliminations`).  An
    #: incrementally edited N-app workload session computes ~1 block per edit
    #: and reuses N−1, where a from-scratch rebuild recomputes all N.
    elimination_blocks_computed: int = 0
    elimination_blocks_reused: int = 0
    #: solves that went through the sparse structured (block + Schur) path
    #: vs the dense fallback — the engagement split of the session
    sparse_solves: int = 0
    #: structured solves that reused the cached per-block factorisation
    #: pieces (CSR slices, supports) instead of rebuilding them; warm
    #: re-solves of an unchanged problem reuse every time
    sparse_pieces_reused: int = 0
    #: per-block matrix factorisations performed by the sparse path, summed
    block_factorizations: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "compiles": self.compiles,
            "solves": self.solves,
            "warm_started": self.warm_started,
            "phase1_skipped": self.phase1_skipped,
            "newton_iterations": self.newton_iterations,
            "phase1_newton_iterations": self.phase1_newton_iterations,
            "solve_time": self.solve_time,
            "rebuilds": self.rebuilds,
            "eliminations": self.eliminations,
            "elimination_blocks_computed": self.elimination_blocks_computed,
            "elimination_blocks_reused": self.elimination_blocks_reused,
            "sparse_solves": self.sparse_solves,
            "sparse_pieces_reused": self.sparse_pieces_reused,
            "block_factorizations": self.block_factorizations,
        }

    def merge(self, other: "SessionStats") -> None:
        """Fold another session's aggregates into this one.

        The decomposed solver runs one :class:`SolveSession` per application
        block; the coordinator merges them so callers see one aggregate with
        the familiar keys (``solves``, ``warm_started``, ``newton_iterations``
        …) covering every subproblem solve of the run.
        """
        self.compiles += other.compiles
        self.solves += other.solves
        self.warm_started += other.warm_started
        self.phase1_skipped += other.phase1_skipped
        self.newton_iterations += other.newton_iterations
        self.phase1_newton_iterations += other.phase1_newton_iterations
        self.solve_time += other.solve_time
        self.rebuilds += other.rebuilds
        self.eliminations += other.eliminations
        self.elimination_blocks_computed += other.elimination_blocks_computed
        self.elimination_blocks_reused += other.elimination_blocks_reused
        self.sparse_solves += other.sparse_solves
        self.sparse_pieces_reused += other.sparse_pieces_reused
        self.block_factorizations += other.block_factorizations

    def record_solution(self, solution: Solution) -> None:
        """Fold one solve's work into the aggregates.

        The single accounting path for both session solves and the rebuild
        fallbacks that solve outside the session
        (:meth:`repro.core.allocator.AllocationSession._rebuild_point`).
        """
        self.solves += 1
        self.solve_time += solution.solve_time
        if solution.stats.get("phase1_skipped"):
            self.phase1_skipped += 1
        if solution.stats.get("elimination_computed"):
            self.eliminations += 1
        self.elimination_blocks_computed += int(
            solution.stats.get("elimination_blocks_computed", 0)
        )
        self.elimination_blocks_reused += int(
            solution.stats.get("elimination_blocks_reused", 0)
        )
        self.newton_iterations += int(solution.stats.get("newton_iterations", 0))
        self.phase1_newton_iterations += int(
            solution.stats.get("phase1_newton_iterations", 0)
        )
        if solution.stats.get("structured"):
            self.sparse_solves += 1
        if solution.stats.get("pieces_cache_reused"):
            self.sparse_pieces_reused += 1
        self.block_factorizations += int(
            solution.stats.get("block_factorizations", 0)
        )


class SolveSession:
    """Re-solve a :class:`ParametricProblem` with warm starts between solves.

    The session owns the solve-side state that :meth:`ConeProgram.solve`
    recreates from scratch every call: the compiled problem (shared through
    the parametric wrapper) and the previous optimal point.  After each
    optimal solve the optimum is cached; the next solve passes it to the
    backend as the initial point, letting the barrier method skip phase I
    whenever the point is still strictly feasible under the updated
    parameters.
    """

    def __init__(
        self,
        parametric: ParametricProblem,
        backend: str = "auto",
        options: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.parametric = parametric
        self.backend = backend
        self.options = dict(options or {})
        #: How many rungs of ``barrier_increase`` below the previous solve's
        #: final barrier parameter a warm-started phase II begins.  Two rungs
        #: of slack absorb moderate parameter changes; the solver clamps the
        #: value further so the stopping rung always matches a cold solve.
        self.warm_rungs_back = 2
        self.stats = SessionStats(compiles=1)
        self._warm_vector: Optional[np.ndarray] = None
        self._interior_vector: Optional[np.ndarray] = None
        self._last_final_barrier: Optional[float] = None

    # -- warm-start management ---------------------------------------------
    @property
    def warm_vector(self) -> Optional[np.ndarray]:
        """The cached previous optimum (dense, in compiled variable order)."""
        return None if self._warm_vector is None else self._warm_vector.copy()

    def seed(self, values: Union[np.ndarray, Mapping[str, float]]) -> None:
        """Install a warm-start point: a dense vector or a name-keyed mapping.

        A mapping that does not cover every compiled variable by name is
        ignored (a partial point is worse than the heuristic).  A vector of
        the wrong length is a caller bug — it was built against a different
        problem — and raises :class:`FormulationError` rather than silently
        leaving the session cold.
        """
        compiled = self.parametric.compiled
        if isinstance(values, np.ndarray):
            if values.shape != (compiled.num_variables,):
                raise FormulationError(
                    f"warm-start vector has shape {values.shape}, expected "
                    f"({compiled.num_variables},)"
                )
            self._warm_vector = np.asarray(values, dtype=float).copy()
            return
        try:
            vector = np.array(
                [float(values[var.name]) for var in compiled.variables]
            )
        except KeyError:
            return
        self._warm_vector = vector

    def reset(self) -> None:
        """Drop the warm-start state (the next solve starts cold)."""
        self._warm_vector = None
        self._interior_vector = None
        self._last_final_barrier = None

    # -- durable state ------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """The session's warm state as a JSON-serialisable document.

        Vectors are keyed by *variable name*, not position, so the state
        survives being re-applied to a freshly compiled instance of the same
        problem (compilation order is deterministic, but names are the
        contract) — the form :mod:`repro.reliability.snapshot` persists.
        """
        compiled = self.parametric.compiled

        def by_name(vector: Optional[np.ndarray]) -> Optional[Dict[str, float]]:
            if vector is None:
                return None
            return {
                var.name: float(value)
                for var, value in zip(compiled.variables, vector)
            }

        return {
            "warm": by_name(self._warm_vector),
            "interior": by_name(self._interior_vector),
            "last_final_barrier": self._last_final_barrier,
            "warm_rungs_back": self.warm_rungs_back,
        }

    def load_state(self, state: Mapping[str, object]) -> None:
        """Re-install a :meth:`state_dict` document onto this session.

        Name-keyed vectors that do not cover every compiled variable are
        dropped (same contract as :meth:`seed`): a partial warm point is
        worse than the heuristic start.
        """
        compiled = self.parametric.compiled

        def to_vector(mapping: object) -> Optional[np.ndarray]:
            if not isinstance(mapping, Mapping):
                return None
            try:
                return np.array(
                    [float(mapping[var.name]) for var in compiled.variables]
                )
            except KeyError:
                return None

        warm = to_vector(state.get("warm"))
        if warm is not None:
            self._warm_vector = warm
        interior = to_vector(state.get("interior"))
        if interior is not None:
            self._interior_vector = interior
        barrier = state.get("last_final_barrier")
        if barrier is not None:
            self._last_final_barrier = float(barrier)
        rungs_back = state.get("warm_rungs_back")
        if rungs_back is not None:
            self.warm_rungs_back = int(rungs_back)

    # -- solving ------------------------------------------------------------
    def solve(
        self,
        parameters: Optional[Mapping[str, float]] = None,
        initial_point: Optional[Mapping[Variable, float]] = None,
        warm_start: bool = True,
    ) -> Solution:
        """Apply parameter updates and re-solve the compiled problem.

        Parameters
        ----------
        parameters:
            Parameter updates applied before solving (``set_many``).
        initial_point:
            Heuristic starting point used when no warm-start vector is
            available (typically only the first solve).
        warm_start:
            Set to ``False`` to ignore the cached previous optimum for this
            solve (used by benchmarks to isolate the warm-start gain).
        """
        from repro.solver import backends

        if parameters:
            self.parametric.set_many(parameters)
        compiled = self.parametric.compiled

        x0: Optional[Union[np.ndarray, Mapping[Variable, float]]] = None
        warmed = False
        if warm_start and self._warm_vector is not None:
            x0 = self._warm_vector
            warmed = True
        elif initial_point is not None:
            x0 = initial_point

        options = dict(self.options)
        if warmed and self._last_final_barrier is not None:
            # Restart phase II a few rungs below the previous central-path
            # endpoint (staying on the same geometric grid) instead of walking
            # the whole path from t = 1 again.  Only takes effect when the
            # barrier backend skips phase I off the warm point.
            increase = float(options.get("barrier_increase", 25.0))
            rungs = increase ** max(0, self.warm_rungs_back)
            options.setdefault(
                "warm_initial_barrier", max(1.0, self._last_final_barrier / rungs)
            )

        with obs_span("solve", backend=self.backend, warm_started=warmed) as solve_span:
            solution = backends.solve_compiled(
                compiled,
                backend=self.backend,
                initial_point=x0,
                options=options,
                interior_point=self._interior_vector if warmed else None,
            )
            solve_span.set(status=solution.status.value)
        solution.solve_time = solve_span.seconds
        if self.parametric.sense == "max" and solution.objective is not None:
            solution.objective = -solution.objective

        self.stats.record_solution(solution)
        if warmed:
            self.stats.warm_started += 1
        solution.stats = dict(solution.stats)
        solution.stats["warm_started"] = warmed

        if solution.is_optimal and solution.values:
            self._warm_vector = np.array(
                [solution.values[var] for var in compiled.variables]
            )
            final_barrier = solution.stats.get("final_barrier")
            if final_barrier is not None:
                self._last_final_barrier = float(final_barrier)
            if solution.interior_point is not None:
                # The first-rung central point: a far better re-centering
                # start for the next solve than the (near-boundary) optimum.
                self._interior_vector = np.asarray(
                    solution.interior_point, dtype=float
                ).copy()
        return solution
