"""Ablation A2: cost and soundness of the conservative approximations.

Algorithm 1 makes two conservative moves: the ``λ ≥ 1/β`` relaxation and the
rounding of budgets (to granules) and capacities (to whole containers).  This
benchmark measures how far the resulting integral mapping is from the exact
continuous optimum (obtained independently by bisection against the dataflow
feasibility test) and verifies that the mapping stays sound (a periodic
admissible schedule exists and the self-timed simulation meets the period).
"""

from __future__ import annotations

import pytest

from repro.baselines import bisect_uniform_budget
from repro.core import AllocatorOptions, JointAllocator, ObjectiveWeights, verify_mapping
from repro.taskgraph.generators import producer_consumer_configuration

CAPACITY_POINTS = (2, 4, 6, 8)


def _run_ablation():
    config = producer_consumer_configuration()
    allocator = JointAllocator(
        weights=ObjectiveWeights.prefer_budgets(),
        options=AllocatorOptions(run_simulation=False),
    )
    rows = []
    for capacity in CAPACITY_POINTS:
        mapped = allocator.allocate(config, capacity_limits={"bab": capacity})
        exact = bisect_uniform_budget(config, {"bab": capacity})
        rows.append(
            {
                "capacity": capacity,
                "exact_budget": exact,
                "relaxed_budget": mapped.relaxed_budgets["wa"],
                "rounded_budget": mapped.budgets["wa"],
                "mapping": mapped,
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation-rounding")
def test_relaxation_and_rounding_overhead(benchmark, record_series):
    rows = benchmark(_run_ablation)

    record_series(benchmark, "buffer_capacity", [row["capacity"] for row in rows])
    record_series(
        benchmark, "exact_budget_mcycles", [round(row["exact_budget"], 4) for row in rows]
    )
    record_series(
        benchmark,
        "relaxed_budget_mcycles",
        [round(row["relaxed_budget"], 4) for row in rows],
    )
    record_series(
        benchmark,
        "rounded_budget_mcycles",
        [round(row["rounded_budget"], 4) for row in rows],
    )

    granularity = 1.0
    for row in rows:
        # The λ-relaxation is tight at the optimum: the relaxed SOCP budget
        # matches the exact bisection value.
        assert row["relaxed_budget"] == pytest.approx(row["exact_budget"], rel=2e-3)
        # Rounding costs at most one granule and never goes below the optimum.
        assert row["rounded_budget"] >= row["exact_budget"] - 1e-6
        assert row["rounded_budget"] <= row["exact_budget"] + granularity + 1e-6
        # Soundness: the integral mapping passes full verification, including
        # the self-timed simulation.
        report = verify_mapping(row["mapping"], run_simulation=True)
        assert report.is_valid, report.summary()
