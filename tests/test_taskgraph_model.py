"""Unit tests for the application model: tasks, buffers, platforms, task graphs."""

from __future__ import annotations

import pytest

from repro.exceptions import BindingError, GraphStructureError, ModelError
from repro.taskgraph import (
    Buffer,
    Memory,
    Platform,
    Processor,
    Task,
    TaskGraph,
    homogeneous_platform,
)


class TestProcessor:
    def test_valid_processor(self):
        p = Processor("p1", replenishment_interval=40.0, scheduling_overhead=2.0)
        assert p.allocatable_capacity == pytest.approx(38.0)

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ModelError):
            Processor("p1", replenishment_interval=0.0)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ModelError):
            Processor("p1", replenishment_interval=10.0, scheduling_overhead=-1.0)

    def test_rejects_overhead_consuming_everything(self):
        with pytest.raises(ModelError):
            Processor("p1", replenishment_interval=10.0, scheduling_overhead=10.0)

    def test_rejects_empty_name(self):
        with pytest.raises(ModelError):
            Processor("", replenishment_interval=10.0)


class TestMemory:
    def test_unbounded_memory(self):
        m = Memory("m1")
        assert not m.is_bounded

    def test_bounded_memory(self):
        m = Memory("m1", capacity=64.0)
        assert m.is_bounded

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ModelError):
            Memory("m1", capacity=0.0)


class TestPlatform:
    def test_lookup(self):
        platform = Platform(
            processors=[Processor("p1", 40.0)], memories=[Memory("m1", 100.0)]
        )
        assert platform.processor("p1").replenishment_interval == 40.0
        assert platform.memory("m1").capacity == 100.0
        assert platform.has_processor("p1")
        assert not platform.has_processor("p9")

    def test_unknown_names_raise_binding_error(self):
        platform = Platform()
        with pytest.raises(BindingError):
            platform.processor("p1")
        with pytest.raises(BindingError):
            platform.memory("m1")

    def test_duplicate_processor_rejected(self):
        platform = Platform(processors=[Processor("p1", 40.0)])
        with pytest.raises(ModelError):
            platform.add_processor(Processor("p1", 40.0))

    def test_homogeneous_platform_factory(self):
        platform = homogeneous_platform(3, replenishment_interval=40.0, memory_capacity=32.0)
        assert len(platform) == 3
        assert sorted(platform.processors) == ["p1", "p2", "p3"]
        assert platform.memory("m1").capacity == 32.0

    def test_homogeneous_platform_rejects_zero_processors(self):
        with pytest.raises(ModelError):
            homogeneous_platform(0, replenishment_interval=40.0)


class TestTask:
    def test_valid_task(self):
        task = Task("w", wcet=1.0, processor="p1")
        assert task.budget_weight == 1.0

    def test_rejects_non_positive_wcet(self):
        with pytest.raises(ModelError):
            Task("w", wcet=0.0, processor="p1")

    def test_rejects_missing_processor(self):
        with pytest.raises(ModelError):
            Task("w", wcet=1.0, processor="")

    def test_rejects_inconsistent_budget_bounds(self):
        with pytest.raises(ModelError):
            Task("w", wcet=1.0, processor="p1", min_budget=5.0, max_budget=4.0)

    def test_with_processor_returns_copy(self):
        task = Task("w", wcet=1.0, processor="p1", budget_weight=2.0)
        moved = task.with_processor("p2")
        assert moved.processor == "p2"
        assert moved.budget_weight == 2.0
        assert task.processor == "p1"


class TestBuffer:
    def test_valid_buffer(self):
        b = Buffer("b", source="a", target="c", memory="m1", initial_tokens=2)
        assert b.smallest_feasible_capacity == 2

    def test_smallest_capacity_is_at_least_one(self):
        b = Buffer("b", source="a", target="c", memory="m1")
        assert b.smallest_feasible_capacity == 1

    def test_storage_for(self):
        b = Buffer("b", source="a", target="c", memory="m1", container_size=4.0)
        assert b.storage_for(3) == pytest.approx(12.0)
        with pytest.raises(ModelError):
            b.storage_for(0)

    def test_rejects_max_capacity_below_initial_tokens(self):
        with pytest.raises(ModelError):
            Buffer("b", source="a", target="c", memory="m1", initial_tokens=4, max_capacity=3)

    def test_rejects_inconsistent_capacity_bounds(self):
        with pytest.raises(ModelError):
            Buffer("b", source="a", target="c", memory="m1", min_capacity=5, max_capacity=2)

    def test_with_bounds(self):
        b = Buffer("b", source="a", target="c", memory="m1")
        bounded = b.with_bounds(max_capacity=7)
        assert bounded.max_capacity == 7
        assert b.max_capacity is None


class TestTaskGraph:
    def _graph(self) -> TaskGraph:
        graph = TaskGraph("job", period=10.0)
        graph.add_task(Task("a", wcet=1.0, processor="p1"))
        graph.add_task(Task("b", wcet=1.0, processor="p2"))
        graph.add_buffer(Buffer("ab", source="a", target="b", memory="m1"))
        return graph

    def test_rejects_non_positive_period(self):
        with pytest.raises(ModelError):
            TaskGraph("job", period=0.0)

    def test_duplicate_task_rejected(self):
        graph = self._graph()
        with pytest.raises(ModelError):
            graph.add_task(Task("a", wcet=1.0, processor="p1"))

    def test_buffer_endpoints_must_exist(self):
        graph = self._graph()
        with pytest.raises(GraphStructureError):
            graph.add_buffer(Buffer("xz", source="x", target="z", memory="m1"))

    def test_topology_queries(self):
        graph = self._graph()
        assert graph.successors("a") == ["b"]
        assert graph.predecessors("b") == ["a"]
        assert [b.name for b in graph.output_buffers("a")] == ["ab"]
        assert [b.name for b in graph.input_buffers("b")] == ["ab"]
        assert graph.processors_used() == ("p1", "p2")
        assert graph.memories_used() == ("m1",)

    def test_is_connected(self):
        graph = self._graph()
        assert graph.is_connected()
        graph.add_task(Task("lonely", wcet=1.0, processor="p1"))
        assert not graph.is_connected()

    def test_undirected_cycles(self):
        graph = self._graph()
        assert not graph.undirected_cycles_exist()
        graph.add_buffer(Buffer("ba", source="b", target="a", memory="m1", initial_tokens=1))
        assert graph.undirected_cycles_exist()

    def test_to_networkx(self):
        nx_graph = self._graph().to_networkx()
        assert set(nx_graph.nodes) == {"a", "b"}
        assert nx_graph.number_of_edges() == 1

    def test_unknown_lookup_raises(self):
        graph = self._graph()
        with pytest.raises(GraphStructureError):
            graph.task("zzz")
        with pytest.raises(GraphStructureError):
            graph.buffer("zzz")
