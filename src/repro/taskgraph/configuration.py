"""Configuration and mapped configuration.

A :class:`Configuration` is the *input* of the joint budget/buffer
computation: a set of task graphs with throughput requirements, a platform on
which they are bound, and the budget allocation granularity ``g``.  A
:class:`MappedConfiguration` is the *output*: the same configuration augmented
with an integral budget ``β(w)`` per task and an integral capacity ``γ(b)``
per buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import ModelError
from repro.taskgraph.buffer import Buffer
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.platform import Platform
from repro.taskgraph.task import Task


class Configuration:
    """The input of the mapping step (the tuple ``C`` of the paper).

    Task and buffer names must be unique across *all* task graphs of the
    configuration so that budgets and capacities can be reported in flat
    dictionaries.
    """

    def __init__(
        self,
        platform: Platform,
        task_graphs: Iterable[TaskGraph] = (),
        granularity: float = 1.0,
        name: str = "configuration",
    ) -> None:
        if granularity <= 0.0:
            raise ModelError(
                f"budget allocation granularity must be positive, got {granularity!r}"
            )
        self.name = name
        self.platform = platform
        self.granularity = float(granularity)
        self._graphs: Dict[str, TaskGraph] = {}
        for graph in task_graphs:
            self.add_task_graph(graph)

    # -- construction -----------------------------------------------------------
    def add_task_graph(self, graph: TaskGraph) -> TaskGraph:
        if graph.name in self._graphs:
            raise ModelError(f"duplicate task graph name {graph.name!r}")
        existing_tasks = {t.name for g in self._graphs.values() for t in g.tasks}
        existing_buffers = {b.name for g in self._graphs.values() for b in g.buffers}
        for task in graph.tasks:
            if task.name in existing_tasks:
                raise ModelError(
                    f"task name {task.name!r} appears in more than one task graph"
                )
        for buffer in graph.buffers:
            if buffer.name in existing_buffers:
                raise ModelError(
                    f"buffer name {buffer.name!r} appears in more than one task graph"
                )
        self._graphs[graph.name] = graph
        return graph

    # -- lookup --------------------------------------------------------------------
    @property
    def task_graphs(self) -> Tuple[TaskGraph, ...]:
        return tuple(self._graphs.values())

    def task_graph(self, name: str) -> TaskGraph:
        try:
            return self._graphs[name]
        except KeyError:
            raise ModelError(f"unknown task graph {name!r}") from None

    def all_tasks(self) -> List[Tuple[TaskGraph, Task]]:
        """All ``(graph, task)`` pairs of the configuration (the set ``W_Q``)."""
        return [(graph, task) for graph in self._graphs.values() for task in graph.tasks]

    def all_buffers(self) -> List[Tuple[TaskGraph, Buffer]]:
        """All ``(graph, buffer)`` pairs of the configuration (the set ``B_Q``)."""
        return [
            (graph, buffer) for graph in self._graphs.values() for buffer in graph.buffers
        ]

    def find_task(self, name: str) -> Tuple[TaskGraph, Task]:
        for graph in self._graphs.values():
            if graph.has_task(name):
                return graph, graph.task(name)
        raise ModelError(f"no task named {name!r} in configuration {self.name!r}")

    def find_buffer(self, name: str) -> Tuple[TaskGraph, Buffer]:
        for graph in self._graphs.values():
            if graph.has_buffer(name):
                return graph, graph.buffer(name)
        raise ModelError(f"no buffer named {name!r} in configuration {self.name!r}")

    def tasks_on_processor(self, processor_name: str) -> List[Task]:
        """The set ``τ(p)`` of tasks bound to a processor."""
        self.platform.processor(processor_name)
        return [task for _, task in self.all_tasks() if task.processor == processor_name]

    def buffers_in_memory(self, memory_name: str) -> List[Buffer]:
        """The buffers placed in a memory (the set ``ψ(m)`` of the paper)."""
        self.platform.memory(memory_name)
        return [buffer for _, buffer in self.all_buffers() if buffer.memory == memory_name]

    def __iter__(self) -> Iterator[TaskGraph]:
        return iter(self._graphs.values())

    def __len__(self) -> int:
        return len(self._graphs)

    # -- validation -----------------------------------------------------------------
    def validate(self) -> None:
        """Check structural consistency; raise a :class:`ModelError` subclass on failure."""
        from repro.taskgraph.validate import validate_configuration

        validate_configuration(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Configuration({self.name!r}, graphs={len(self._graphs)}, "
            f"processors={len(self.platform)}, granularity={self.granularity})"
        )


@dataclass
class MappedConfiguration:
    """The output of the mapping step: budgets and buffer capacities.

    Attributes
    ----------
    configuration:
        The input configuration this mapping belongs to.
    budgets:
        Integral budget ``β(w)`` per task name, expressed in the platform's
        time unit and guaranteed to be a multiple of the configuration's
        granularity.
    buffer_capacities:
        Integral capacity ``γ(b)`` per buffer name, in containers.
    relaxed_budgets, relaxed_capacities:
        The real-valued optimiser outputs ``β'(w)`` and ``ι(b) + δ'(e)``
        before conservative rounding; useful for analysis and reporting.
    objective_value:
        Value of the weighted objective at the relaxed optimum.
    solver_info:
        Free-form diagnostics from the solver (backend, iterations, time).
    """

    configuration: Configuration
    budgets: Dict[str, float]
    buffer_capacities: Dict[str, int]
    relaxed_budgets: Dict[str, float] = field(default_factory=dict)
    relaxed_capacities: Dict[str, float] = field(default_factory=dict)
    objective_value: Optional[float] = None
    solver_info: Dict[str, object] = field(default_factory=dict)

    def budget(self, task_name: str) -> float:
        try:
            return self.budgets[task_name]
        except KeyError:
            raise ModelError(f"no budget recorded for task {task_name!r}") from None

    def capacity(self, buffer_name: str) -> int:
        try:
            return self.buffer_capacities[buffer_name]
        except KeyError:
            raise ModelError(
                f"no capacity recorded for buffer {buffer_name!r}"
            ) from None

    def total_budget(self, processor_name: Optional[str] = None) -> float:
        """Sum of budgets, optionally restricted to one processor."""
        if processor_name is None:
            return sum(self.budgets.values())
        tasks = self.configuration.tasks_on_processor(processor_name)
        return sum(self.budgets[task.name] for task in tasks)

    def total_storage(self, memory_name: Optional[str] = None) -> float:
        """Total memory footprint of the buffers, optionally for one memory."""
        total = 0.0
        for _, buffer in self.configuration.all_buffers():
            if memory_name is not None and buffer.memory != memory_name:
                continue
            total += buffer.storage_for(self.buffer_capacities[buffer.name])
        return total

    def processor_utilisation(self, processor_name: str) -> float:
        """Fraction of a processor's replenishment interval allocated to budgets."""
        processor = self.configuration.platform.processor(processor_name)
        return self.total_budget(processor_name) / processor.replenishment_interval

    def as_dict(self) -> Dict[str, object]:
        """Plain-dictionary summary used by reports and serialisation."""
        return {
            "budgets": dict(self.budgets),
            "buffer_capacities": dict(self.buffer_capacities),
            "relaxed_budgets": dict(self.relaxed_budgets),
            "relaxed_capacities": dict(self.relaxed_capacities),
            "objective_value": self.objective_value,
            "solver_info": dict(self.solver_info),
        }
