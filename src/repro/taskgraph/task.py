"""Task model.

A task ``w`` is a piece of sequential code that is bound to a processor
``π(w)``, has a worst-case execution time ``χ(w)`` on that processor and is
scheduled by the processor's budget scheduler with an (initially unknown)
budget ``β(w)``.  A task starts an execution when sufficient data is present
in all of its input FIFO buffers and sufficient space is present in all of its
output FIFO buffers.

Two generalisations of the paper's model live here as optional fields:

* **Cyclo-static phases** — ``phases`` gives per-phase worst-case execution
  times; the task cycles through them (phase ``k`` of firing ``n`` is
  ``n mod len(phases)``).  A task without phases is the single-phase
  degenerate case, and ``wcet`` then is the (only) phase's cost.
* **Per-processor-type cycle costs** — ``cycles_by_type`` maps a processor
  *type* (see :class:`repro.taskgraph.platform.Processor`) to the base cycle
  count on that type.  The *effective* execution time on a concrete processor
  is the type-resolved base count divided by the processor's ``speed``; the
  module-level helpers :func:`effective_cycles` and
  :func:`effective_iteration_cycles` perform that resolution and reduce
  exactly to ``task.wcet`` for default-valued models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import ModelError


def _normalize_phases(
    name: str, phases: Optional[Sequence[float]]
) -> Optional[Tuple[float, ...]]:
    if phases is None:
        return None
    normalized = tuple(float(p) for p in phases)
    if not normalized:
        raise ModelError(f"task {name!r}: phases must be non-empty when given")
    for index, value in enumerate(normalized):
        if value <= 0.0:
            raise ModelError(
                f"task {name!r}: phase {index} needs a positive execution "
                f"time, got {value!r}"
            )
    return normalized


def _normalize_cycles_by_type(
    name: str,
    cycles_by_type: Optional[
        Union[Mapping[str, float], Sequence[Tuple[str, float]]]
    ],
) -> Optional[Tuple[Tuple[str, float], ...]]:
    if cycles_by_type is None:
        return None
    if isinstance(cycles_by_type, Mapping):
        items = list(cycles_by_type.items())
    else:
        items = [(str(k), v) for k, v in cycles_by_type]
    if not items:
        raise ModelError(
            f"task {name!r}: cycles_by_type must be non-empty when given"
        )
    seen = set()
    normalized = []
    for proc_type, cycles in items:
        if not proc_type:
            raise ModelError(
                f"task {name!r}: cycles_by_type has an empty processor type"
            )
        if proc_type in seen:
            raise ModelError(
                f"task {name!r}: duplicate processor type {proc_type!r} "
                f"in cycles_by_type"
            )
        seen.add(proc_type)
        value = float(cycles)
        if value <= 0.0:
            raise ModelError(
                f"task {name!r}: cycles_by_type[{proc_type!r}] must be "
                f"positive, got {cycles!r}"
            )
        normalized.append((proc_type, value))
    return tuple(sorted(normalized))


@dataclass(frozen=True)
class Task:
    """A task of a task graph.

    Attributes
    ----------
    name:
        Unique identifier (unique within the whole configuration).
    wcet:
        Worst-case execution time ``χ(w)`` on the bound processor, in the same
        time unit as the replenishment intervals.  When ``phases`` is given,
        ``wcet`` may be omitted (pass ``0.0``): it is derived as the maximum
        per-phase cost, preserving the meaning "worst case of one firing".
    processor:
        Name of the processor ``π(w)`` the task is bound to.
    budget_weight:
        Coefficient ``a(w)`` of this task's budget in the objective function
        of the joint optimisation (larger means "this budget is more
        expensive").
    min_budget, max_budget:
        Optional bounds on the budget allocated to this task.  ``None`` leaves
        the bound to be derived from the throughput requirement and processor
        capacity.
    phases:
        Optional cyclo-static per-phase execution times.  ``None`` (or a
        single entry) is the plain single-phase task of the paper.
    cycles_by_type:
        Optional per-processor-type base cycle counts, stored as a sorted
        tuple of ``(type, cycles)`` pairs (a mapping is accepted and
        normalised).  ``None`` means ``wcet``/``phases`` apply on any type.
    """

    name: str
    wcet: float
    processor: str
    budget_weight: float = 1.0
    min_budget: Optional[float] = None
    max_budget: Optional[float] = None
    phases: Optional[Tuple[float, ...]] = None
    cycles_by_type: Optional[Tuple[Tuple[str, float], ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("task name must be non-empty")
        object.__setattr__(
            self, "phases", _normalize_phases(self.name, self.phases)
        )
        object.__setattr__(
            self,
            "cycles_by_type",
            _normalize_cycles_by_type(self.name, self.cycles_by_type),
        )
        if self.phases is not None and not self.wcet:
            object.__setattr__(self, "wcet", max(self.phases))
        if self.wcet <= 0.0:
            raise ModelError(
                f"task {self.name!r} needs a positive worst-case execution time, "
                f"got {self.wcet!r}"
            )
        if not self.processor:
            raise ModelError(f"task {self.name!r} must be bound to a processor")
        if self.budget_weight < 0.0:
            raise ModelError(f"task {self.name!r} has a negative budget weight")
        if self.min_budget is not None and self.min_budget <= 0.0:
            raise ModelError(f"task {self.name!r}: min_budget must be positive")
        if self.max_budget is not None and self.max_budget <= 0.0:
            raise ModelError(f"task {self.name!r}: max_budget must be positive")
        if (
            self.min_budget is not None
            and self.max_budget is not None
            and self.min_budget > self.max_budget
        ):
            raise ModelError(
                f"task {self.name!r}: min_budget {self.min_budget} exceeds "
                f"max_budget {self.max_budget}"
            )

    # -- cyclo-static helpers ------------------------------------------------
    @property
    def phase_count(self) -> int:
        """Number of cyclo-static phases (1 for a plain task)."""
        return len(self.phases) if self.phases is not None else 1

    def phase_cycles(self, phase: int) -> float:
        """Base cycle count of one phase (``wcet`` for a plain task)."""
        if self.phases is None:
            if phase != 0:
                raise ModelError(
                    f"task {self.name!r} has a single phase, got phase {phase}"
                )
            return self.wcet
        try:
            return self.phases[phase]
        except IndexError:
            raise ModelError(
                f"task {self.name!r} has {len(self.phases)} phases, "
                f"got phase {phase}"
            ) from None

    @property
    def iteration_cycles(self) -> float:
        """Total base cycles of one full phase cycle (``wcet`` for a plain task)."""
        if self.phases is None:
            return self.wcet
        return sum(self.phases)

    def with_processor(self, processor: str) -> "Task":
        """Return a copy of this task bound to a different processor."""
        return Task(
            name=self.name,
            wcet=self.wcet,
            processor=processor,
            budget_weight=self.budget_weight,
            min_budget=self.min_budget,
            max_budget=self.max_budget,
            phases=self.phases,
            cycles_by_type=self.cycles_by_type,
        )


def _type_scale(task: Task, processor: "object") -> Optional[float]:
    """The base-cycle override for ``task`` on ``processor``'s type, if any.

    Returns ``None`` when the task has no per-type cycle table (its
    ``wcet``/``phases`` then apply verbatim).  Raises :class:`ModelError`
    when a table exists but has no entry for the processor's type — a
    binding to an incompatible processor type.
    """
    if task.cycles_by_type is None:
        return None
    proc_type = getattr(processor, "proc_type", "generic")
    for entry_type, cycles in task.cycles_by_type:
        if entry_type == proc_type:
            return cycles
    raise ModelError(
        f"task {task.name!r} has no cycle cost for processor type "
        f"{proc_type!r} (processor {getattr(processor, 'name', '?')!r}); "
        f"known types: {[t for t, _ in task.cycles_by_type]}"
    )


def effective_cycles(
    task: Task, processor: "object", phase: Optional[int] = None
) -> float:
    """Effective execution time of one firing of ``task`` on ``processor``.

    Resolves the per-type base cycle count (``cycles_by_type`` overrides the
    whole-iteration cost; per-phase costs are scaled proportionally) and
    divides by the processor ``speed``.  For a default model — no per-type
    table, unit speed — this returns exactly ``task.wcet`` (or the exact
    phase entry), with no floating-point perturbation.
    """
    base_override = _type_scale(task, processor)
    if phase is None or task.phases is None:
        base = task.wcet if base_override is None else base_override
        if phase is not None and task.phases is None and phase != 0:
            raise ModelError(
                f"task {task.name!r} has a single phase, got phase {phase}"
            )
    else:
        phase_base = task.phase_cycles(phase)
        if base_override is None:
            base = phase_base
        else:
            # Per-type override gives the worst-phase cost; scale each
            # phase's cost by the same ratio so the phase profile is kept.
            base = phase_base * (base_override / task.wcet)
    speed = getattr(processor, "speed", 1.0)
    if speed == 1.0:
        return base
    return base / speed


def effective_iteration_cycles(
    task: Task, processor: "object", repetitions: int = 1
) -> float:
    """Effective execution time of ``repetitions`` full phase cycles.

    For a plain task this is ``repetitions * wcet`` — exactly ``wcet`` when
    ``repetitions == 1`` on a default processor, preserving byte-identical
    legacy arithmetic.
    """
    base_override = _type_scale(task, processor)
    if task.phases is None:
        base = task.wcet if base_override is None else base_override
    else:
        total = sum(task.phases)
        if base_override is None:
            base = total
        else:
            base = total * (base_override / task.wcet)
    speed = getattr(processor, "speed", 1.0)
    if speed != 1.0:
        base = base / speed
    if repetitions == 1:
        return base
    return repetitions * base
