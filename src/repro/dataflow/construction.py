"""Construction of SRDF graphs from task graphs (Section II-C of the paper).

Every task ``w_a`` bound to processor ``p = π(w_a)`` with budget ``β(w_a)`` is
modelled by a two-actor dataflow component:

* ``v_a1`` with firing duration ``̺(p) − β(w_a)`` — the worst-case time a task
  waits before its budget becomes available again, and
* ``v_a2`` with firing duration ``̺(p)·χ(w_a)/β(w_a)`` — the worst-case time
  to execute ``χ(w_a)`` cycles when the task only receives ``β(w_a)`` cycles
  per replenishment interval,

connected by a queue ``v_a1 → v_a2`` without tokens and a self-loop on
``v_a2`` with one token.  Every FIFO buffer ``b_ab`` becomes a pair of opposed
queues: a *data* queue ``v_a2 → v_b1`` with ``ι(b)`` tokens and a *space*
queue ``v_b2 → v_a1`` with ``γ(b) − ι(b)`` tokens.

Because the budgets and capacities are precisely what the joint optimisation
computes, the construction is split into a *specification* (the topology and
the classification of queues, independent of the unknowns) and an
*instantiation* (a concrete :class:`~repro.dataflow.graph.SRDFGraph` for given
budgets and capacities).  The SOCP formulation iterates over the specification
to emit constraints, and the validators instantiate it to check the result.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.exceptions import AllocationError, ModelError
from repro.dataflow.graph import Actor, Queue, SRDFGraph
from repro.taskgraph.configuration import Configuration
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.platform import Platform


class QueueKind(enum.Enum):
    """Role of a queue in the two-actor-per-task construction."""

    TASK_INTERNAL = "task_internal"  #: v_i1 → v_i2, no tokens (queue set E1)
    SELF_LOOP = "self_loop"          #: v_i2 → v_i2, one token (queue set E2)
    DATA = "data"                    #: v_a2 → v_b1, ι(b) tokens (queue set E2)
    SPACE = "space"                  #: v_b2 → v_a1, γ(b) − ι(b) tokens (queue set E2)


class ActorRole(enum.Enum):
    """Which half of the two-actor component an actor is."""

    START = "v1"   #: models waiting for the budget replenishment
    FINISH = "v2"  #: models the budget-limited execution


@dataclass(frozen=True)
class ActorSpec:
    """One actor of the constructed SRDF graph, tied to its task."""

    name: str
    task: str
    role: ActorRole


@dataclass(frozen=True)
class QueueSpec:
    """One queue of the constructed SRDF graph.

    ``source_task`` identifies the task whose (budget-dependent) firing
    duration appears on the right-hand side of Constraint (1) for this queue.
    ``buffer`` is set for DATA/SPACE queues.  ``fixed_tokens`` carries the
    token count when it does not depend on the computed buffer capacity
    (internal queues: 0, self-loops: 1, data queues: ι(b)); it is ``None`` for
    SPACE queues, whose token count is ``γ(b) − ι(b)``.
    """

    name: str
    source: str
    target: str
    kind: QueueKind
    source_task: str
    source_role: ActorRole
    buffer: Optional[str] = None
    fixed_tokens: Optional[int] = None

    @property
    def in_queue_set_e1(self) -> bool:
        """True for output queues of v_i1 actors (Constraint (2)/(6))."""
        return self.source_role is ActorRole.START

    @property
    def in_queue_set_e2(self) -> bool:
        """True for output queues of v_i2 actors (Constraint (3)/(7))."""
        return self.source_role is ActorRole.FINISH


def start_actor_name(task_name: str) -> str:
    """Name of the ``v_i1`` actor of a task."""
    return f"{task_name}.v1"


def finish_actor_name(task_name: str) -> str:
    """Name of the ``v_i2`` actor of a task."""
    return f"{task_name}.v2"


@dataclass
class SrdfSpecification:
    """Topology of the SRDF graph derived from one task graph."""

    graph_name: str
    period: float
    actors: List[ActorSpec]
    queues: List[QueueSpec]

    def actor_names(self) -> Tuple[str, ...]:
        return tuple(actor.name for actor in self.actors)

    def queues_of_kind(self, kind: QueueKind) -> List[QueueSpec]:
        return [queue for queue in self.queues if queue.kind is kind]

    def queue_for_buffer(self, buffer_name: str, kind: QueueKind) -> QueueSpec:
        for queue in self.queues:
            if queue.buffer == buffer_name and queue.kind is kind:
                return queue
        raise ModelError(
            f"no {kind.value} queue for buffer {buffer_name!r} in the specification"
        )


def build_srdf_specification(graph: TaskGraph) -> SrdfSpecification:
    """Derive the SRDF topology of a task graph (Section II-C)."""
    actors: List[ActorSpec] = []
    queues: List[QueueSpec] = []

    for task in graph.tasks:
        v1 = start_actor_name(task.name)
        v2 = finish_actor_name(task.name)
        actors.append(ActorSpec(name=v1, task=task.name, role=ActorRole.START))
        actors.append(ActorSpec(name=v2, task=task.name, role=ActorRole.FINISH))
        queues.append(
            QueueSpec(
                name=f"{task.name}.internal",
                source=v1,
                target=v2,
                kind=QueueKind.TASK_INTERNAL,
                source_task=task.name,
                source_role=ActorRole.START,
                fixed_tokens=0,
            )
        )
        queues.append(
            QueueSpec(
                name=f"{task.name}.self",
                source=v2,
                target=v2,
                kind=QueueKind.SELF_LOOP,
                source_task=task.name,
                source_role=ActorRole.FINISH,
                fixed_tokens=1,
            )
        )

    for buffer in graph.buffers:
        producer_finish = finish_actor_name(buffer.source)
        consumer_start = start_actor_name(buffer.target)
        consumer_finish = finish_actor_name(buffer.target)
        producer_start = start_actor_name(buffer.source)
        queues.append(
            QueueSpec(
                name=f"{buffer.name}.data",
                source=producer_finish,
                target=consumer_start,
                kind=QueueKind.DATA,
                source_task=buffer.source,
                source_role=ActorRole.FINISH,
                buffer=buffer.name,
                fixed_tokens=buffer.initial_tokens,
            )
        )
        queues.append(
            QueueSpec(
                name=f"{buffer.name}.space",
                source=consumer_finish,
                target=producer_start,
                kind=QueueKind.SPACE,
                source_task=buffer.target,
                source_role=ActorRole.FINISH,
                buffer=buffer.name,
                fixed_tokens=None,
            )
        )

    return SrdfSpecification(
        graph_name=graph.name, period=graph.period, actors=actors, queues=queues
    )


def build_configuration_specifications(
    configuration: Configuration,
) -> Dict[str, SrdfSpecification]:
    """Build one SRDF specification per task graph of a configuration."""
    return {
        graph.name: build_srdf_specification(graph)
        for graph in configuration.task_graphs
    }


def actor_firing_duration(
    role: ActorRole,
    replenishment_interval: float,
    wcet: float,
    budget: float,
) -> float:
    """Firing duration of a task's actor for a concrete budget.

    ``ρ(v_i1) = ̺(p) − β(w)`` and ``ρ(v_i2) = ̺(p)·χ(w)/β(w)`` (Section II-C).
    """
    if budget <= 0.0:
        raise AllocationError(f"budget must be positive, got {budget!r}")
    if budget > replenishment_interval + 1e-9:
        raise AllocationError(
            f"budget {budget} exceeds the replenishment interval {replenishment_interval}"
        )
    if role is ActorRole.START:
        return max(0.0, replenishment_interval - budget)
    return replenishment_interval * wcet / budget


def instantiate_srdf(
    specification: SrdfSpecification,
    graph: TaskGraph,
    platform: Platform,
    budgets: Mapping[str, float],
    capacities: Mapping[str, int],
) -> SRDFGraph:
    """Instantiate the SRDF graph for concrete budgets and buffer capacities.

    Parameters
    ----------
    budgets:
        Budget per task name (time units per replenishment interval).
    capacities:
        Capacity per buffer name (containers).
    """
    actors: List[Actor] = []
    for actor_spec in specification.actors:
        task = graph.task(actor_spec.task)
        processor = platform.processor(task.processor)
        if task.name not in budgets:
            raise AllocationError(f"no budget provided for task {task.name!r}")
        duration = actor_firing_duration(
            actor_spec.role,
            processor.replenishment_interval,
            task.wcet,
            float(budgets[task.name]),
        )
        actors.append(Actor(name=actor_spec.name, firing_duration=duration))

    queues: List[Queue] = []
    for queue_spec in specification.queues:
        if queue_spec.fixed_tokens is not None:
            tokens = queue_spec.fixed_tokens
        else:
            buffer = graph.buffer(queue_spec.buffer)  # type: ignore[arg-type]
            if buffer.name not in capacities:
                raise AllocationError(f"no capacity provided for buffer {buffer.name!r}")
            capacity = int(capacities[buffer.name])
            if capacity < buffer.initial_tokens:
                raise AllocationError(
                    f"capacity {capacity} of buffer {buffer.name!r} is smaller than "
                    f"its number of initially filled containers {buffer.initial_tokens}"
                )
            tokens = capacity - buffer.initial_tokens
        queues.append(
            Queue(
                name=queue_spec.name,
                source=queue_spec.source,
                target=queue_spec.target,
                tokens=tokens,
            )
        )

    return SRDFGraph(name=f"{specification.graph_name}.srdf", actors=actors, queues=queues)


def instantiate_from_configuration(
    configuration: Configuration,
    budgets: Mapping[str, float],
    capacities: Mapping[str, int],
) -> Dict[str, SRDFGraph]:
    """Instantiate the SRDF graph of every task graph in a configuration."""
    graphs: Dict[str, SRDFGraph] = {}
    for graph in configuration.task_graphs:
        specification = build_srdf_specification(graph)
        graphs[graph.name] = instantiate_srdf(
            specification, graph, configuration.platform, budgets, capacities
        )
    return graphs
