"""Unit tests for SRDF graphs."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphStructureError, ModelError
from repro.dataflow.graph import Actor, Queue, SRDFGraph


class TestActorAndQueue:
    def test_actor_rejects_negative_duration(self):
        with pytest.raises(ModelError):
            Actor("a", -1.0)

    def test_queue_rejects_negative_tokens(self):
        with pytest.raises(ModelError):
            Queue("q", "a", "b", tokens=-1)

    def test_self_loop_detection(self):
        assert Queue("q", "a", "a", tokens=1).is_self_loop
        assert not Queue("q", "a", "b", tokens=1).is_self_loop


class TestSRDFGraph:
    def _graph(self) -> SRDFGraph:
        graph = SRDFGraph("g")
        graph.add_actor(Actor("a", 1.0))
        graph.add_actor(Actor("b", 2.0))
        graph.add_queue(Queue("ab", "a", "b", tokens=0))
        graph.add_queue(Queue("ba", "b", "a", tokens=3))
        return graph

    def test_lookup(self):
        graph = self._graph()
        assert graph.firing_duration("b") == 2.0
        assert graph.tokens("ba") == 3
        with pytest.raises(GraphStructureError):
            graph.actor("zzz")
        with pytest.raises(GraphStructureError):
            graph.queue("zzz")

    def test_duplicate_names_rejected(self):
        graph = self._graph()
        with pytest.raises(ModelError):
            graph.add_actor(Actor("a", 1.0))
        with pytest.raises(ModelError):
            graph.add_queue(Queue("ab", "a", "b", tokens=1))

    def test_queue_endpoints_must_exist(self):
        graph = self._graph()
        with pytest.raises(GraphStructureError):
            graph.add_queue(Queue("xz", "x", "z", tokens=0))

    def test_adjacency(self):
        graph = self._graph()
        assert [q.name for q in graph.output_queues("a")] == ["ab"]
        assert [q.name for q in graph.input_queues("a")] == ["ba"]

    def test_total_tokens(self):
        assert self._graph().total_tokens() == 3

    def test_with_updates_creates_modified_copy(self):
        graph = self._graph()
        faster = graph.with_updates(firing_durations={"b": 0.5}, tokens={"ab": 2})
        assert faster.firing_duration("b") == 0.5
        assert faster.tokens("ab") == 2
        # original untouched
        assert graph.firing_duration("b") == 2.0
        assert graph.tokens("ab") == 0

    def test_with_updates_rejects_unknown_names(self):
        graph = self._graph()
        with pytest.raises(GraphStructureError):
            graph.with_updates(firing_durations={"zzz": 1.0})

    def test_deadlock_detection(self):
        graph = self._graph()
        assert graph.is_deadlock_free()
        graph.add_actor(Actor("c", 1.0))
        graph.add_queue(Queue("bc", "b", "c", tokens=0))
        graph.add_queue(Queue("cb", "c", "b", tokens=0))
        assert not graph.is_deadlock_free()

    def test_tokenless_self_loop_deadlocks(self):
        graph = SRDFGraph("g")
        graph.add_actor(Actor("a", 1.0))
        graph.add_queue(Queue("aa", "a", "a", tokens=0))
        assert not graph.is_deadlock_free()

    def test_simple_cycles_include_self_loops(self):
        graph = self._graph()
        graph.add_queue(Queue("aa", "a", "a", tokens=1))
        cycles = graph.simple_cycles()
        lengths = sorted(len(c) for c in cycles)
        assert lengths == [1, 2]

    def test_parallel_edges_pick_fewest_tokens(self):
        graph = self._graph()
        graph.add_queue(Queue("ba2", "b", "a", tokens=1))
        cycles = graph.simple_cycles()
        two_hop = [c for c in cycles if len(c) == 2][0]
        tokens = {q.name for q in two_hop}
        assert "ba2" in tokens  # the parallel edge with fewer tokens is chosen

    def test_to_networkx(self):
        nx_graph = self._graph().to_networkx()
        assert nx_graph.number_of_nodes() == 2
        assert nx_graph.number_of_edges() == 2
