"""Construction of SRDF graphs from task graphs (Section II-C of the paper).

Every task ``w_a`` bound to processor ``p = π(w_a)`` with budget ``β(w_a)`` is
modelled by a two-actor dataflow component:

* ``v_a1`` with firing duration ``̺(p) − β(w_a)`` — the worst-case time a task
  waits before its budget becomes available again, and
* ``v_a2`` with firing duration ``̺(p)·χ(w_a)/β(w_a)`` — the worst-case time
  to execute ``χ(w_a)`` cycles when the task only receives ``β(w_a)`` cycles
  per replenishment interval,

connected by a queue ``v_a1 → v_a2`` without tokens and a self-loop on
``v_a2`` with one token.  Every FIFO buffer ``b_ab`` becomes a pair of opposed
queues: a *data* queue ``v_a2 → v_b1`` with ``ι(b)`` tokens and a *space*
queue ``v_b2 → v_a1`` with ``γ(b) − ι(b)`` tokens.

Because the budgets and capacities are precisely what the joint optimisation
computes, the construction is split into a *specification* (the topology and
the classification of queues, independent of the unknowns) and an
*instantiation* (a concrete :class:`~repro.dataflow.graph.SRDFGraph` for given
budgets and capacities).  The SOCP formulation iterates over the specification
to emit constraints, and the validators instantiate it to check the result.

Cyclo-static lowering
---------------------

This module is the single lowering point of the model→analysis pipeline: a
*cyclo-static* task graph (multi-phase tasks and/or non-unit token rates) is
expanded here into the same single-rate specification the formulation and
validators consume, so nothing downstream distinguishes the two.  The
expansion unrolls each task ``w`` into ``R(w) = q(w)·P(w)`` firing copies per
graph iteration (``q`` the repetition vector, ``P(w)`` the phase count), each
with its own two-actor component whose execution cost is that copy's phase
cost:

* the legacy self-loop generalises to a one-token *serialisation chain*
  through the copies' ``v2`` actors (copy ``k`` → copy ``k+1``, wrapping with
  the single token), which reduces exactly to the self-loop at ``R = 1``;
* each buffer becomes one *data* edge per consuming copy, whose constant
  token count is read off the integer cumulative production/consumption
  staircases (reducing to ``ι(b)`` tokens at single-rate), and one *space*
  edge per producing copy whose token count is **affine in the capacity**:
  ``(γ(b) − ι(b) + cc − cp) / T`` with ``T`` the tokens moved per iteration
  and ``cc``/``cp`` the staircase values at the gating copies.  At
  single-rate this is exactly ``γ(b) − ι(b)``; for true CSDF it is a
  conservative (throughput-safe) linearisation of the integer staircase.

Non-cyclo-static graphs take the historical code path verbatim, producing
bit-identical specifications.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import AllocationError, ModelError
from repro.dataflow.graph import Actor, Queue, SRDFGraph
from repro.taskgraph.configuration import Configuration
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.platform import Platform
from repro.taskgraph.task import effective_cycles


class QueueKind(enum.Enum):
    """Role of a queue in the two-actor-per-task construction."""

    TASK_INTERNAL = "task_internal"  #: v_i1 → v_i2, no tokens (queue set E1)
    SELF_LOOP = "self_loop"          #: v_i2 → v_i2, one token (queue set E2)
    DATA = "data"                    #: v_a2 → v_b1, ι(b) tokens (queue set E2)
    SPACE = "space"                  #: v_b2 → v_a1, γ(b) − ι(b) tokens (queue set E2)


class ActorRole(enum.Enum):
    """Which half of the two-actor component an actor is."""

    START = "v1"   #: models waiting for the budget replenishment
    FINISH = "v2"  #: models the budget-limited execution


@dataclass(frozen=True)
class ActorSpec:
    """One actor of the constructed SRDF graph, tied to its task.

    ``phase`` is the cyclo-static phase index this firing copy executes
    (``None`` for single-phase tasks, whose execution cost is the plain
    ``wcet``).
    """

    name: str
    task: str
    role: ActorRole
    phase: Optional[int] = None


@dataclass(frozen=True)
class QueueSpec:
    """One queue of the constructed SRDF graph.

    ``source_task`` identifies the task whose (budget-dependent) firing
    duration appears on the right-hand side of Constraint (1) for this queue;
    ``source_phase`` narrows it to one cyclo-static phase (``None`` means the
    task's plain ``wcet``).  ``buffer`` is set for DATA/SPACE queues.
    ``fixed_tokens`` carries the token count when it does not depend on the
    computed buffer capacity (internal queues: 0, self-loops/serialisation
    chains: 0 or 1, data queues: the staircase constant); it is ``None`` for
    SPACE queues, whose token count is affine in the capacity:
    ``token_scale·γ(b) + offset``, where ``offset`` is ``token_offset`` when
    set and ``−ι(b)`` otherwise (the historical single-rate case).
    """

    name: str
    source: str
    target: str
    kind: QueueKind
    source_task: str
    source_role: ActorRole
    buffer: Optional[str] = None
    fixed_tokens: Optional[int] = None
    source_phase: Optional[int] = None
    token_scale: float = 1.0
    token_offset: Optional[float] = None

    @property
    def in_queue_set_e1(self) -> bool:
        """True for output queues of v_i1 actors (Constraint (2)/(6))."""
        return self.source_role is ActorRole.START

    @property
    def in_queue_set_e2(self) -> bool:
        """True for output queues of v_i2 actors (Constraint (3)/(7))."""
        return self.source_role is ActorRole.FINISH


def start_actor_name(task_name: str) -> str:
    """Name of the ``v_i1`` actor of a task."""
    return f"{task_name}.v1"


def finish_actor_name(task_name: str) -> str:
    """Name of the ``v_i2`` actor of a task."""
    return f"{task_name}.v2"


def copy_name(task_name: str, copy: int, copies: int) -> str:
    """Base name of one unrolled firing copy of a cyclo-static task.

    The single-copy case keeps the bare task name, so a trivially-expanded
    graph produces the same actor names as the legacy construction.
    """
    return task_name if copies == 1 else f"{task_name}#{copy}"


@dataclass
class SrdfSpecification:
    """Topology of the SRDF graph derived from one task graph."""

    graph_name: str
    period: float
    actors: List[ActorSpec]
    queues: List[QueueSpec]

    def actor_names(self) -> Tuple[str, ...]:
        return tuple(actor.name for actor in self.actors)

    def queues_of_kind(self, kind: QueueKind) -> List[QueueSpec]:
        return [queue for queue in self.queues if queue.kind is kind]

    def queue_for_buffer(self, buffer_name: str, kind: QueueKind) -> QueueSpec:
        for queue in self.queues:
            if queue.buffer == buffer_name and queue.kind is kind:
                return queue
        raise ModelError(
            f"no {kind.value} queue for buffer {buffer_name!r} in the specification"
        )

    def queues_for_buffer(
        self, buffer_name: str, kind: QueueKind
    ) -> List[QueueSpec]:
        """All queues of one kind lowered from one buffer (CSDF emits several)."""
        return [
            queue
            for queue in self.queues
            if queue.buffer == buffer_name and queue.kind is kind
        ]


def build_srdf_specification(graph: TaskGraph) -> SrdfSpecification:
    """Derive the SRDF topology of a task graph (Section II-C).

    Cyclo-static graphs are phase-unrolled through
    :func:`_build_cyclo_static_specification`; single-rate graphs take the
    historical construction verbatim.
    """
    if graph.is_cyclo_static:
        return _build_cyclo_static_specification(graph)
    actors: List[ActorSpec] = []
    queues: List[QueueSpec] = []

    for task in graph.tasks:
        v1 = start_actor_name(task.name)
        v2 = finish_actor_name(task.name)
        actors.append(ActorSpec(name=v1, task=task.name, role=ActorRole.START))
        actors.append(ActorSpec(name=v2, task=task.name, role=ActorRole.FINISH))
        queues.append(
            QueueSpec(
                name=f"{task.name}.internal",
                source=v1,
                target=v2,
                kind=QueueKind.TASK_INTERNAL,
                source_task=task.name,
                source_role=ActorRole.START,
                fixed_tokens=0,
            )
        )
        queues.append(
            QueueSpec(
                name=f"{task.name}.self",
                source=v2,
                target=v2,
                kind=QueueKind.SELF_LOOP,
                source_task=task.name,
                source_role=ActorRole.FINISH,
                fixed_tokens=1,
            )
        )

    for buffer in graph.buffers:
        producer_finish = finish_actor_name(buffer.source)
        consumer_start = start_actor_name(buffer.target)
        consumer_finish = finish_actor_name(buffer.target)
        producer_start = start_actor_name(buffer.source)
        queues.append(
            QueueSpec(
                name=f"{buffer.name}.data",
                source=producer_finish,
                target=consumer_start,
                kind=QueueKind.DATA,
                source_task=buffer.source,
                source_role=ActorRole.FINISH,
                buffer=buffer.name,
                fixed_tokens=buffer.initial_tokens,
            )
        )
        queues.append(
            QueueSpec(
                name=f"{buffer.name}.space",
                source=consumer_finish,
                target=producer_start,
                kind=QueueKind.SPACE,
                source_task=buffer.target,
                source_role=ActorRole.FINISH,
                buffer=buffer.name,
                fixed_tokens=None,
            )
        )

    return SrdfSpecification(
        graph_name=graph.name, period=graph.period, actors=actors, queues=queues
    )


def _phase_rates(
    rates: Optional[Sequence[int]], phase_count: int, copies: int
) -> List[int]:
    """Per-copy token rates over one graph iteration (default: 1 per firing)."""
    if rates is None:
        return [1] * copies
    return [rates[k % phase_count] for k in range(copies)]


def _cumulative(values: Sequence[int]) -> List[int]:
    """Cumulative-sum staircase: ``out[k] = sum(values[:k])``."""
    out = [0]
    for value in values:
        out.append(out[-1] + value)
    return out


def _first_reaching(staircase: Sequence[int], needed: int) -> int:
    """Smallest ``k`` with ``staircase[k] ≥ needed`` (``needed ≥ 1``)."""
    for k, value in enumerate(staircase):
        if value >= needed:
            return k
    raise ModelError(
        f"internal lowering error: staircase {list(staircase)} never reaches "
        f"{needed}"
    )


def _check_rate_lengths(graph: TaskGraph) -> None:
    """Reject rate profiles whose length disagrees with the task's phases."""
    for buffer in graph.buffers:
        source = graph.task(buffer.source)
        target = graph.task(buffer.target)
        if (
            buffer.production_rates is not None
            and len(buffer.production_rates) != source.phase_count
        ):
            raise ModelError(
                f"buffer {buffer.name!r}: production rates have "
                f"{len(buffer.production_rates)} entries but task "
                f"{source.name!r} has {source.phase_count} phase(s)"
            )
        if (
            buffer.consumption_rates is not None
            and len(buffer.consumption_rates) != target.phase_count
        ):
            raise ModelError(
                f"buffer {buffer.name!r}: consumption rates have "
                f"{len(buffer.consumption_rates)} entries but task "
                f"{target.name!r} has {target.phase_count} phase(s)"
            )


def _build_cyclo_static_specification(graph: TaskGraph) -> SrdfSpecification:
    """Phase-unroll a cyclo-static task graph into a single-rate specification.

    Task ``w`` becomes ``R(w) = q(w)·P(w)`` two-actor components (one per
    firing of one graph iteration); the period µ then bounds the time of one
    *iteration* — every unrolled actor fires once per µ.  See the module
    docstring for the data/space edge construction.
    """
    _check_rate_lengths(graph)
    repetitions = graph.repetitions()

    actors: List[ActorSpec] = []
    queues: List[QueueSpec] = []
    copies_of: Dict[str, int] = {}

    for task in graph.tasks:
        copies = repetitions[task.name] * task.phase_count
        copies_of[task.name] = copies
        phase_count = task.phase_count
        for k in range(copies):
            base = copy_name(task.name, k, copies)
            phase = k % phase_count if phase_count > 1 else None
            actors.append(
                ActorSpec(
                    name=f"{base}.v1",
                    task=task.name,
                    role=ActorRole.START,
                    phase=phase,
                )
            )
            actors.append(
                ActorSpec(
                    name=f"{base}.v2",
                    task=task.name,
                    role=ActorRole.FINISH,
                    phase=phase,
                )
            )
            queues.append(
                QueueSpec(
                    name=f"{base}.internal",
                    source=f"{base}.v1",
                    target=f"{base}.v2",
                    kind=QueueKind.TASK_INTERNAL,
                    source_task=task.name,
                    source_role=ActorRole.START,
                    fixed_tokens=0,
                    source_phase=phase,
                )
            )
        # Serialisation chain through the copies' v2 actors: one token
        # circulates, so the copies execute in phase order and exactly one
        # iteration of the task is in flight — the legacy self-loop at R=1.
        for k in range(copies):
            successor = (k + 1) % copies
            source_base = copy_name(task.name, k, copies)
            target_base = copy_name(task.name, successor, copies)
            queues.append(
                QueueSpec(
                    name=(
                        f"{task.name}.self"
                        if copies == 1
                        else f"{task.name}.seq{k}"
                    ),
                    source=f"{source_base}.v2",
                    target=f"{target_base}.v2",
                    kind=QueueKind.SELF_LOOP,
                    source_task=task.name,
                    source_role=ActorRole.FINISH,
                    fixed_tokens=1 if k == copies - 1 else 0,
                    source_phase=k % phase_count if phase_count > 1 else None,
                )
            )

    for buffer in graph.buffers:
        source = graph.task(buffer.source)
        target = graph.task(buffer.target)
        producer_copies = copies_of[buffer.source]
        consumer_copies = copies_of[buffer.target]
        production = _phase_rates(
            buffer.production_rates, source.phase_count, producer_copies
        )
        consumption = _phase_rates(
            buffer.consumption_rates, target.phase_count, consumer_copies
        )
        produced = _cumulative(production)   # cp: producer staircase
        consumed = _cumulative(consumption)  # cc: consumer staircase
        iteration_tokens = produced[-1]
        if iteration_tokens != consumed[-1]:
            raise ModelError(
                f"buffer {buffer.name!r}: repetition-scaled production "
                f"{iteration_tokens} and consumption {consumed[-1]} disagree"
            )
        initial = buffer.initial_tokens

        # Data edges: consumer copy l needs cc[l+1] − ι cumulative tokens;
        # the producer firing releasing them is found on the (periodically
        # extended) production staircase.  Its iteration offset becomes the
        # edge's constant token count — exactly ι at single-rate.
        for l in range(consumer_copies):
            if consumption[l] == 0:
                continue
            needed = consumed[l + 1] - initial
            if needed <= 0:
                # Served by initial tokens in iteration 0; in steady state
                # the dependency is on production `lead` iterations back.
                # Shift whole iterations until the residual need lands in
                # (0, T] and read the copy off the one-period staircase.
                lead = 1 + (-needed) // iteration_tokens
                needed += lead * iteration_tokens
            else:
                lead = 0
            producer_index = _first_reaching(produced, needed) - 1
            delta = lead
            source_base = copy_name(buffer.source, producer_index, producer_copies)
            target_base = copy_name(buffer.target, l, consumer_copies)
            queues.append(
                QueueSpec(
                    name=(
                        f"{buffer.name}.data"
                        if consumer_copies == 1
                        else f"{buffer.name}.data{l}"
                    ),
                    source=f"{source_base}.v2",
                    target=f"{target_base}.v1",
                    kind=QueueKind.DATA,
                    source_task=buffer.source,
                    source_role=ActorRole.FINISH,
                    buffer=buffer.name,
                    fixed_tokens=delta,
                    source_phase=(
                        producer_index % source.phase_count
                        if source.phase_count > 1
                        else None
                    ),
                )
            )

        # Space edges: producer copy k needs cc to reach cp[k+1] + ι − γ.
        # The gating consumer copy is the first whose staircase covers
        # cp[k+1]; the capacity-dependent iteration offset
        # (γ − ι + cc[l+1] − cp[k+1]) / T is affine in γ and reduces to the
        # legacy γ − ι at single-rate.  For true CSDF it is a conservative
        # linearisation: the modelled producer waits for a consumer firing
        # no earlier than the one that really frees its space.
        for k in range(producer_copies):
            if production[k] == 0:
                continue
            gating = _first_reaching(consumed, produced[k + 1]) - 1
            scale = 1.0 / iteration_tokens
            offset = (consumed[gating + 1] - produced[k + 1] - initial) * scale
            source_base = copy_name(buffer.target, gating, consumer_copies)
            target_base = copy_name(buffer.source, k, producer_copies)
            queues.append(
                QueueSpec(
                    name=(
                        f"{buffer.name}.space"
                        if producer_copies == 1
                        else f"{buffer.name}.space{k}"
                    ),
                    source=f"{source_base}.v2",
                    target=f"{target_base}.v1",
                    kind=QueueKind.SPACE,
                    source_task=buffer.target,
                    source_role=ActorRole.FINISH,
                    buffer=buffer.name,
                    fixed_tokens=None,
                    source_phase=(
                        gating % target.phase_count
                        if target.phase_count > 1
                        else None
                    ),
                    token_scale=scale,
                    token_offset=offset,
                )
            )

    return SrdfSpecification(
        graph_name=graph.name, period=graph.period, actors=actors, queues=queues
    )


def build_configuration_specifications(
    configuration: Configuration,
) -> Dict[str, SrdfSpecification]:
    """Build one SRDF specification per task graph of a configuration."""
    return {
        graph.name: build_srdf_specification(graph)
        for graph in configuration.task_graphs
    }


def actor_firing_duration(
    role: ActorRole,
    replenishment_interval: float,
    wcet: float,
    budget: float,
    speed: float = 1.0,
) -> float:
    """Firing duration of a task's actor for a concrete budget.

    ``ρ(v_i1) = ̺(p) − β(w)`` and ``ρ(v_i2) = ̺(p)·χ(w)/β(w)`` (Section II-C).
    ``speed`` divides the cycle count for DVFS-scaled processors; the unit
    default leaves the historical arithmetic untouched.
    """
    if budget <= 0.0:
        raise AllocationError(f"budget must be positive, got {budget!r}")
    if budget > replenishment_interval + 1e-9:
        raise AllocationError(
            f"budget {budget} exceeds the replenishment interval {replenishment_interval}"
        )
    if speed <= 0.0:
        raise AllocationError(f"speed must be positive, got {speed!r}")
    if role is ActorRole.START:
        return max(0.0, replenishment_interval - budget)
    cycles = wcet if speed == 1.0 else wcet / speed
    return replenishment_interval * cycles / budget


def _queue_tokens(
    queue_spec: QueueSpec, graph: TaskGraph, capacities: Mapping[str, int]
) -> float:
    """Concrete token count of one queue (int-valued for fixed/legacy queues)."""
    if queue_spec.fixed_tokens is not None:
        return queue_spec.fixed_tokens
    buffer = graph.buffer(queue_spec.buffer)  # type: ignore[arg-type]
    if buffer.name not in capacities:
        raise AllocationError(f"no capacity provided for buffer {buffer.name!r}")
    capacity = int(capacities[buffer.name])
    if capacity < buffer.initial_tokens:
        raise AllocationError(
            f"capacity {capacity} of buffer {buffer.name!r} is smaller than "
            f"its number of initially filled containers {buffer.initial_tokens}"
        )
    if queue_spec.token_offset is None:
        return capacity - buffer.initial_tokens
    return queue_spec.token_scale * capacity + queue_spec.token_offset


def instantiate_srdf(
    specification: SrdfSpecification,
    graph: TaskGraph,
    platform: Platform,
    budgets: Mapping[str, float],
    capacities: Mapping[str, int],
) -> SRDFGraph:
    """Instantiate the SRDF graph for concrete budgets and buffer capacities.

    Parameters
    ----------
    budgets:
        Budget per task name (time units per replenishment interval).
    capacities:
        Capacity per buffer name (containers).
    """
    actors: List[Actor] = []
    for actor_spec in specification.actors:
        task = graph.task(actor_spec.task)
        processor = platform.processor(task.processor)
        if task.name not in budgets:
            raise AllocationError(f"no budget provided for task {task.name!r}")
        duration = actor_firing_duration(
            actor_spec.role,
            processor.replenishment_interval,
            effective_cycles(task, processor, actor_spec.phase),
            float(budgets[task.name]),
        )
        actors.append(Actor(name=actor_spec.name, firing_duration=duration))

    queues: List[Queue] = []
    for queue_spec in specification.queues:
        tokens = _queue_tokens(queue_spec, graph, capacities)
        queues.append(
            Queue(
                name=queue_spec.name,
                source=queue_spec.source,
                target=queue_spec.target,
                tokens=tokens,
            )
        )

    return SRDFGraph(name=f"{specification.graph_name}.srdf", actors=actors, queues=queues)


def instantiate_from_configuration(
    configuration: Configuration,
    budgets: Mapping[str, float],
    capacities: Mapping[str, int],
) -> Dict[str, SRDFGraph]:
    """Instantiate the SRDF graph of every task graph in a configuration."""
    graphs: Dict[str, SRDFGraph] = {}
    for graph in configuration.task_graphs:
        specification = build_srdf_specification(graph)
        graphs[graph.name] = instantiate_srdf(
            specification, graph, configuration.platform, budgets, capacities
        )
    return graphs
