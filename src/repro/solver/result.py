"""Solver status codes and solution objects."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from repro.exceptions import FormulationError
from repro.solver.expression import AffineExpression, ExpressionLike, Variable


class SolverStatus(enum.Enum):
    """Termination status of an optimisation run."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    MAX_ITERATIONS = "max_iterations"
    NUMERICAL_ERROR = "numerical_error"

    @property
    def is_success(self) -> bool:
        return self is SolverStatus.OPTIMAL


@dataclass
class Solution:
    """Result of solving a :class:`~repro.solver.problem.ConeProgram`.

    Attributes
    ----------
    status:
        Termination status.
    objective:
        Objective value at the returned point (``None`` when no point is
        available, e.g. for infeasible problems).
    values:
        Mapping from :class:`Variable` to its value at the returned point.
    backend:
        Name of the backend that produced the solution.
    iterations:
        Iteration count reported by the backend (outer iterations for the
        barrier method).
    solve_time:
        Wall-clock time spent inside the backend, in seconds.
    message:
        Free-form diagnostic message from the backend.
    stats:
        Backend-specific solve statistics.  The barrier backend records
        ``phase1_skipped`` (the initial point was already strictly feasible),
        ``phase1_newton_iterations``, ``newton_iterations`` (phase II) and
        ``outer_iterations``; other backends leave the mapping empty.  All
        values are JSON-serialisable.
    """

    status: SolverStatus
    objective: Optional[float] = None
    values: Dict[Variable, float] = field(default_factory=dict)
    backend: str = ""
    iterations: int = 0
    solve_time: float = 0.0
    message: str = ""
    stats: Dict[str, object] = field(default_factory=dict)
    #: A well-interior point of the feasible region (the first-rung central
    #: point of a barrier solve), used by solve sessions as a re-centering
    #: hint for the next related solve.  Not part of the optimum.
    interior_point: Optional["np.ndarray"] = None

    @property
    def is_optimal(self) -> bool:
        return self.status.is_success

    def value(self, item: ExpressionLike) -> float:
        """Evaluate a variable or affine expression at the solution point."""
        if not self.values:
            raise FormulationError(
                f"solution with status {self.status.value!r} carries no point"
            )
        expr = AffineExpression.coerce(item)
        return expr.evaluate(self.values)

    def by_name(self) -> Dict[str, float]:
        """Return the solution point keyed by variable name."""
        return {var.name: val for var, val in self.values.items()}

    def restrict(self, names: Mapping[str, Variable]) -> Dict[str, float]:
        """Extract values for a named subset of variables."""
        return {name: self.value(var) for name, var in names.items()}
