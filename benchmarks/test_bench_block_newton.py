"""Benchmark: block-structured Newton solves vs dense solves on N-app workloads.

The barrier solver's structured path factorises each application's diagonal
Hessian block independently and folds the shared capacity rows in through a
Schur complement, so one Newton step costs the sum of per-application cubes
instead of the cube of the whole variable count.  This benchmark pins the
scaling win on workloads of 1, 2, 4 and 8 applications sharing one platform:

* the structured and dense backends must return **identical optima** (every
  variable within 1e-8) — the structure is a pure performance change;
* the structured backend must be **strictly faster** than the dense one on
  the 4- and 8-application workloads (best-of-``REPEATS`` wall time over the
  same compiled problem, elimination cache primed for both);
* the structured path must engage automatically (no options) for workloads
  of two or more applications.

The per-size timings ride along in ``benchmark.extra_info`` so that
``--benchmark-json`` artifacts record the dense/structured trajectory.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.formulation import WorkloadSocpFormulation
from repro.solver.backends import solve_compiled
from repro.taskgraph import Workload
from repro.taskgraph.generators import random_dag_configuration

#: Workload sizes of the scaling series; the strict speedup assertion applies
#: from ASSERT_FASTER_FROM applications on (small systems are dominated by
#: Python overhead, where the dense path is competitive).
SIZES = (1, 2, 4, 8)
ASSERT_FASTER_FROM = 4
#: Best-of-REPEATS wall times: three repetitions absorb one-off noise spikes
#: (the 4-app margin is ~2x, the 8-app one ~6x).
REPEATS = 3
#: The strict structured-faster-than-dense assertion holds comfortably on a
#: quiet machine but is a wall-clock race on shared CI runners, whose smoke
#: job collects timings for trend inspection, not gating — skip it there.
STRICT_TIMING = not os.environ.get("CI")


#: The sparse-core scaling curve (tens to hundreds of applications).  Each
#: application is deliberately light (short WCETs on a fine granularity) so
#: the shared processors admit hundreds of them; the dense reference is
#: solved only up to DENSE_UPTO applications — its per-solve cost grows with
#: the cube of the variable count and is minutes-long at 128 apps, which is
#: exactly what the sparse path removes.  Both knobs are env-tunable so the
#: CI smoke job can run a small curve (16/32) with the same assertions.
SCALING_SIZES = tuple(
    int(size)
    for size in os.environ.get("REPRO_BENCH_SCALING_SIZES", "8,16,32,64,128").split(",")
    if size.strip()
)
DENSE_UPTO = int(os.environ.get("REPRO_BENCH_DENSE_UPTO", "32"))
#: Near-linearity gate: per-Newton-iteration wall time may grow at most as
#: apps^LINEARITY_EXPONENT across the curve (1.0 = perfectly linear; the
#: slack absorbs cache effects and the O(m²·n) coupling term).
LINEARITY_EXPONENT = 1.35


def _workload(app_count: int, light: bool = False) -> Workload:
    wcet_range = (0.02, 0.05) if light else (0.2, 0.8)
    granularity = 0.01 if light else 1.0
    applications = [
        random_dag_configuration(
            task_count=6,
            processor_count=6,
            seed=3 + index,
            wcet_range=wcet_range,
            granularity=granularity,
        )
        for index in range(app_count)
    ]
    workload = Workload(applications[0].platform, name=f"bench-{app_count}-apps")
    for index, application in enumerate(applications):
        workload.add_application(f"app{index}", application)
    return workload


def _compiled(app_count: int, light: bool = False):
    formulation = WorkloadSocpFormulation(_workload(app_count, light=light))
    program = formulation.build()
    compiled = program.compile()
    initial = compiled.vector_from_mapping(formulation.initial_point())
    return compiled, initial


def _solve(compiled, initial, structured):
    options = {} if structured is None else {"structured": structured}
    return solve_compiled(
        compiled, backend="barrier", initial_point=initial, options=options
    )


def _best_time(compiled, initial, structured):
    """Best-of-REPEATS wall time and the last solution."""
    best = float("inf")
    solution = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        solution = _solve(compiled, initial, structured)
        best = min(best, time.perf_counter() - start)
    return best, solution


def _newton_total(solution):
    return int(solution.stats.get("newton_iterations", 0)) + int(
        solution.stats.get("phase1_newton_iterations", 0)
    )


@pytest.mark.parametrize("app_count", SIZES)
def test_bench_block_newton_scaling(app_count, benchmark, record_series):
    compiled, initial = _compiled(app_count)
    # Prime the (shared) equality-elimination cache so both backends time the
    # Newton work, not the one-off SVDs.
    _solve(compiled, initial, structured=False)

    dense_time, dense = _best_time(compiled, initial, structured=False)
    structured_time, structured = _best_time(compiled, initial, structured=None)

    assert dense.is_optimal and structured.is_optimal
    assert dense.stats["structured"] is False
    # Auto engagement: the structured path switches on from 2 applications.
    assert structured.stats["structured"] is (app_count >= 2)

    # Identical optima: the structure only changes how the Newton systems are
    # solved, never what they converge to.
    point_s, point_d = structured.by_name(), dense.by_name()
    assert structured.objective == pytest.approx(dense.objective, abs=1e-8)
    for name, value in point_s.items():
        assert value == pytest.approx(point_d[name], abs=1e-8), name

    if STRICT_TIMING and app_count >= ASSERT_FASTER_FROM:
        assert structured_time < dense_time, (
            f"{app_count}-app workload: structured backend took "
            f"{structured_time * 1e3:.1f} ms vs {dense_time * 1e3:.1f} ms dense"
        )

    record_series(benchmark, "variables", compiled.num_variables)
    record_series(benchmark, "dense_seconds", dense_time)
    record_series(benchmark, "structured_seconds", structured_time)
    record_series(benchmark, "speedup", dense_time / max(structured_time, 1e-12))
    record_series(benchmark, "newton_iterations_dense", _newton_total(dense))
    record_series(
        benchmark, "newton_iterations_structured", _newton_total(structured)
    )
    benchmark(lambda: _solve(compiled, initial, structured=None))


def test_bench_sparse_scaling_curve(benchmark, record_series):
    """The sparse block-Newton core across 16..128 applications.

    Three gates, exactly the acceptance criteria of the sparse rebuild:

    * **parity** — wherever the dense reference is solved (up to DENSE_UPTO
      applications), the sparse backend returns the identical optimum, every
      variable within 1e-8.  This assertion always runs, CI included.
    * **strictly faster** — from 8 applications up, the sparse wall clock
      beats the dense one (quiet machines only; on CI the race is recorded,
      not gated).
    * **near-linear per-iteration cost** — wall time per Newton iteration
      from the smallest to the largest size of the curve grows at most as
      apps^LINEARITY_EXPONENT (the dense path is ~cubic here).
    """
    curve = []
    for app_count in SCALING_SIZES:
        compiled, initial = _compiled(app_count, light=True)
        # Prime the elimination + pieces caches with one cheap sparse solve
        # so every timed solve measures the Newton work.
        primed = _solve(compiled, initial, structured=None)
        assert primed.is_optimal
        assert primed.stats["structured"] is (app_count >= 2)

        sparse_time, sparse = _best_time(compiled, initial, structured=None)
        assert sparse.is_optimal
        per_iteration = sparse_time / max(_newton_total(sparse), 1)

        dense_time = None
        if app_count <= DENSE_UPTO:
            start = time.perf_counter()
            dense = _solve(compiled, initial, structured=False)
            dense_time = time.perf_counter() - start
            assert dense.is_optimal
            # Parity gate: the sparse core never moves the optimum.
            point_s, point_d = sparse.by_name(), dense.by_name()
            assert sparse.objective == pytest.approx(dense.objective, abs=1e-8)
            for name, value in point_s.items():
                assert value == pytest.approx(point_d[name], abs=1e-8), (
                    f"{app_count} apps: {name}"
                )
            if STRICT_TIMING and app_count >= 8:
                assert sparse_time < dense_time, (
                    f"{app_count}-app workload: sparse backend took "
                    f"{sparse_time * 1e3:.1f} ms vs {dense_time * 1e3:.1f} ms dense"
                )

        curve.append((app_count, sparse_time, per_iteration))
        record_series(benchmark, f"sparse_seconds_{app_count}", sparse_time)
        record_series(benchmark, f"per_iteration_seconds_{app_count}", per_iteration)
        record_series(benchmark, f"sparse_nnz_{app_count}", sparse.stats["sparse_nnz"])
        if dense_time is not None:
            record_series(benchmark, f"dense_seconds_{app_count}", dense_time)
            record_series(
                benchmark, f"speedup_{app_count}", dense_time / max(sparse_time, 1e-12)
            )

    if STRICT_TIMING and len(curve) >= 2:
        base_apps, _, base_per_iter = curve[0]
        top_apps, _, top_per_iter = curve[-1]
        growth = top_per_iter / max(base_per_iter, 1e-12)
        allowed = (top_apps / base_apps) ** LINEARITY_EXPONENT
        assert growth <= allowed, (
            f"per-iteration cost grew {growth:.2f}x from {base_apps} to "
            f"{top_apps} apps (near-linear bound: {allowed:.2f}x)"
        )

    # ``compiled``/``initial`` still hold the largest size from the loop
    # (caches primed); report its sparse solve as the benchmark sample.
    benchmark(lambda: _solve(compiled, initial, structured=None))
