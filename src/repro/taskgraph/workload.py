"""Multi-application workloads sharing one platform.

The budget schedulers of the paper's MPSoC exist because *several*
applications share the processors.  A :class:`Workload` models exactly that
scenario: N named applications — each a :class:`~repro.taskgraph.
configuration.Configuration` with its own task graphs, throughput
requirements (graph periods) and budget granularity — bound to **one shared**
:class:`~repro.taskgraph.platform.Platform`.  The joint allocation couples the
applications only through the shared processor and memory capacities
(Constraints (9) and (10) summed over every application); everything else is
per-application.

A :class:`MappedWorkload` is the corresponding output: one
:class:`~repro.taskgraph.configuration.MappedConfiguration` per application
(budgets rounded with that application's granularity, capacities rounded
conservatively) plus budget-split reporting over the shared processors.

Unlike :class:`Configuration`, task and buffer names only need to be unique
*within* an application: the formulation layer namespaces every variable per
application, so two instances of the same decoder can join one workload
unchanged.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from repro.exceptions import BindingError, InfeasibleModelError, ModelError
from repro.taskgraph.configuration import Configuration, MappedConfiguration
from repro.taskgraph.platform import Platform

FORMAT_VERSION = 1


@dataclass(frozen=True)
class Application:
    """One named application of a workload.

    ``configuration`` is re-homed onto the workload's shared platform when
    the application is added, so ``configuration.platform`` is always the
    shared platform object.
    """

    name: str
    configuration: Configuration

    @property
    def granularity(self) -> float:
        return self.configuration.granularity

    def task_names(self) -> List[str]:
        return [task.name for _, task in self.configuration.all_tasks()]

    def buffer_names(self) -> List[str]:
        return [buffer.name for _, buffer in self.configuration.all_buffers()]


class Workload:
    """N named applications sharing one platform.

    Applications keep their own throughput constraints (the periods of their
    task graphs) and budget granularity; they are coupled exclusively through
    the shared processor and memory capacities.
    """

    def __init__(
        self,
        platform: Platform,
        applications: Optional[Mapping[str, Configuration]] = None,
        name: str = "workload",
    ) -> None:
        self.name = name
        self.platform = platform
        self._applications: Dict[str, Application] = {}
        for app_name, configuration in (applications or {}).items():
            self.add_application(app_name, configuration)

    # -- construction -----------------------------------------------------------
    def _build_application(self, name: str, configuration: Configuration) -> Application:
        """Validate a candidate application and re-home it onto the platform."""
        if not name:
            raise ModelError("application name must be non-empty")
        if "/" in name:
            # "/" separates the application namespace from entity names in
            # qualified variable names and flattened result keys; allowing it
            # would make "app/task" keys ambiguous.
            raise ModelError(
                f"application name {name!r} must not contain '/'"
            )
        for graph in configuration.task_graphs:
            for task in graph.tasks:
                if not self.platform.has_processor(task.processor):
                    raise BindingError(
                        f"application {name!r}: task {task.name!r} is bound to "
                        f"processor {task.processor!r}, which does not exist in "
                        f"the shared platform {self.platform.name!r}"
                    )
            for buffer in graph.buffers:
                if not self.platform.has_memory(buffer.memory):
                    raise BindingError(
                        f"application {name!r}: buffer {buffer.name!r} is placed "
                        f"in memory {buffer.memory!r}, which does not exist in "
                        f"the shared platform {self.platform.name!r}"
                    )
        if configuration.platform is self.platform:
            # Already homed on the shared platform: keep the object identity,
            # so session layers can recognise an unchanged application.
            rehomed = configuration
        else:
            rehomed = Configuration(
                platform=self.platform,
                task_graphs=configuration.task_graphs,
                granularity=configuration.granularity,
                name=configuration.name,
            )
        return Application(name=name, configuration=rehomed)

    def add_application(self, name: str, configuration: Configuration) -> Application:
        """Add one application, re-homing it onto the shared platform.

        Every processor and memory the application references must exist in
        the shared platform; the application's own platform object (if it
        differs) is discarded.
        """
        if name in self._applications:
            raise ModelError(f"duplicate application name {name!r}")
        application = self._build_application(name, configuration)
        self._applications[name] = application
        return application

    def remove_application(self, name: str) -> Application:
        """Remove (and return) one application — the run-time departure case."""
        try:
            return self._applications.pop(name)
        except KeyError:
            raise ModelError(
                f"no application named {name!r} in workload {self.name!r}"
            ) from None

    def replace_application(self, name: str, configuration: Configuration) -> Application:
        """Swap one application's configuration in place (keeps its position).

        The run-time reconfiguration case: the named application must already
        be part of the workload; its slot (and therefore the per-application
        ordering every reporting surface uses) is preserved.  Returns the
        application that was replaced.
        """
        try:
            previous = self._applications[name]
        except KeyError:
            raise ModelError(
                f"no application named {name!r} in workload {self.name!r}"
            ) from None
        self._applications[name] = self._build_application(name, configuration)
        return previous

    # -- lookup --------------------------------------------------------------------
    @property
    def applications(self) -> Tuple[Application, ...]:
        return tuple(self._applications.values())

    @property
    def application_names(self) -> List[str]:
        return list(self._applications)

    def application(self, name: str) -> Application:
        try:
            return self._applications[name]
        except KeyError:
            raise ModelError(
                f"no application named {name!r} in workload {self.name!r}"
            ) from None

    def __iter__(self) -> Iterator[Application]:
        return iter(self._applications.values())

    def __len__(self) -> int:
        return len(self._applications)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Workload({self.name!r}, applications={sorted(self._applications)}, "
            f"processors={len(self.platform)})"
        )

    # -- validation -----------------------------------------------------------------
    def validate(self) -> None:
        """Check structural consistency and joint-load lower bounds.

        Each application is validated on its own (structure, per-application
        load screens), then the *combined* load of all applications is checked
        against the shared processor and memory capacities — the necessary
        condition the single-configuration screens cannot see.
        """
        if not self._applications:
            raise ModelError(f"workload {self.name!r} contains no applications")
        for application in self._applications.values():
            application.configuration.validate()
        self._check_combined_processor_load()
        self._check_combined_memory_load()

    def _check_combined_processor_load(self) -> None:
        from repro.taskgraph.validate import processor_load_lower_bound

        configurations = [
            application.configuration for application in self._applications.values()
        ]
        for processor_name, processor in self.platform.processors.items():
            lower_bound = processor_load_lower_bound(
                processor, processor_name, configurations
            )
            if lower_bound > processor.replenishment_interval + 1e-9:
                raise InfeasibleModelError(
                    f"processor {processor_name!r} is overloaded across the "
                    f"workload: the applications' throughput requirements alone "
                    f"need at least {lower_bound:.6g} budget per replenishment "
                    f"interval of {processor.replenishment_interval:.6g}"
                )

    def _check_combined_memory_load(self) -> None:
        from repro.taskgraph.validate import memory_minimal_storage

        configurations = [
            application.configuration for application in self._applications.values()
        ]
        for memory_name, memory in self.platform.memories.items():
            if not memory.is_bounded:
                continue
            minimal = memory_minimal_storage(memory_name, configurations)
            if minimal > memory.capacity + 1e-9:
                raise InfeasibleModelError(
                    f"memory {memory_name!r} is too small for the workload: the "
                    f"smallest feasible buffer capacities already need "
                    f"{minimal:.6g} of {memory.capacity:.6g}"
                )


@dataclass
class MappedWorkload:
    """The output of a joint workload allocation.

    Attributes
    ----------
    workload:
        The input workload this mapping belongs to.
    applications:
        One :class:`MappedConfiguration` per application (keyed by the
        application name), each rounded with its own granularity.
    objective_value:
        Value of the weighted objective at the shared relaxed optimum.
    solver_info:
        Free-form diagnostics of the single shared solve.
    """

    workload: Workload
    applications: Dict[str, MappedConfiguration]
    objective_value: Optional[float] = None
    solver_info: Dict[str, object] = field(default_factory=dict)

    def application(self, name: str) -> MappedConfiguration:
        try:
            return self.applications[name]
        except KeyError:
            raise ModelError(f"no mapping recorded for application {name!r}") from None

    def flattened(self, attribute: str) -> Dict[str, float]:
        """One per-application mapping flattened to ``"<application>/<name>"`` keys.

        ``attribute`` names a per-application dictionary of
        :class:`MappedConfiguration` (``"budgets"``, ``"buffer_capacities"``,
        ``"relaxed_budgets"``, ``"relaxed_capacities"``).  The single
        definition of the flattened key scheme used by the trade-off points,
        the batch item results and any other layer that needs one flat view
        of a workload mapping (application names cannot contain ``/``, so the
        keys split back unambiguously on the first separator).
        """
        return {
            f"{app_name}/{name}": value
            for app_name, app_mapped in self.applications.items()
            for name, value in getattr(app_mapped, attribute).items()
        }

    # -- budget-split reporting ---------------------------------------------------
    def budget_split(self, processor_name: str) -> Dict[str, float]:
        """Per-application budget share on one shared processor."""
        self.workload.platform.processor(processor_name)
        split: Dict[str, float] = {}
        for app_name, mapped in self.applications.items():
            tasks = mapped.configuration.tasks_on_processor(processor_name)
            if tasks:
                split[app_name] = sum(mapped.budgets[task.name] for task in tasks)
        return split

    def total_budget(self, processor_name: Optional[str] = None) -> float:
        """Sum of budgets across every application, optionally per processor."""
        if processor_name is None:
            return sum(m.total_budget() for m in self.applications.values())
        return sum(self.budget_split(processor_name).values())

    def total_storage(self, memory_name: Optional[str] = None) -> float:
        return sum(m.total_storage(memory_name) for m in self.applications.values())

    def processor_utilisation(self, processor_name: str) -> float:
        processor = self.workload.platform.processor(processor_name)
        return self.total_budget(processor_name) / processor.replenishment_interval

    def budget_split_rows(self) -> List[Dict[str, object]]:
        """One table row per shared processor (used by the CLI and reports).

        Per-application columns are keyed ``budget[<application>]`` (the
        key style of :meth:`~repro.core.tradeoff.TradeoffCurve.as_table`),
        so application names can never collide with the ``processor`` /
        ``total`` / ``utilisation`` meta columns.
        """
        rows: List[Dict[str, object]] = []
        for processor_name, processor in self.workload.platform.processors.items():
            split = self.budget_split(processor_name)
            if not split:
                continue
            row: Dict[str, object] = {"processor": processor_name}
            for app_name in self.workload.application_names:
                row[f"budget[{app_name}]"] = split.get(app_name, 0.0)
            total = sum(split.values())
            row["total"] = total
            row["utilisation"] = round(total / processor.replenishment_interval, 4)
            rows.append(row)
        return rows

    def as_dict(self) -> Dict[str, object]:
        return {
            "applications": {
                name: mapped.as_dict() for name, mapped in self.applications.items()
            },
            "budget_split": {
                processor_name: self.budget_split(processor_name)
                for processor_name in self.workload.platform.processors
            },
            "objective_value": self.objective_value,
            "solver_info": dict(self.solver_info),
        }


# -- (de)serialisation -----------------------------------------------------------
def workload_to_dict(workload: Workload) -> Dict[str, object]:
    from repro.taskgraph import serialization

    return {
        "format_version": FORMAT_VERSION,
        "name": workload.name,
        "platform": serialization.platform_to_dict(workload.platform),
        "applications": [
            {
                "name": application.name,
                "granularity": application.configuration.granularity,
                "configuration_name": application.configuration.name,
                "task_graphs": [
                    serialization.task_graph_to_dict(graph)
                    for graph in application.configuration.task_graphs
                ],
            }
            for application in workload.applications
        ],
    }


def workload_from_dict(data: Mapping[str, object]) -> Workload:
    from repro.taskgraph import serialization

    version = int(data.get("format_version", FORMAT_VERSION))
    if version > FORMAT_VERSION:
        raise ModelError(
            f"workload format version {version} is newer than supported "
            f"version {FORMAT_VERSION}"
        )
    try:
        platform_data = data["platform"]
    except KeyError:
        raise ModelError("a workload document needs a 'platform' object") from None
    platform = serialization.platform_from_dict(platform_data)
    workload = Workload(platform=platform, name=str(data.get("name", "workload")))
    applications = data.get("applications")
    if not applications:
        raise ModelError("a workload document needs a non-empty 'applications' list")
    for app_data in applications:
        try:
            app_name = str(app_data["name"])
        except KeyError:
            raise ModelError("every workload application needs a 'name'") from None
        configuration = Configuration(
            platform=platform,
            task_graphs=[
                serialization.task_graph_from_dict(graph_data)
                for graph_data in app_data.get("task_graphs", [])
            ],
            granularity=float(app_data.get("granularity", 1.0)),
            name=str(app_data.get("configuration_name", app_name)),
        )
        workload.add_application(app_name, configuration)
    return workload


def workload_to_json(workload: Workload, indent: int = 2) -> str:
    return json.dumps(workload_to_dict(workload), indent=indent, sort_keys=True)


def workload_from_json(text: str) -> Workload:
    return workload_from_dict(json.loads(text))


def save_workload(workload: Workload, path: Union[str, Path]) -> None:
    Path(path).write_text(workload_to_json(workload), encoding="utf-8")


def load_workload(path: Union[str, Path]) -> Workload:
    return workload_from_json(Path(path).read_text(encoding="utf-8"))


def mapped_workload_to_dict(mapped: MappedWorkload) -> Dict[str, object]:
    data = mapped.as_dict()
    data["workload"] = workload_to_dict(mapped.workload)
    data["format_version"] = FORMAT_VERSION
    return data


# -- generator helpers ------------------------------------------------------------
def workload_from_configurations(
    configurations: Iterable[Configuration],
    platform: Optional[Platform] = None,
    name: str = "workload",
) -> Workload:
    """Join existing configurations into one workload on a shared platform.

    Application names default to the configuration names; the shared platform
    defaults to the first configuration's platform.
    """
    configurations = list(configurations)
    if not configurations:
        raise ModelError("workload_from_configurations needs at least one configuration")
    shared = platform or configurations[0].platform
    workload = Workload(platform=shared, name=name)
    for configuration in configurations:
        workload.add_application(configuration.name, configuration)
    return workload


def random_workload(
    application_count: int = 2,
    task_count: int = 4,
    processor_count: int = 3,
    seed: int = 0,
    period: float = 10.0,
    replenishment_interval: float = 40.0,
    wcet_range: Optional[Tuple[float, float]] = None,
    max_capacity: Optional[int] = None,
    granularity: float = 1.0,
) -> Workload:
    """A seeded workload of random-DAG applications sharing one platform.

    Each application is an independent layered random DAG (see
    :func:`repro.taskgraph.generators.random_dag_configuration`) with its own
    derived seed; the default WCET range is scaled down by the application
    count so that the combined load stays feasible on the shared processors.
    """
    from repro.taskgraph.generators import random_dag_configuration

    if application_count < 1:
        raise ModelError("a workload needs at least one application")
    if wcet_range is None:
        wcet_range = (0.5 / application_count, 2.0 / application_count)
    rng = random.Random(f"workload:{seed}")
    shared: Optional[Platform] = None
    workload: Optional[Workload] = None
    for index in range(application_count):
        configuration = random_dag_configuration(
            task_count=task_count,
            processor_count=processor_count,
            seed=rng.randrange(2**31),
            period=period,
            replenishment_interval=replenishment_interval,
            wcet_range=wcet_range,
            max_capacity=max_capacity,
            granularity=granularity,
        )
        if workload is None:
            shared = configuration.platform
            workload = Workload(
                platform=shared,
                name=f"random-workload-{application_count}x{task_count}-{seed}",
            )
        workload.add_application(f"app{index}", configuration)
    return workload
