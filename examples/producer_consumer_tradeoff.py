#!/usr/bin/env python3
"""Experiment 1 of the paper: the producer-consumer budget/buffer trade-off.

Reproduces Figures 2(a) and 2(b) of Wiggers et al. (DATE 2010): the minimal
TDM budget of the producer-consumer job as a function of the maximum buffer
capacity, and the budget reduction each extra container buys.  The closed-form
solution of the instance is printed next to the SOCP result as a reference.

Run with:  python examples/producer_consumer_tradeoff.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.experiments.figure2 import run_figure2


def main() -> None:
    result = run_figure2()

    print("Figure 2(a) — budget vs. buffer capacity (producer-consumer, T1)")
    print("  two tasks, χ = 1 Mcycle, ̺ = 40 Mcycles, µ = 10 Mcycles")
    print()
    print(render_table(result.rows()))
    print()

    print("Figure 2(b) — budget reduction per extra container")
    print(render_table(result.reduction_rows()))
    print()

    budgets = result.relaxed_budget_wa
    print(
        "The trade-off is non-linear: the first extra container saves "
        f"{budgets[0] - budgets[1]:.2f} Mcycles of budget, the last one only "
        f"{budgets[-2] - budgets[-1]:.2f} Mcycles; ten containers minimise the budgets "
        f"at the {budgets[-1]:.0f}-Mcycle floor."
    )


if __name__ == "__main__":
    main()
