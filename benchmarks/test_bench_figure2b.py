"""Figure 2(b): budget reduction per extra container (derivative of Fig. 2(a)).

The paper's plot shows a positive, strictly diminishing gain: roughly
4.8 Mcycles for the second container, falling below 1 Mcycle near ten
containers.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure2 import run_figure2


@pytest.mark.benchmark(group="figure2b")
def test_figure2b_budget_reduction_derivative(benchmark, record_series):
    result = benchmark(run_figure2)

    reductions = [step.reduction for step in result.reductions]
    capacities = [step.capacity_limit for step in result.reductions]
    record_series(benchmark, "buffer_capacity", capacities)
    record_series(benchmark, "delta_budget_mcycles", [round(r, 3) for r in reductions])

    assert capacities == list(range(2, 11))
    # Positive gains with diminishing returns.
    assert all(r > 0.0 for r in reductions)
    assert all(r1 >= r2 - 1e-6 for r1, r2 in zip(reductions, reductions[1:]))
    # Paper end points: ≈ 4.8 Mcycles at two containers, < 1 Mcycle at ten.
    assert reductions[0] == pytest.approx(4.83, abs=0.1)
    assert reductions[-1] < 1.0
