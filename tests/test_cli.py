"""Tests of the command-line interface."""

from __future__ import annotations

import json
import re

import pytest

from repro.cli import EXIT_INFEASIBLE, EXIT_OK, EXIT_USAGE, _parse_capacity_range, main
from repro.taskgraph import serialization
from repro.taskgraph.generators import producer_consumer_configuration


@pytest.fixture
def config_path(tmp_path):
    path = tmp_path / "config.json"
    serialization.save_configuration(producer_consumer_configuration(max_capacity=5), path)
    return str(path)


@pytest.fixture
def infeasible_config_path(tmp_path):
    path = tmp_path / "infeasible.json"
    serialization.save_configuration(
        producer_consumer_configuration(period=2.0, max_capacity=1), path
    )
    return str(path)


class TestAllocateCommand:
    def test_prints_mapping(self, config_path, capsys):
        assert main(["allocate", config_path]) == EXIT_OK
        output = capsys.readouterr().out
        assert "wa" in output and "bab" in output

    def test_writes_output_file(self, config_path, tmp_path, capsys):
        out_file = tmp_path / "mapped.json"
        assert main(["allocate", config_path, "--output", str(out_file)]) == EXIT_OK
        payload = json.loads(out_file.read_text())
        assert payload["budgets"]["wa"] == pytest.approx(18.0, abs=1.0)
        assert payload["buffer_capacities"]["bab"] <= 5
        assert payload["configuration"]["name"] == "producer-consumer"

    def test_infeasible_configuration_exit_code(self, infeasible_config_path, capsys):
        assert main(["allocate", infeasible_config_path]) == EXIT_INFEASIBLE
        assert "infeasible" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["allocate", "/nonexistent/config.json"]) == EXIT_USAGE

    def test_backend_and_weights_flags(self, config_path, capsys):
        assert (
            main(
                [
                    "allocate",
                    config_path,
                    "--backend",
                    "barrier",
                    "--weights",
                    "prefer-buffers",
                ]
            )
            == EXIT_OK
        )


class TestAllocateStatsFlag:
    def test_stats_block_is_printed(self, config_path, capsys):
        assert main(["allocate", config_path, "--stats"]) == EXIT_OK
        output = capsys.readouterr().out
        assert "solver statistics:" in output
        assert "Newton iterations:" in output
        assert re.search(r"solves:\s+1", output)

    def test_stats_off_by_default(self, config_path, capsys):
        assert main(["allocate", config_path]) == EXIT_OK
        assert "solver statistics:" not in capsys.readouterr().out


@pytest.fixture
def workload_path(tmp_path):
    from repro.taskgraph.generators import chain_configuration
    from repro.taskgraph.workload import Workload, save_workload

    video = chain_configuration(stages=2)
    workload = Workload(video.platform, name="duo")
    workload.add_application("video", video)
    workload.add_application("audio", chain_configuration(stages=2, period=20.0))
    path = tmp_path / "workload.json"
    save_workload(workload, path)
    return str(path)


class TestAllocateWorkloadCommand:
    def test_prints_per_application_mapping_and_split(self, workload_path, capsys):
        assert main(["allocate-workload", workload_path]) == EXIT_OK
        output = capsys.readouterr().out
        assert "video" in output and "audio" in output
        assert "budget split per shared processor:" in output
        assert "utilisation" in output

    def test_writes_output_file(self, workload_path, tmp_path, capsys):
        out_file = tmp_path / "mapped.json"
        assert (
            main(["allocate-workload", workload_path, "--output", str(out_file)])
            == EXIT_OK
        )
        payload = json.loads(out_file.read_text())
        assert set(payload["applications"]) == {"video", "audio"}
        assert payload["workload"]["name"] == "duo"
        assert "budget_split" in payload

    def test_stats_flag(self, workload_path, capsys):
        assert main(["allocate-workload", workload_path, "--stats"]) == EXIT_OK
        assert "solver statistics:" in capsys.readouterr().out

    def test_infeasible_workload_exit_code(self, tmp_path, capsys):
        from repro.taskgraph.generators import chain_configuration
        from repro.taskgraph.workload import Workload, save_workload

        base = chain_configuration(stages=2, period=3.0)
        workload = Workload(base.platform, name="crowded")
        workload.add_application("a", base)
        workload.add_application("b", chain_configuration(stages=2, period=3.0))
        workload.add_application("c", chain_configuration(stages=2, period=3.0))
        path = tmp_path / "crowded.json"
        save_workload(workload, path)
        assert main(["allocate-workload", str(path)]) == EXIT_INFEASIBLE
        assert capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["allocate-workload", "/nonexistent/workload.json"]) == EXIT_USAGE


class TestValidateCommand:
    def test_valid_configuration(self, config_path, capsys):
        assert main(["validate", config_path]) == EXIT_OK
        assert "feasibility screen" in capsys.readouterr().out

    def test_screen_rejects_overload(self, tmp_path, capsys):
        config = producer_consumer_configuration(memory_capacity=1.5)
        path = tmp_path / "tight.json"
        serialization.save_configuration(config, path)
        assert main(["validate", str(path)]) == EXIT_INFEASIBLE
        assert "violation" in capsys.readouterr().err


class TestSweepCommand:
    def test_range_syntax(self, config_path, capsys):
        assert main(["sweep", config_path, "--capacities", "2:4"]) == EXIT_OK
        output = capsys.readouterr().out
        assert "capacity_limit" in output
        assert output.count("\n") >= 5

    def test_list_syntax(self, config_path, capsys):
        assert main(["sweep", config_path, "--capacities", "3,5"]) == EXIT_OK

    def test_single_value(self, config_path, capsys):
        assert main(["sweep", config_path, "--capacities", "4"]) == EXIT_OK

    def test_empty_range_is_usage_error(self, config_path):
        assert main(["sweep", config_path, "--capacities", ""]) == EXIT_USAGE

    def test_all_points_infeasible(self, infeasible_config_path):
        assert (
            main(["sweep", infeasible_config_path, "--capacities", "1,1"])
            == EXIT_INFEASIBLE
        )


class TestCapacityRangeHardening:
    """Malformed --capacities input must be a clean usage error, not a traceback."""

    @pytest.mark.parametrize(
        "text",
        [
            "10:1",      # reversed range
            "1,,3",      # empty segment
            ",2",        # leading empty segment
            "a:b",       # non-integer bounds
            "1:ten",     # non-integer high bound
            "1,two,3",   # non-integer list entry
            "0:3",       # non-positive capacity
            "-2,4",      # negative capacity
            ":",         # empty bounds
        ],
    )
    def test_malformed_input_is_usage_error(self, config_path, text, capsys):
        # --capacities=... keeps values starting with '-' out of argparse's
        # flag detection, so every case exercises the range parser itself
        assert main(["sweep", config_path, f"--capacities={text}"]) == EXIT_USAGE
        assert "malformed capacity range" in capsys.readouterr().err

    def test_parse_accepts_whitespace(self):
        assert _parse_capacity_range(" 2:4 ") == [2, 3, 4]
        assert _parse_capacity_range("2 : 4") == [2, 3, 4]
        assert _parse_capacity_range("2, 4 ,8") == [2, 4, 8]


@pytest.fixture
def campaign_path(tmp_path):
    path = tmp_path / "campaign.json"
    path.write_text(
        json.dumps(
            {
                "name": "cli-test",
                "seed": 3,
                "entries": [
                    {"generator": "chain", "sweep": {"stages": [2, 3]}},
                    {"generator": "producer_consumer", "capacity_sweep": "2:3"},
                ],
            }
        )
    )
    return str(path)


class TestBatchCommand:
    def test_runs_campaign_and_prints_summary(self, campaign_path, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["batch", campaign_path, "--cache-dir", cache_dir]) == EXIT_OK
        output = capsys.readouterr().out
        assert "campaign 'cli-test': 4 instances" in output
        assert "feasibility_rate" in output
        assert "allocations_per_second" in output

    def test_warm_cache_solves_nothing(self, campaign_path, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["batch", campaign_path, "--cache-dir", cache_dir]) == EXIT_OK
        capsys.readouterr()
        assert main(["batch", campaign_path, "--cache-dir", cache_dir]) == EXIT_OK
        output = capsys.readouterr().out
        assert re.search(r"cache_hits\s+4\b", output)
        assert re.search(r"solved\s+0\b", output)

    def test_no_cache_flag(self, campaign_path, capsys):
        assert main(["batch", campaign_path, "--no-cache"]) == EXIT_OK
        output = capsys.readouterr().out
        assert "cache disabled" in output
        assert re.search(r"cache_hits\s+0\b", output)

    def test_per_item_table(self, campaign_path, capsys):
        assert main(["batch", campaign_path, "--no-cache", "--per-item"]) == EXIT_OK
        output = capsys.readouterr().out
        assert "0:chain[stages=2]" in output
        assert "1:producer_consumer@cap2" in output

    def test_output_file(self, campaign_path, tmp_path, capsys):
        out_file = tmp_path / "results.json"
        assert (
            main(["batch", campaign_path, "--no-cache", "--output", str(out_file)])
            == EXIT_OK
        )
        payload = json.loads(out_file.read_text())
        assert payload["campaign"]["name"] == "cli-test"
        assert payload["summary"]["total"] == 4
        assert len(payload["results"]) == 4
        assert all(result["status"] == "ok" for result in payload["results"])

    def test_all_infeasible_campaign_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "name": "bad",
                    "entries": [
                        {
                            "generator": "producer_consumer",
                            "params": {"period": 2.0, "max_capacity": 1},
                        }
                    ],
                }
            )
        )
        assert main(["batch", str(path), "--no-cache"]) == EXIT_INFEASIBLE

    def test_missing_campaign_file(self, capsys):
        assert main(["batch", "/nonexistent/campaign.json"]) == EXIT_USAGE

    def test_malformed_campaign_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["batch", str(path)]) == EXIT_INFEASIBLE
        assert "error" in capsys.readouterr().err

    def test_parallel_workers_match_serial(self, campaign_path, tmp_path, capsys):
        out_serial = tmp_path / "serial.json"
        out_parallel = tmp_path / "parallel.json"
        assert (
            main(["batch", campaign_path, "--no-cache", "--output", str(out_serial)])
            == EXIT_OK
        )
        assert (
            main(
                [
                    "batch",
                    campaign_path,
                    "--no-cache",
                    "--workers",
                    "2",
                    "--output",
                    str(out_parallel),
                ]
            )
            == EXIT_OK
        )
        serial = json.loads(out_serial.read_text())
        parallel = json.loads(out_parallel.read_text())

        def deterministic(payload):
            for result in payload["results"]:
                result.pop("solve_seconds")
                result["stats"] = {
                    key: value
                    for key, value in result.get("stats", {}).items()
                    if key != "solve_time" and not key.endswith("_time")
                }
            for key in ("cache_hits", "solved", "elapsed_seconds", "throughput"):
                payload["summary"].pop(key)
            return payload["results"], payload["summary"]

        assert deterministic(serial) == deterministic(parallel)


class TestParser:
    def test_unknown_command_is_usage_error(self):
        assert main(["frobnicate"]) == EXIT_USAGE

    def test_missing_command_is_usage_error(self):
        assert main([]) == EXIT_USAGE
