"""Command-line style experiment runner.

``python -m repro.experiments.runner`` regenerates the data behind every
figure of the paper's evaluation section and prints it as plain-text tables
(the same rows the benchmarks assert on and EXPERIMENTS.md records).

The figure sweeps can run through two engines:

* ``direct`` (default) — :class:`~repro.core.tradeoff.TradeoffExplorer`
  solves each capacity bound in-process, exactly as the seed did;
* ``batch`` — the sweeps are expressed as campaign items and routed through
  :class:`~repro.batch.executor.BatchExecutor`, which adds worker-process
  fan-out (``--workers``) and the persistent result cache (``--cache-dir``).
  Both engines produce identical figure data.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional, Sequence

from repro.analysis.report import render_table
from repro.core.tradeoff import TradeoffCurve, TradeoffPoint
from repro.exceptions import AllocationError
from repro.experiments.figure2 import (
    DEFAULT_CAPACITY_SWEEP as FIGURE2_SWEEP,
    build_configuration as build_figure2_configuration,
    figure2_from_curve,
    run_figure2,
)
from repro.experiments.figure3 import (
    DEFAULT_CAPACITY_SWEEP as FIGURE3_SWEEP,
    build_configuration as build_figure3_configuration,
    figure3_from_curve,
    run_figure3,
)
from repro.taskgraph.configuration import Configuration


def batch_capacity_sweep(
    configuration: Configuration,
    capacity_sweep: Sequence[int],
    backend: str = "auto",
    workers: int = 1,
    cache_dir: Optional[str] = None,
) -> TradeoffCurve:
    """Run a capacity-bound sweep through the batch engine.

    Produces the same :class:`~repro.core.tradeoff.TradeoffCurve` a
    :class:`~repro.core.tradeoff.TradeoffExplorer` sweep would, but the
    individual allocations go through the batch executor, gaining its
    parallelism and result cache.
    """
    from repro.batch import BatchExecutor, CampaignItem, ExecutorConfig, make_cache

    buffer_names = [buffer.name for _, buffer in configuration.all_buffers()]
    items = [
        CampaignItem(
            label=f"{configuration.name}@cap{limit}",
            configuration=configuration,
            capacity_limits={name: int(limit) for name in buffer_names},
        )
        for limit in capacity_sweep
    ]
    executor = BatchExecutor(
        # No backend fallback: the direct engine solves with exactly the
        # requested backend, so the batch engine must too — a silent retry
        # on another backend would make the figure data lie about its origin.
        config=ExecutorConfig(workers=workers, backend=backend, fallback_backends=()),
        cache=make_cache(cache_dir, enabled=cache_dir is not None),
    )
    results = executor.run(items)
    curve = TradeoffCurve(configuration_name=configuration.name)
    for limit, result in zip(capacity_sweep, results):
        if result.status not in ("ok", "infeasible"):
            # The direct engine propagates solver failures as exceptions;
            # mapping them to infeasible points would silently corrupt the
            # figure data, so the batch engine must fail loudly too.
            raise AllocationError(
                f"batch sweep item {result.label!r} failed "
                f"({result.status}): {result.error}"
            )
        if not result.feasible:
            curve.points.append(
                TradeoffPoint(capacity_limit=int(limit), feasible=False)
            )
            continue
        curve.points.append(
            TradeoffPoint(
                capacity_limit=int(limit),
                feasible=True,
                budgets=dict(result.budgets),
                relaxed_budgets=dict(result.relaxed_budgets),
                capacities=dict(result.buffer_capacities),
                objective_value=result.objective_value,
            )
        )
    return curve


def run_all(
    backend: str = "auto",
    stream=None,
    engine: str = "direct",
    workers: int = 1,
    cache_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Run every experiment, print the tables, and return the raw results.

    With ``engine="batch"`` the figure sweeps are routed through the batch
    allocation engine (see :func:`batch_capacity_sweep`).
    """
    if engine not in ("direct", "batch"):
        raise ValueError(f"unknown engine {engine!r}; expected 'direct' or 'batch'")
    stream = stream or sys.stdout
    results: Dict[str, object] = {}

    def figure2_direct():
        return run_figure2(backend=backend)

    def figure2_batch():
        curve = batch_capacity_sweep(
            build_figure2_configuration(),
            FIGURE2_SWEEP,
            backend=backend,
            workers=workers,
            cache_dir=cache_dir,
        )
        return figure2_from_curve(curve)

    def figure3_direct():
        return run_figure3(backend=backend)

    def figure3_batch():
        curve = batch_capacity_sweep(
            build_figure3_configuration(),
            FIGURE3_SWEEP,
            backend=backend,
            workers=workers,
            cache_dir=cache_dir,
        )
        return figure3_from_curve(curve)

    run2: Callable = figure2_batch if engine == "batch" else figure2_direct
    run3: Callable = figure3_batch if engine == "batch" else figure3_direct

    start = time.perf_counter()
    figure2 = run2()
    elapsed2 = time.perf_counter() - start
    results["figure2"] = figure2
    print("Figure 2(a): producer-consumer budget vs. buffer capacity", file=stream)
    print(render_table(figure2.rows()), file=stream)
    print("", file=stream)
    print("Figure 2(b): budget reduction per extra container", file=stream)
    print(render_table(figure2.reduction_rows()), file=stream)
    print(f"(sweep solved in {elapsed2:.3f} s)", file=stream)
    print("", file=stream)

    start = time.perf_counter()
    figure3 = run3()
    elapsed3 = time.perf_counter() - start
    results["figure3"] = figure3
    print("Figure 3: three-task chain, per-task budgets vs. common capacity bound", file=stream)
    print(render_table(figure3.rows()), file=stream)
    print(f"(sweep solved in {elapsed3:.3f} s)", file=stream)

    results["runtime_seconds"] = {"figure2": elapsed2, "figure3": elapsed3}
    results["engine"] = engine
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        default="auto",
        choices=["auto", "barrier", "scipy"],
        help="cone-solver backend to use (default: auto)",
    )
    parser.add_argument(
        "--engine",
        default="direct",
        choices=["direct", "batch"],
        help="run the sweeps in-process or through the batch engine (default: direct)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the batch engine (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory for the batch engine (default: no cache)",
    )
    arguments = parser.parse_args(argv)
    run_all(
        backend=arguments.backend,
        engine=arguments.engine,
        workers=arguments.workers,
        cache_dir=arguments.cache_dir,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via examples
    raise SystemExit(main())
