"""Benchmark: lowering/solve overhead of the generalised execution model.

An eight-application workload is solved in three guises:

* **plain** — the paper's model: single-phase tasks on a homogeneous
  platform (the baseline all overheads are measured against);
* **trivial twin** — the *same* workload expressed through the generalised
  fields (single-phase cyclo-static rates, a typed platform at uniform unit
  speed, explicit per-type cycle tables): generality must be free, so its
  allocation must match the plain baseline at 1e-9;
* **generalised** — a genuinely heterogeneous big/little workload (big cores
  at speed 2) where every application carries one two-phase cyclo-static
  task, lowered through the phase-unrolling pipeline.

The generalised instance doubles as the solver-mode equivalence gate: the
same program solved through the dense Newton path, the structured-sparse
path and the decomposed per-application coordinator must agree at 1e-6.
Every equivalence assertion also runs under ``--benchmark-disable`` (the CI
smoke gate), where the wall-clock numbers are measured directly around the
solve as in ``test_bench_decomposed``.
"""

from __future__ import annotations

import random
from time import perf_counter

import pytest

from repro.core import AllocatorOptions, JointAllocator
from repro.core.formulation import WorkloadSocpFormulation
from repro.taskgraph import (
    Buffer,
    Configuration,
    Task,
    TaskGraph,
    Workload,
    heterogeneous_platform,
)
from repro.taskgraph.generators import random_dag_configuration

APP_COUNT = 8
EQUIV_TOL = 1e-6
TWIN_TOL = 1e-9

#: Wall-clock numbers shared between the benchmarks of this module (pytest
#: runs them in definition order: plain baseline first).
MEASURED = {}


def _plain_applications():
    """Eight light applications on one shared homogeneous platform."""
    applications = [
        random_dag_configuration(
            task_count=4,
            processor_count=4,
            seed=61 + index,
            wcet_range=(0.5 / 8, 2.0 / 8),
        )
        for index in range(APP_COUNT)
    ]
    return applications[0].platform, applications


def _plain_workload() -> Workload:
    platform, applications = _plain_applications()
    workload = Workload(platform, name="bench-plain")
    for index, application in enumerate(applications):
        workload.add_application(f"app{index}", application)
    return workload


def _twin_workload() -> Workload:
    """The plain workload re-expressed through every generalised field.

    The single processor type is named ``p`` so the generated processors
    keep the homogeneous names (``p1``…``p4``) and the task bindings carry
    over verbatim; tasks become one-phase cyclo-static with an explicit
    per-type cycle table, buffers carry unit rates.
    """
    platform, applications = _plain_applications()
    interval = next(iter(platform)).replenishment_interval
    typed = heterogeneous_platform(
        {"p": {"count": len(platform)}}, replenishment_interval=interval
    )
    workload = Workload(typed, name="bench-twin")
    for index, application in enumerate(applications):
        graphs = []
        for graph in application.task_graphs:
            twin = TaskGraph(name=graph.name, period=graph.period)
            for task in graph.tasks:
                twin.add_task(
                    Task(
                        name=task.name,
                        wcet=0.0,
                        phases=(task.wcet,),
                        processor=task.processor,
                        budget_weight=task.budget_weight,
                        min_budget=task.min_budget,
                        max_budget=task.max_budget,
                        cycles_by_type={"p": task.wcet},
                    )
                )
            for buffer in graph.buffers:
                twin.add_buffer(
                    Buffer(
                        name=buffer.name,
                        source=buffer.source,
                        target=buffer.target,
                        memory=buffer.memory,
                        container_size=buffer.container_size,
                        initial_tokens=buffer.initial_tokens,
                        capacity_weight=buffer.capacity_weight,
                        min_capacity=buffer.min_capacity,
                        max_capacity=buffer.max_capacity,
                        production_rates=(1,),
                        consumption_rates=(1,),
                    )
                )
            graphs.append(twin)
        workload.add_application(
            f"app{index}",
            Configuration(
                platform=typed,
                task_graphs=graphs,
                granularity=application.granularity,
                name=application.name,
            ),
        )
    return workload


def _generalised_workload() -> Workload:
    """Eight heterogeneous applications, each with one two-phase CSDF task.

    Four-task chains on a big/little platform (big cores clocked 2x): the
    head of every chain is cyclo-static (two phases producing one token
    each, the successor consuming both per firing) and every task carries a
    per-type cycle table with a 40% little-core penalty.
    """
    platform = heterogeneous_platform(
        {
            "big": {"count": 2, "speed": 2.0},
            "little": {"count": 2},
        },
        replenishment_interval=40.0,
        name="bench-big-little",
    )
    processors = list(platform.processors)
    workload = Workload(platform, name="bench-heterogeneous")
    for index in range(APP_COUNT):
        rng = random.Random(97 + index)
        graph = TaskGraph(name=f"chain{index}", period=10.0)
        for stage in range(4):
            cycles = rng.uniform(0.5 / 8, 2.0 / 8)
            kwargs = {}
            if stage == 0:
                kwargs["wcet"] = 0.0
                kwargs["phases"] = (cycles / 3.0, 2.0 * cycles / 3.0)
            else:
                kwargs["wcet"] = cycles
            graph.add_task(
                Task(
                    name=f"t{stage}",
                    processor=processors[(index + stage) % len(processors)],
                    cycles_by_type={"big": cycles, "little": 1.4 * cycles},
                    **kwargs,
                )
            )
        for stage in range(3):
            rates = {}
            if stage == 0:
                rates["production_rates"] = (1, 1)
                rates["consumption_rates"] = (2,)
            graph.add_buffer(
                Buffer(
                    name=f"b{stage}",
                    source=f"t{stage}",
                    target=f"t{stage + 1}",
                    memory="m1",
                    **rates,
                )
            )
        workload.add_application(
            f"app{index}",
            Configuration(
                platform=platform,
                task_graphs=[graph],
                granularity=0.25,
                name=f"app{index}",
            ),
        )
    return workload


def _options() -> AllocatorOptions:
    return AllocatorOptions(verify=False, run_simulation=False)


def _allocate(workload: Workload):
    return JointAllocator(options=_options()).allocate_workload(workload)


def _run_timed(benchmark, fn):
    """One timed run that also works under ``--benchmark-disable``."""
    box = {}

    def timed():
        started = perf_counter()
        box["result"] = fn()
        box["wall"] = perf_counter() - started
        return box["result"]

    benchmark.pedantic(timed, rounds=1, iterations=1, warmup_rounds=0)
    return box["result"], box["wall"]


def test_bench_plain_sdf_baseline(benchmark, record_series):
    mapped, wall = _run_timed(benchmark, lambda: _allocate(_plain_workload()))
    MEASURED["plain"] = (wall, mapped)
    record_series(benchmark, "applications", APP_COUNT)
    record_series(benchmark, "wall_seconds", round(wall, 4))
    record_series(benchmark, "objective", mapped.objective_value)


def test_bench_trivial_twin_generality_is_free(benchmark, record_series):
    mapped, wall = _run_timed(benchmark, lambda: _allocate(_twin_workload()))
    plain = MEASURED.get("plain")
    if plain is None:  # module run out of order (e.g. -k selection)
        plain = (None, _allocate(_plain_workload()))
    plain_wall, plain_mapped = plain

    # The no-cost-of-generality gate: re-expressing the paper's model
    # through the generalised fields must not move the optimum at all.
    twin_budgets = mapped.flattened("budgets")
    plain_budgets = plain_mapped.flattened("budgets")
    assert set(twin_budgets) == set(plain_budgets)
    for name, budget in plain_budgets.items():
        assert twin_budgets[name] == pytest.approx(budget, abs=TWIN_TOL), name
    assert mapped.flattened("buffer_capacities") == plain_mapped.flattened(
        "buffer_capacities"
    )
    assert mapped.objective_value == pytest.approx(
        plain_mapped.objective_value, abs=TWIN_TOL
    )

    record_series(benchmark, "wall_seconds", round(wall, 4))
    if plain_wall is not None:
        record_series(
            benchmark, "overhead_vs_plain", round(wall / max(plain_wall, 1e-9), 3)
        )


def test_bench_heterogeneous_csdf_workload(benchmark, record_series):
    workload = _generalised_workload()
    mapped, wall = _run_timed(benchmark, lambda: _allocate(workload))
    assert mapped.objective_value is not None
    for name in workload.application_names:
        application = mapped.application(name)
        assert all(budget > 0 for budget in application.budgets.values())

    record_series(benchmark, "applications", APP_COUNT)
    record_series(benchmark, "wall_seconds", round(wall, 4))
    plain = MEASURED.get("plain")
    if plain is not None and plain[0] is not None:
        record_series(
            benchmark,
            "overhead_vs_plain_sdf",
            round(wall / max(plain[0], 1e-9), 3),
        )


@pytest.mark.parametrize(
    "mode",
    ["dense", "structured", "decomposed"],
)
def test_bench_heterogeneous_solver_modes_agree(benchmark, record_series, mode):
    """Dense, structured-sparse and decomposed solves of the same program.

    The generalised workload lowers to one cone program; all three solver
    paths must land on the same optimum (objective and every variable)
    within 1e-6.
    """
    formulation = WorkloadSocpFormulation(_generalised_workload())
    if mode == "dense":
        solve = lambda: formulation.solve(
            backend="barrier", options={"structured": False}
        )
    elif mode == "structured":
        solve = lambda: formulation.solve(
            backend="barrier", options={"structured": True}
        )
    else:
        solve = lambda: formulation.solve(backend="decomposed")
    solution, wall = _run_timed(benchmark, solve)
    assert solution.is_optimal
    MEASURED[("mode", mode)] = solution

    reference = MEASURED.get(("mode", "dense"))
    if reference is not None and reference is not solution:
        scale = max(1.0, abs(reference.objective))
        assert abs(solution.objective - reference.objective) / scale < EQUIV_TOL, (
            f"{mode} optimum drifted from the dense baseline"
        )
        reference_values = {
            variable.name: value for variable, value in reference.values.items()
        }
        for variable, value in solution.values.items():
            assert value == pytest.approx(
                reference_values[variable.name], abs=1e-4, rel=EQUIV_TOL * 100
            ), variable.name

    record_series(benchmark, "mode", mode)
    record_series(benchmark, "wall_seconds", round(wall, 4))
    record_series(benchmark, "objective", solution.objective)
