"""Durable admission journal: a checksummed, append-only write-ahead log.

One admission run writes one journal file.  Each line is a self-contained
JSON record with a CRC-32 checksum over its canonical JSON form (the
record without its ``crc`` field, serialised with sorted keys and no
whitespace — :func:`repro.batch.cache.canonical_json`):

* ``seq 0`` — the ``open`` record: schema version, trace name, the full
  platform document and its fingerprint (so a journal alone identifies —
  and can rebuild — the platform it was recorded against);
* ``seq 1..N`` — one ``event`` record per *committed* trace event: the
  :class:`~repro.core.admission.TraceEvent` (arrival configurations
  serialised inline) plus the structured outcome the controller produced
  (status, stage, objective, running set, anytime verdict).

Appends reuse the ``O_APPEND`` single-``os.write`` pattern of
:class:`repro.obs.export.JsonlSink`: every record is exactly one line
written atomically, so a crash never interleaves partial records — it can
only truncate the *final* line.  Against *process* death every append is
durable as written; against power loss or an OS crash, durability is
guaranteed at the explicit :meth:`AdmissionJournal.sync` barriers (the
durable replay syncs before publishing each snapshot and on close) —
construct the journal with ``fsync=True`` to pay one ``fsync`` per record
and make every append a power-loss barrier.  The reader tolerates an
unparseable final line (reported via
:attr:`JournalContents.truncated`, the record is dropped) while rejecting
everything else: a checksum mismatch on a complete record, a sequence gap,
or garbage in the middle of the file all raise
:class:`~repro.exceptions.JournalError` — those are corruption, not crash
artefacts.  Resuming a journal whose final line is torn repairs the file
first (truncate to the last valid record), so the resumed run's appends
start on a fresh line instead of concatenating onto the garbage.

Records are written *after* the controller commits a decision, so the
journal only ever contains decisions that actually happened; a crash
between commit and append loses at most the one in-flight event, which the
event-boundary recovery contract allows.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.batch.cache import canonical_json
from repro.core.admission import TraceEvent, TraceRecord
from repro.exceptions import JournalError
from repro.reliability.faults import maybe_fail
from repro.taskgraph.platform import Platform

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "AdmissionJournal",
    "JournalContents",
    "JournalEntry",
    "platform_fingerprint",
    "read_journal",
]

JOURNAL_SCHEMA_VERSION = 1

KIND_OPEN = "open"
KIND_EVENT = "event"


def platform_fingerprint(platform: Platform) -> str:
    """A stable SHA-256 identity of a platform's canonical document."""
    from repro.taskgraph import serialization

    document = canonical_json(serialization.platform_to_dict(platform))
    return hashlib.sha256(document.encode("utf-8")).hexdigest()


def _checksum(record: Mapping[str, object]) -> int:
    """CRC-32 over the record's canonical JSON, ``crc`` field excluded."""
    body = {key: value for key, value in record.items() if key != "crc"}
    return zlib.crc32(canonical_json(body).encode("utf-8"))


def _event_to_dict(event: TraceEvent) -> Dict[str, object]:
    from repro.taskgraph import serialization

    data: Dict[str, object] = {
        "action": event.action,
        "application": event.application,
    }
    if event.configuration is not None:
        data["configuration"] = serialization.configuration_to_dict(
            event.configuration
        )
    return data


def _event_from_dict(data: Mapping[str, object]) -> TraceEvent:
    from repro.taskgraph import serialization

    configuration = None
    if data.get("configuration") is not None:
        configuration = serialization.configuration_from_dict(
            data["configuration"]
        )
    return TraceEvent(
        str(data["action"]), str(data["application"]), configuration
    )


@dataclass
class JournalEntry:
    """One committed event as read back from the journal."""

    seq: int
    event: TraceEvent
    outcome: Dict[str, object]

    def record(self) -> TraceRecord:
        """The recorded outcome as a :class:`TraceRecord` (index = seq - 1)."""
        outcome = self.outcome
        return TraceRecord(
            index=int(outcome.get("index", self.seq - 1)),
            action=self.event.action,
            application=self.event.application,
            status=str(outcome["status"]),
            stage=None if outcome.get("stage") is None else str(outcome["stage"]),
            reason=None if outcome.get("reason") is None else str(outcome["reason"]),
            objective_value=(
                None
                if outcome.get("objective_value") is None
                else float(outcome["objective_value"])
            ),
            running=[str(name) for name in outcome.get("running", [])],
            verdict=(
                None if outcome.get("verdict") is None else str(outcome["verdict"])
            ),
            verdict_stage=(
                None
                if outcome.get("verdict_stage") is None
                else str(outcome["verdict_stage"])
            ),
        )


@dataclass
class JournalContents:
    """Everything a well-formed (possibly truncated) journal file holds."""

    path: Path
    name: str = "journal"
    platform_data: Optional[Dict[str, object]] = None
    fingerprint: Optional[str] = None
    entries: List[JournalEntry] = field(default_factory=list)
    truncated: bool = False     #: final line dropped as a torn write
    #: Byte offset just past the last valid record (newline included): the
    #: length the file must be truncated to before appending when
    #: :attr:`truncated` is set, so a resumed run never concatenates its
    #: first record onto the torn tail.
    valid_bytes: int = 0

    @property
    def last_seq(self) -> int:
        """The last committed sequence number (0 = header only or empty)."""
        return self.entries[-1].seq if self.entries else 0

    def platform(self) -> Platform:
        from repro.taskgraph import serialization

        if self.platform_data is None:
            raise JournalError(
                f"journal {self.path} has no open record to rebuild a platform from"
            )
        return serialization.platform_from_dict(self.platform_data)


def _parse_line(line: str, where: str) -> Dict[str, object]:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as error:
        raise JournalError(f"{where}: unparseable record: {error}") from None
    if not isinstance(record, dict):
        raise JournalError(f"{where}: record is not a JSON object")
    schema = record.get("schema")
    if schema != JOURNAL_SCHEMA_VERSION:
        raise JournalError(
            f"{where}: unsupported journal schema {schema!r} "
            f"(supported: {JOURNAL_SCHEMA_VERSION})"
        )
    crc = record.get("crc")
    if not isinstance(crc, int):
        raise JournalError(f"{where}: record has no integer 'crc'")
    if crc != _checksum(record):
        raise JournalError(
            f"{where}: checksum mismatch (stored {crc}, "
            f"computed {_checksum(record)}) — the record is corrupt"
        )
    return record


def read_journal(path: Union[str, Path]) -> JournalContents:
    """Parse a journal file, tolerating only a torn final line.

    An empty or missing file reads as an empty journal.  Any malformed or
    checksum-mismatched record — except an unparseable *final* line, the
    signature of a crash mid-append — raises
    :class:`~repro.exceptions.JournalError`.
    """
    path = Path(path)
    contents = JournalContents(path=path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return contents
    segments = text.split("\n")
    lines: List[Tuple[str, int]] = []   #: (line, byte offset past its newline)
    offset = 0
    for position, segment in enumerate(segments):
        end = offset + len(segment.encode("utf-8"))
        if position < len(segments) - 1:
            end += 1    # the "\n" consumed by split
        if segment.strip():
            lines.append((segment, end))
        offset = end
    for position, (line, end) in enumerate(lines):
        where = f"{path}:{position + 1}"
        final = position == len(lines) - 1
        try:
            record = _parse_line(line, where)
        except JournalError as error:
            if final and "unparseable record" in str(error):
                # A torn final line is the crash artefact the WAL contract
                # tolerates: the in-flight record is dropped, everything
                # before it stands.
                contents.truncated = True
                break
            raise
        seq = record.get("seq")
        kind = record.get("kind")
        if kind == KIND_OPEN:
            if position != 0 or seq != 0:
                raise JournalError(f"{where}: misplaced open record")
            contents.name = str(record.get("name", "journal"))
            platform_data = record.get("platform")
            contents.platform_data = (
                dict(platform_data) if isinstance(platform_data, dict) else None
            )
            fingerprint = record.get("fingerprint")
            contents.fingerprint = (
                None if fingerprint is None else str(fingerprint)
            )
            contents.valid_bytes = end
            continue
        if kind != KIND_EVENT:
            raise JournalError(f"{where}: unknown record kind {kind!r}")
        if position == 0:
            raise JournalError(f"{where}: journal does not start with an open record")
        expected = contents.last_seq + 1
        if seq != expected:
            raise JournalError(
                f"{where}: sequence gap (expected seq {expected}, found {seq!r})"
            )
        try:
            event = _event_from_dict(record["event"])
            outcome = dict(record["outcome"])
        except (KeyError, TypeError) as error:
            raise JournalError(f"{where}: malformed event record: {error}") from None
        contents.entries.append(JournalEntry(seq=int(seq), event=event, outcome=outcome))
        contents.valid_bytes = end
    return contents


class AdmissionJournal:
    """Appender for one admission run's write-ahead log.

    ``open()`` creates the file (writing the seq-0 ``open`` record) or
    resumes an existing one — validating that it belongs to the same
    platform and positioning the sequence counter at its tail.  Appends are
    one atomic ``os.write`` per record on an ``O_APPEND`` descriptor,
    guarded by a per-process lock.
    """

    def __init__(self, path: Union[str, Path], fsync: bool = False) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._fd: Optional[int] = None
        self._lock = threading.Lock()
        self._seq = 0

    # -- lifecycle ----------------------------------------------------------
    def open(self, platform: Platform, name: str = "journal") -> "AdmissionJournal":
        """Create the journal for ``platform``, or resume an existing one."""
        fingerprint = platform_fingerprint(platform)
        if self.path.exists() and self.path.stat().st_size > 0:
            contents = read_journal(self.path)
            self._repair(contents)
            if contents.platform_data is not None or contents.entries:
                if contents.fingerprint != fingerprint:
                    raise JournalError(
                        f"journal {self.path} was recorded against a different "
                        f"platform (fingerprint {contents.fingerprint!r}, "
                        f"expected {fingerprint!r})"
                    )
                self._seq = contents.last_seq
                return self
            # The file held nothing but a torn first line (a crash mid-way
            # through the open record): the repair emptied it, so fall
            # through and start the journal afresh.
        from repro.taskgraph import serialization

        self._seq = 0
        self._append(
            {
                "schema": JOURNAL_SCHEMA_VERSION,
                "seq": 0,
                "kind": KIND_OPEN,
                "name": name,
                "platform": serialization.platform_to_dict(platform),
                "fingerprint": fingerprint,
            }
        )
        return self

    def _repair(self, contents: JournalContents) -> None:
        """Physically drop a torn final line before the first resumed append.

        ``O_APPEND`` writes land at the end of the file as it is on disk, so
        a torn tail left in place would have the first resumed record
        concatenated onto the garbage — destroying that record and making
        every later :func:`read_journal` fail mid-file.  Truncating to the
        end of the last valid record (and newline-terminating a tail whose
        record survived but whose newline did not) keeps the resumed file a
        well-formed one-record-per-line log.
        """
        if contents.truncated:
            os.truncate(self.path, contents.valid_bytes)
        size = self.path.stat().st_size
        if size == 0:
            return
        with self.path.open("rb") as handle:
            handle.seek(size - 1)
            terminated = handle.read(1) == b"\n"
        if not terminated:
            with self.path.open("ab") as handle:
                handle.write(b"\n")

    @property
    def seq(self) -> int:
        """The sequence number of the last appended event record."""
        return self._seq

    # -- appends ------------------------------------------------------------
    def append_event(self, event: TraceEvent, record: TraceRecord) -> int:
        """Journal one committed event and its outcome; returns its seq."""
        seq = self._seq + 1
        self._append(
            {
                "schema": JOURNAL_SCHEMA_VERSION,
                "seq": seq,
                "kind": KIND_EVENT,
                "event": _event_to_dict(event),
                "outcome": record.as_dict(),
            }
        )
        self._seq = seq
        return seq

    def _append(self, record: Dict[str, object]) -> None:
        record["crc"] = _checksum(record)
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        with self._lock:
            try:
                maybe_fail("journal.write", label=str(record.get("seq")))
                if self._fd is None:
                    self._fd = os.open(
                        str(self.path),
                        os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                        0o644,
                    )
                os.write(self._fd, line)
                if self._fsync:
                    os.fsync(self._fd)
            except OSError as error:
                raise JournalError(
                    f"journal append to {self.path} failed: {error}"
                ) from error

    def sync(self) -> None:
        """``fsync`` everything appended so far (a power-loss barrier).

        :func:`~repro.reliability.snapshot.replay_trace_durably` calls this
        before publishing each snapshot, so a snapshot on disk never
        references a journal sequence number that is not itself durable.
        """
        with self._lock:
            if self._fd is not None:
                try:
                    os.fsync(self._fd)
                except OSError as error:
                    raise JournalError(
                        f"journal sync of {self.path} failed: {error}"
                    ) from error

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                try:
                    os.fsync(self._fd)
                except OSError:
                    pass    # best effort: close() runs on unwind paths too
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "AdmissionJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
