"""Joint budget and buffer-size allocation.

:class:`JointAllocator` is the top-level entry point of the library: it takes
a :class:`~repro.taskgraph.configuration.Configuration`, builds and solves the
SOCP of Algorithm 1, rounds the relaxed solution conservatively, verifies the
result with independent dataflow analyses, and returns a
:class:`~repro.taskgraph.configuration.MappedConfiguration`.

For families of allocations over one configuration — trade-off sweeps that
vary only capacity/budget limits — :meth:`JointAllocator.session` returns an
:class:`AllocationSession` that compiles the cone program once and re-solves
it per point with warm starts, instead of rebuilding everything from Python
objects for every point.

Multi-application workloads go through the same machinery:
:meth:`JointAllocator.allocate_workload` solves the block-structured program
of a :class:`~repro.taskgraph.workload.Workload` (one formulation block per
application, coupled through the shared processor/memory rows) and returns a
:class:`~repro.taskgraph.workload.MappedWorkload` with per-application
rounding, verification and budget-split reporting;
:meth:`JointAllocator.workload_session` is the compile-once counterpart for
families of workload allocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.obs.trace import span as obs_span
from repro.exceptions import (
    AllocationError,
    InfeasibleProblemError,
    ModelError,
    NumericalError,
    UnboundedProblemError,
)
from repro.core.formulation import (
    ParametricSocpFormulation,
    ParametricWorkloadFormulation,
    SocpFormulation,
    WorkloadSocpFormulation,
)
from repro.core.objective import ObjectiveWeights
from repro.core.rounding import round_budgets, round_capacities
from repro.core.validation import VerificationReport, verify_mapping
from repro.solver.parametric import SessionStats, SolveSession
from repro.solver.result import Solution, SolverStatus
from repro.taskgraph.configuration import Configuration, MappedConfiguration
from repro.taskgraph.workload import MappedWorkload, Workload


def _phase_timings(solution: Solution, rounding_time: float) -> Dict[str, float]:
    """Per-phase wall-clock breakdown of one allocation.

    Combines the compile time recorded by :meth:`ConeProgram.solve`, the
    barrier backend's phase-I / centering split, and the rounding time
    measured by the allocator, all in seconds.  Reported through
    ``solver_info["timings"]`` and rendered by ``repro-map … --stats``.
    """
    return {
        "compile": float(solution.stats.get("compile_time", 0.0)),
        "phase1": float(solution.stats.get("phase1_time", 0.0)),
        "centering": float(solution.stats.get("centering_time", 0.0)),
        "rounding": float(rounding_time),
    }


@dataclass
class AllocatorOptions:
    """Options of the joint allocator."""

    backend: str = "auto"              #: solver backend passed to the cone program
    verify: bool = True                #: run independent verification after rounding
    run_simulation: bool = True        #: include self-timed simulation in verification
    simulate_iterations: int = 60      #: iterations of the validation simulation
    raise_on_verification_failure: bool = True
    #: workload solve mode: ``"joint"`` solves the block-structured program in
    #: one piece (the block-Newton path); ``"decomposed"`` splits it into
    #: per-application subproblems solved concurrently and coordinated
    #: through shared-capacity prices (see :mod:`repro.solver.decomposed`).
    mode: str = "joint"
    #: worker count of the decomposed mode (0 = one per application block)
    workers: int = 0
    #: decomposed fan-out: ``"thread"`` (in-process) or ``"process"``
    fanout: str = "thread"

    def solve_kwargs(self, mode: Optional[str] = None) -> Dict[str, object]:
        """The ``formulation.solve(...)`` keywords this option set implies.

        ``mode`` overrides the option-level default per call.  The joint mode
        keeps the configured backend; the decomposed mode routes to the
        ``"decomposed"`` backend with the worker/fan-out options attached.
        """
        resolved = mode or self.mode
        if resolved == "joint":
            return {"backend": self.backend}
        if resolved == "decomposed":
            return {
                "backend": "decomposed",
                "decomposed_workers": self.workers,
                "decomposed_fanout": self.fanout,
            }
        raise ModelError(
            f"unknown workload solve mode {resolved!r}; "
            f"expected 'joint' or 'decomposed'"
        )


class JointAllocator:
    """Simultaneous computation of budgets and buffer capacities."""

    def __init__(
        self,
        weights: Optional[ObjectiveWeights] = None,
        options: Optional[AllocatorOptions] = None,
    ) -> None:
        self.weights = weights or ObjectiveWeights.prefer_budgets()
        self.options = options or AllocatorOptions()

    def allocate(
        self,
        configuration: Configuration,
        capacity_limits: Optional[Mapping[str, int]] = None,
        budget_limits: Optional[Mapping[str, float]] = None,
        weights: Optional[ObjectiveWeights] = None,
    ) -> MappedConfiguration:
        """Compute a mapped configuration that satisfies every throughput constraint.

        Parameters
        ----------
        configuration:
            The input configuration (validated before solving).
        capacity_limits, budget_limits:
            Optional additional upper bounds (per buffer / per task) used by
            trade-off sweeps.
        weights:
            Objective weighting; overrides the allocator-level default.

        Raises
        ------
        InfeasibleProblemError
            When no budgets/capacities satisfy the constraints.
        AllocationError
            When the rounded mapping unexpectedly fails verification.
        """
        with obs_span("allocate", configuration=configuration.name):
            configuration.validate()
            formulation = SocpFormulation(
                configuration,
                weights=weights or self.weights,
                capacity_limits=capacity_limits,
                budget_limits=budget_limits,
            )
            solution = formulation.solve(backend=self.options.backend)
            self._check_status(solution, configuration.name)
            return self._finalize(
                configuration,
                solution,
                formulation.extract_budgets(solution),
                formulation.extract_capacities(solution),
            )

    def session(self, configuration: Configuration) -> "AllocationSession":
        """Open a compile-once allocation session over ``configuration``.

        The session validates and compiles the configuration once; each
        :meth:`AllocationSession.allocate` call then only rewrites the
        capacity/budget limit parameters and re-solves, warm-starting from
        the previous point's optimum.  Use it for trade-off sweeps and any
        other family of allocations that differ only in their limits.
        """
        return AllocationSession(self, configuration)

    def allocate_workload(
        self,
        workload: Workload,
        capacity_limits: Optional[Mapping[str, Mapping[str, int]]] = None,
        budget_limits: Optional[Mapping[str, Mapping[str, float]]] = None,
        weights: Optional[ObjectiveWeights] = None,
        mode: Optional[str] = None,
    ) -> MappedWorkload:
        """Jointly allocate every application of a workload on the shared platform.

        One block-structured cone program is built and solved: per-application
        variables and throughput constraints, coupled only through the shared
        processor and memory capacity rows.  The result is rounded and
        verified per application (each with its own granularity and dataflow
        analyses) and packaged as a
        :class:`~repro.taskgraph.workload.MappedWorkload`.

        Parameters
        ----------
        workload:
            The input workload (validated before solving).
        capacity_limits, budget_limits:
            Optional *per-application* additional upper bounds: mappings from
            application name to the per-buffer / per-task limit maps
            :meth:`allocate` takes.
        weights:
            Objective weighting; overrides the allocator-level default.
        mode:
            ``"joint"`` (one block-structured solve) or ``"decomposed"``
            (price-coordinated per-application subproblems solved in
            parallel); overrides :attr:`AllocatorOptions.mode` per call.
        """
        with obs_span(
            "allocate-workload", workload=workload.name, applications=len(workload)
        ):
            workload.validate()
            formulation = WorkloadSocpFormulation(
                workload,
                weights=weights or self.weights,
                capacity_limits=capacity_limits,
                budget_limits=budget_limits,
            )
            solution = formulation.solve(**self.options.solve_kwargs(mode))
            self._check_status(solution, workload.name)
            return self._finalize_workload(workload, formulation, solution)

    def workload_session(self, workload: Workload) -> "WorkloadSession":
        """Open a compile-once allocation session over ``workload``.

        The multi-application counterpart of :meth:`session`: the
        block-structured program compiles once, and each
        :meth:`WorkloadSession.allocate` call rewrites only the
        per-application limit parameters and re-solves with a warm start.
        """
        return WorkloadSession(self, workload)

    def _finalize(
        self,
        configuration: Configuration,
        solution: Solution,
        relaxed_budgets: Dict[str, float],
        relaxed_capacities: Dict[str, float],
    ) -> MappedConfiguration:
        """Round, package and (optionally) verify one optimal solution."""
        with obs_span("rounding") as rounding_span:
            budgets = round_budgets(relaxed_budgets, configuration.granularity)
            capacities = round_capacities(relaxed_capacities)
        rounding_time = rounding_span.seconds

        mapped = MappedConfiguration(
            configuration=configuration,
            budgets=budgets,
            buffer_capacities=capacities,
            relaxed_budgets=relaxed_budgets,
            relaxed_capacities=relaxed_capacities,
            objective_value=solution.objective,
            solver_info={
                "backend": solution.backend,
                "status": solution.status.value,
                "iterations": solution.iterations,
                "solve_time": solution.solve_time,
                "solve_stats": dict(solution.stats),
                "timings": _phase_timings(solution, rounding_time),
            },
        )

        if self.options.verify:
            with obs_span("verify") as verify_span:
                report = self.verify(mapped)
                verify_span.set(valid=report.is_valid)
            mapped.solver_info["verification"] = report.summary()
            if not report.is_valid and self.options.raise_on_verification_failure:
                raise AllocationError(
                    "the rounded mapping failed verification:\n" + report.summary()
                )
        return mapped

    def _finalize_workload(
        self,
        workload: Workload,
        formulation: WorkloadSocpFormulation,
        solution: Solution,
    ) -> MappedWorkload:
        """Round per application, package and (optionally) verify one optimum."""
        relaxed_budgets = formulation.budgets_by_application(solution)
        relaxed_capacities = formulation.capacities_by_application(solution)
        solver_info = {
            "backend": solution.backend,
            "status": solution.status.value,
            "iterations": solution.iterations,
            "solve_time": solution.solve_time,
            "solve_stats": dict(solution.stats),
        }
        applications: Dict[str, MappedConfiguration] = {}
        with obs_span("rounding", applications=len(workload)) as rounding_span:
            for application in workload.applications:
                configuration = application.configuration
                budgets = round_budgets(
                    relaxed_budgets[application.name], configuration.granularity
                )
                capacities = round_capacities(relaxed_capacities[application.name])
                applications[application.name] = MappedConfiguration(
                    configuration=configuration,
                    budgets=budgets,
                    buffer_capacities=capacities,
                    relaxed_budgets=relaxed_budgets[application.name],
                    relaxed_capacities=relaxed_capacities[application.name],
                    # The application's own share of the joint objective (its
                    # blocks' terms evaluated at the shared optimum), comparable
                    # to a stand-alone allocate() of the same application.
                    objective_value=formulation.block(
                        application.name
                    ).objective_value(solution),
                    solver_info=dict(solver_info),
                )
        solver_info["timings"] = _phase_timings(solution, rounding_span.seconds)
        mapped = MappedWorkload(
            workload=workload,
            applications=applications,
            objective_value=solution.objective,
            solver_info=solver_info,
        )
        if self.options.verify:
            with obs_span("verify") as verify_span:
                report = self.verify_workload(mapped)
                verify_span.set(valid=report.is_valid)
            mapped.solver_info["verification"] = report.summary()
            if not report.is_valid and self.options.raise_on_verification_failure:
                raise AllocationError(
                    "the rounded workload mapping failed verification:\n"
                    + report.summary()
                )
        return mapped

    def verify(self, mapped: MappedConfiguration) -> VerificationReport:
        """Verify a mapped configuration with independent dataflow analyses."""
        return verify_mapping(
            mapped,
            simulate_iterations=self.options.simulate_iterations,
            run_simulation=self.options.run_simulation,
        )

    def verify_workload(self, mapped: MappedWorkload) -> VerificationReport:
        """Verify a mapped workload: every application plus the shared resources.

        Each application's mapping runs through the full independent
        verification (periodic schedule existence, self-timed simulation,
        value checks) against *its own* task graphs; on top of that, the
        budgets and buffer footprints summed over every application are
        checked against the shared processor and memory capacities — the
        coupling the per-application checks cannot see.
        """
        report = VerificationReport()
        for name, app_mapped in mapped.applications.items():
            app_report = self.verify(app_mapped)
            report.checked_graphs += app_report.checked_graphs
            for graph_name, period in app_report.minimum_periods.items():
                report.minimum_periods[f"{name}/{graph_name}"] = period
            for issue in app_report.issues:
                report.add_issue(f"application {name!r}: {issue}")
        platform = mapped.workload.platform
        for processor_name, processor in platform.processors.items():
            total = mapped.total_budget(processor_name) + processor.scheduling_overhead
            if total > processor.replenishment_interval + 1e-9:
                report.add_issue(
                    f"processor {processor_name!r}: the applications' budgets plus "
                    f"overhead use {total:.6g} of the replenishment interval "
                    f"{processor.replenishment_interval:.6g}"
                )
        for memory_name, memory in platform.memories.items():
            if not memory.is_bounded:
                continue
            usage = mapped.total_storage(memory_name)
            if usage > memory.capacity + 1e-9:
                report.add_issue(
                    f"memory {memory_name!r}: the applications' buffers use "
                    f"{usage:.6g} of only {memory.capacity:.6g} available"
                )
        return report

    @staticmethod
    def _check_status(solution: Solution, name: str) -> None:
        if solution.status is SolverStatus.OPTIMAL:
            return
        if solution.status is SolverStatus.INFEASIBLE:
            raise InfeasibleProblemError(
                f"no budgets and buffer capacities satisfy the throughput "
                f"requirements of {name!r} within its "
                f"processor and memory capacities"
            )
        if solution.status is SolverStatus.UNBOUNDED:
            raise UnboundedProblemError(
                f"the optimisation problem for {name!r} "
                f"is unbounded; check the objective weights"
            )
        raise NumericalError(
            f"the solver failed on {name!r}: "
            f"{solution.status.value} ({solution.message})"
        )


class _LimitSession:
    """Shared control flow of compile-once, warm-started allocation sessions.

    Subclasses provide the parametric formulation (built once in their
    constructor), the per-point rebuild formulation and the finalisation of
    an optimal solution; everything else — the pinned-bound rebuild fallback,
    warm-start seeding, statistics accounting — lives here exactly once, so
    single-configuration and workload sessions cannot diverge.
    """

    allocator: JointAllocator
    _parametric: object

    def _open(self, allocator: JointAllocator, parametric, subject_name: str) -> None:
        self.allocator = allocator
        self._parametric = parametric
        self._subject_name = subject_name
        solve_kwargs = allocator.options.solve_kwargs()
        self._session = SolveSession(
            parametric.parametric,
            backend=solve_kwargs.pop("backend"),
            options=solve_kwargs or None,
        )
        self._initial = parametric.initial_point()

    # -- subclass hooks ----------------------------------------------------------
    def _build_formulation(self, capacity_limits, budget_limits):
        raise NotImplementedError

    def _finalize(self, formulation, solution: Solution):
        raise NotImplementedError

    # -- shared session protocol -------------------------------------------------
    @property
    def stats(self) -> SessionStats:
        """Aggregate solve statistics across every point of the session."""
        return self._session.stats

    def _adopt_stats(self, stats: SessionStats) -> None:
        """Continue accumulating into a predecessor session's statistics."""
        stats.compiles += self._session.stats.compiles
        self._session.stats = stats

    def allocate(
        self,
        capacity_limits=None,
        budget_limits=None,
        warm_start: bool = True,
    ):
        """Re-solve for one set of limits.

        ``warm_start=False`` ignores the previous optimum for this point
        (used by benchmarks to isolate the warm-start gain); the compiled
        problem is still reused.
        """
        with obs_span("allocate", subject=self._subject_name) as point_span:
            pinned = self._parametric.apply_limits(capacity_limits, budget_limits)
            if pinned:
                point_span.set(rebuild=True)
                return self._rebuild_point(capacity_limits, budget_limits)
            solution = self._session.solve(
                initial_point=self._initial, warm_start=warm_start
            )
            self.allocator._check_status(solution, self._subject_name)
            return self._finalize(self._parametric.formulation, solution)

    def _rebuild_point(self, capacity_limits, budget_limits):
        """Solve one point the rebuild way (limits baked into fresh bounds)."""
        stats = self._session.stats
        stats.rebuilds += 1
        stats.compiles += 1
        formulation = self._build_formulation(capacity_limits, budget_limits)
        solution = formulation.solve(**self.allocator.options.solve_kwargs())
        # Fold the rebuilt point's work into the session aggregates so that
        # the reported statistics cover every point of the sweep.
        stats.record_solution(solution)
        self.allocator._check_status(solution, self._subject_name)
        mapped = self._finalize(formulation, solution)
        mapped.solver_info["solve_stats"] = {
            **mapped.solver_info.get("solve_stats", {}),
            "rebuild": True,
        }
        # The rebuilt optimum is a valid (usually near-boundary) point of the
        # parametric program too; let it seed the next point's warm start.
        self._session.seed(solution.by_name())
        return mapped


class AllocationSession(_LimitSession):
    """Warm-started allocation over one configuration, compiled exactly once.

    Created through :meth:`JointAllocator.session`.  The session builds and
    compiles the SOCP a single time with the capacity/budget limits exposed
    as parameters; every :meth:`allocate` call rewrites only those parameters
    and re-solves, seeding the barrier method with the previous optimum so
    that phase I is skipped whenever that point is still strictly feasible.

    One structural case falls back to a per-point rebuild: a limit that lands
    exactly on a variable's lower bound, which the formulation represents as
    an equality row (counted in :attr:`stats` as a rebuild; the rebuilt
    optimum still seeds the warm start of subsequent points).

    :meth:`allocate` has the same contract as :meth:`JointAllocator.allocate`
    for this session's configuration (flat per-buffer / per-task limit maps).
    """

    def __init__(self, allocator: JointAllocator, configuration: Configuration) -> None:
        configuration.validate()
        self.configuration = configuration
        self._open(
            allocator,
            ParametricSocpFormulation(configuration, weights=allocator.weights),
            configuration.name,
        )

    def _build_formulation(self, capacity_limits, budget_limits) -> SocpFormulation:
        return SocpFormulation(
            self.configuration,
            weights=self.allocator.weights,
            capacity_limits=capacity_limits,
            budget_limits=budget_limits,
        )

    def _finalize(self, formulation, solution: Solution) -> MappedConfiguration:
        return self.allocator._finalize(
            self.configuration,
            solution,
            formulation.extract_budgets(solution),
            formulation.extract_capacities(solution),
        )

    def allocate(
        self,
        capacity_limits: Optional[Mapping[str, int]] = None,
        budget_limits: Optional[Mapping[str, float]] = None,
        warm_start: bool = True,
    ) -> MappedConfiguration:
        return super().allocate(capacity_limits, budget_limits, warm_start)


class WorkloadSession(_LimitSession):
    """Warm-started allocation over one workload, compiled exactly once.

    Created through :meth:`JointAllocator.workload_session`.  The session
    builds and compiles the block-structured program a single time with every
    application's capacity/budget limits exposed as namespaced parameters;
    every :meth:`allocate` call rewrites only those parameters and re-solves,
    seeding the barrier method with the previous optimum — the compile-once
    and phase-I-skip behaviour of :class:`AllocationSession` carries over to
    the multi-application case unchanged (both ride the same
    :class:`_LimitSession` control flow).

    As in the single-configuration session, a limit landing exactly on a
    variable's lower bound falls back to a per-point rebuild (counted in
    :attr:`stats`; the rebuilt optimum still seeds subsequent warm starts).

    :meth:`allocate` has the same contract as
    :meth:`JointAllocator.allocate_workload` for this session's workload
    (*per-application* limit maps).
    """

    def __init__(self, allocator: JointAllocator, workload: Workload) -> None:
        workload.validate()
        self.workload = workload
        self._open(
            allocator,
            ParametricWorkloadFormulation(workload, weights=allocator.weights),
            workload.name,
        )

    def _build_formulation(
        self, capacity_limits, budget_limits
    ) -> WorkloadSocpFormulation:
        return WorkloadSocpFormulation(
            self.workload,
            weights=self.allocator.weights,
            capacity_limits=capacity_limits,
            budget_limits=budget_limits,
        )

    def _finalize(self, formulation, solution: Solution) -> MappedWorkload:
        return self.allocator._finalize_workload(self.workload, formulation, solution)

    def allocate(
        self,
        capacity_limits: Optional[Mapping[str, Mapping[str, int]]] = None,
        budget_limits: Optional[Mapping[str, Mapping[str, float]]] = None,
        warm_start: bool = True,
    ) -> MappedWorkload:
        return super().allocate(capacity_limits, budget_limits, warm_start)

    # -- incremental workload editing -------------------------------------------
    def add_application(self, name: str, configuration: Configuration) -> None:
        """Admit one application into the running session.

        The application joins the session's workload, the combined-load
        screens re-run (the workload — and the session — are left untouched
        when they fail), and the block formulation is rebuilt *incrementally*:
        every existing application keeps its :class:`~repro.core.formulation.
        FormulationBlock` (cached SRDF specifications included), its per-block
        equality elimination transfers onto the new compiled problem, and the
        previous optimum warm-starts the next :meth:`allocate`.  Only the new
        application's block is built and factorised from scratch.
        """
        self._edit(lambda: self.workload.add_application(name, configuration))

    def remove_application(self, name: str) -> None:
        """Retire one application from the running session (the departure case).

        The remaining applications keep their formulation blocks and
        eliminations; the previous optimum restricted to the surviving
        variables stays strictly feasible (the shared capacity rows only got
        more slack), so the next :meth:`allocate` typically skips phase I.
        """
        if name in self.workload.application_names and len(self.workload) <= 1:
            raise ModelError(
                f"cannot remove {name!r}: a workload session needs at least one "
                f"application (discard the session instead)"
            )
        # No re-validation: any sub-workload of a valid workload is valid
        # (removal only relaxes the combined-load screens).
        self._edit(lambda: self.workload.remove_application(name), validate=False)

    def replace_application(self, name: str, configuration: Configuration) -> None:
        """Swap one application's configuration in place (reconfiguration).

        Every *other* application's block and elimination are kept; the named
        application's block is rebuilt.  The workload is restored and the
        session left untouched when the replacement fails the load screens.
        """
        self._edit(lambda: self.workload.replace_application(name, configuration))

    def _edit(self, mutate, validate: bool = True) -> None:
        """Apply one membership edit transactionally.

        The workload mutates first, then the load screens re-run and the
        parametric program rebuilds incrementally.  *Any* failure along the
        way — a screen rejection, but also a numerical error while compiling
        or eliminating the new formulation — restores the exact previous
        membership (order included) and leaves the existing session state
        untouched, so a failed edit can never leave the workload and the
        compiled program describing different memberships.

        The block-variable snapshot matters: rebuilding reuses the current
        :class:`~repro.core.formulation.FormulationBlock` objects, whose
        ``build()`` re-registers fresh ``Variable``s into the (then
        discarded) new program.  Without restoring the old registries, the
        kept session's solution extraction would be keyed by variables its
        compiled problem has never heard of.
        """
        snapshot = dict(self.workload._applications)
        variable_snapshots = [
            (
                block,
                dict(block.variables.budgets),
                dict(block.variables.reciprocals),
                dict(block.variables.capacities),
                dict(block.variables.start_times),
            )
            for block in self._parametric.formulation.blocks
        ]
        try:
            mutate()
            if validate:
                self.workload.validate()
            self._rebind()
        except BaseException:
            self.workload._applications.clear()
            self.workload._applications.update(snapshot)
            for block, budgets, reciprocals, capacities, start_times in (
                variable_snapshots
            ):
                block.variables.budgets = budgets
                block.variables.reciprocals = reciprocals
                block.variables.capacities = capacities
                block.variables.start_times = start_times
            raise

    def _rebind(self) -> None:
        """Rebuild the parametric program incrementally after a workload edit.

        Unchanged applications contribute their existing blocks to the new
        :class:`~repro.core.formulation.WorkloadSocpFormulation` (via
        ``reuse_blocks``), their per-block equality eliminations transfer onto
        the new compiled problem
        (:func:`repro.solver.barrier.transfer_block_eliminations`), and the
        previous optimum — extended with heuristic values for a new
        application's variables — seeds the next solve's warm start.
        """
        from repro.solver.barrier import transfer_block_eliminations

        old_session = self._session
        old_parametric = self._parametric
        old_formulation = old_parametric.formulation
        old_compiled = old_session.parametric.compiled
        old_order = list(old_formulation._blocks_by_application)

        parametric = ParametricWorkloadFormulation(
            self.workload,
            weights=self.allocator.weights,
            reuse_blocks=old_formulation._blocks_by_application,
        )
        new_formulation = parametric.formulation
        new_compiled = parametric.parametric.compiled
        new_order = list(new_formulation._blocks_by_application)
        block_map = {
            old_order.index(app_name): new_order.index(app_name)
            for app_name in new_formulation._reused_applications
            if app_name in old_order
        }
        transfer_block_eliminations(old_compiled, new_compiled, block_map)

        heuristic = {
            var.name: float(value)
            for var, value in parametric.initial_point().items()
        }

        def _carry_over(old_vector: Optional[np.ndarray]) -> Optional[np.ndarray]:
            """Old per-variable values re-keyed onto the new program by name,
            with heuristic values filling the edited application's slots."""
            if old_vector is None:
                return None
            old_values = {
                var.name: float(value)
                for var, value in zip(old_compiled.variables, old_vector)
            }
            return np.array(
                [
                    old_values.get(var.name, heuristic.get(var.name, 0.0))
                    for var in new_compiled.variables
                ]
            )

        seed_vector = _carry_over(old_session.warm_vector)
        # The first-rung central point is the far-interior re-centering start
        # that makes warm re-solves cheap; carry it across the edit as well
        # (the backend re-validates strict feasibility before using it).
        interior_vector = _carry_over(old_session._interior_vector)

        stats = old_session.stats
        self._parametric = parametric
        solve_kwargs = self.allocator.options.solve_kwargs()
        self._session = SolveSession(
            parametric.parametric,
            backend=solve_kwargs.pop("backend"),
            # A membership edit shifts the shared capacity slacks, so the
            # carried-over point is further from the new central path than a
            # same-problem parameter nudge; accept a larger first-centering
            # decrement before giving up on a raised warm rung (the cold-run
            # fallback still guards convergence).
            options={"warm_rung_decrement": 256.0, **solve_kwargs},
        )
        self._adopt_stats(stats)
        # The central-path endpoint scale survives an edit well enough to keep
        # seeding the warm-rung selection (it is validated per solve anyway).
        # Enter the ladder one rung lower than a same-problem re-solve would:
        # the extra shared rung anneals the warm trajectory onto the cold
        # path's, keeping the returned optimum within 1e-6 of a from-scratch
        # rebuild while still skipping the early rungs.
        self._session.warm_rungs_back = 3
        self._session._last_final_barrier = old_session._last_final_barrier
        self._initial = parametric.initial_point()
        if seed_vector is not None:
            self._session.seed(seed_vector)
        if interior_vector is not None:
            self._session._interior_vector = interior_vector

def allocate(
    configuration: Configuration,
    weights: Optional[ObjectiveWeights] = None,
    backend: str = "auto",
    verify: bool = True,
) -> MappedConfiguration:
    """Functional convenience wrapper around :class:`JointAllocator`."""
    options = AllocatorOptions(backend=backend, verify=verify)
    allocator = JointAllocator(weights=weights, options=options)
    return allocator.allocate(configuration)


def allocate_workload(
    workload: Workload,
    weights: Optional[ObjectiveWeights] = None,
    backend: str = "auto",
    verify: bool = True,
    mode: str = "joint",
    workers: int = 0,
    fanout: str = "thread",
) -> MappedWorkload:
    """Functional convenience wrapper around
    :meth:`JointAllocator.allocate_workload`."""
    options = AllocatorOptions(
        backend=backend, verify=verify, mode=mode, workers=workers, fanout=fanout
    )
    allocator = JointAllocator(weights=weights, options=options)
    return allocator.allocate_workload(workload)
