"""Tests of joint workload allocation: blocks, sessions, sweeps, batch.

The lock-in guarantees of the block-structured refactor:

* a 1-application workload solves to the *same* budgets and capacities as
  :meth:`JointAllocator.allocate` on the bare configuration (the 1-block
  special case is exact, within 1e-9);
* a multi-application workload shares each processor soundly (total budget
  within the replenishment interval) while every application meets its
  throughput constraint, verified through the independent dataflow analyses
  including self-timed simulation;
* a workload capacity sweep through :class:`WorkloadSession` matches the
  rebuild-per-point path within 1e-6.
"""

from __future__ import annotations

import pytest

from repro.core import (
    AllocatorOptions,
    JointAllocator,
    ParametricWorkloadFormulation,
    SocpFormulation,
    TradeoffExplorer,
    WorkloadSocpFormulation,
    allocate_workload,
)
from repro.exceptions import FormulationError, InfeasibleProblemError
from repro.taskgraph import Workload
from repro.taskgraph.generators import (
    chain_configuration,
    producer_consumer_configuration,
)


def options(simulate: bool = False) -> AllocatorOptions:
    return AllocatorOptions(run_simulation=simulate)


def one_app_workload(configuration=None):
    configuration = configuration or producer_consumer_configuration()
    workload = Workload(configuration.platform, name="solo")
    workload.add_application("only", configuration)
    return workload


def two_app_workload():
    """Two pipelines competing for the same two processors."""
    video = chain_configuration(stages=2)
    audio = chain_configuration(stages=2, period=20.0)
    workload = Workload(video.platform, name="duo")
    workload.add_application("video", video)
    workload.add_application("audio", audio)
    return workload


class TestOneBlockEquivalence:
    def test_single_application_matches_plain_allocate(self):
        configuration = producer_consumer_configuration()
        allocator = JointAllocator(options=options())
        single = allocator.allocate(configuration)
        mapped = allocator.allocate_workload(one_app_workload(configuration))
        app = mapped.application("only")
        assert set(app.budgets) == set(single.budgets)
        for task_name, budget in single.budgets.items():
            assert app.budgets[task_name] == pytest.approx(budget, abs=1e-9)
        for task_name, budget in single.relaxed_budgets.items():
            assert app.relaxed_budgets[task_name] == pytest.approx(budget, abs=1e-9)
        assert app.buffer_capacities == single.buffer_capacities
        for buffer_name, capacity in single.relaxed_capacities.items():
            assert app.relaxed_capacities[buffer_name] == pytest.approx(
                capacity, abs=1e-9
            )
        assert mapped.objective_value == pytest.approx(
            single.objective_value, abs=1e-9
        )
        # The per-application objective share equals the stand-alone optimum
        # in the 1-block case.
        assert app.objective_value == pytest.approx(single.objective_value, abs=1e-9)

    def test_one_block_program_is_structurally_identical(self):
        configuration = producer_consumer_configuration()
        single = SocpFormulation(configuration).build()
        joint = WorkloadSocpFormulation(one_app_workload(configuration)).build()
        assert len(joint.variables) == len(single.variables)
        assert len(joint.linear_constraints) == len(single.linear_constraints)
        assert len(joint.hyperbolic_constraints) == len(single.hyperbolic_constraints)
        for joint_var, single_var in zip(joint.variables, single.variables):
            # Same bounds in the same order; names carry the app prefix.
            assert joint_var.lower == single_var.lower
            assert joint_var.upper == single_var.upper
            assert joint_var.name == single_var.name.replace("[", "[only/", 1)

    def test_capacity_limited_equivalence(self):
        configuration = producer_consumer_configuration()
        allocator = JointAllocator(options=options())
        single = allocator.allocate(configuration, capacity_limits={"bab": 4})
        mapped = allocator.allocate_workload(
            one_app_workload(configuration),
            capacity_limits={"only": {"bab": 4}},
        )
        app = mapped.application("only")
        for task_name, budget in single.relaxed_budgets.items():
            assert app.relaxed_budgets[task_name] == pytest.approx(budget, abs=1e-9)
        assert app.buffer_capacities == single.buffer_capacities


class TestSharedPlatform:
    def test_two_applications_share_processor_capacity_soundly(self):
        workload = two_app_workload()
        mapped = JointAllocator(options=options(simulate=True)).allocate_workload(
            workload
        )
        for processor_name, processor in workload.platform.processors.items():
            split = mapped.budget_split(processor_name)
            assert set(split) == {"video", "audio"}
            total = mapped.total_budget(processor_name)
            assert total == pytest.approx(sum(split.values()))
            assert total + processor.scheduling_overhead <= (
                processor.replenishment_interval + 1e-9
            )
        # Both applications meet their throughput constraints: verification
        # (periodic schedule existence + self-timed simulation) passed, or
        # allocate_workload would have raised.
        assert "verified" in mapped.solver_info["verification"]
        # Per-application objective shares sum to the joint optimum.
        assert sum(
            app.objective_value for app in mapped.applications.values()
        ) == pytest.approx(mapped.objective_value, abs=1e-9)
        # The slower audio pipeline needs less budget than the video one.
        video_total = mapped.application("video").total_budget()
        audio_total = mapped.application("audio").total_budget()
        assert audio_total < video_total + 1e-9

    def test_budget_split_rows_survive_reserved_application_names(self):
        # Applications named like the table's meta columns must not clobber
        # them: per-app columns are namespaced as budget[<application>].
        workload = Workload(chain_configuration(stages=2).platform, name="tricky")
        workload.add_application("total", chain_configuration(stages=2))
        workload.add_application("processor", chain_configuration(stages=2, period=20.0))
        mapped = JointAllocator(options=options()).allocate_workload(workload)
        for row in mapped.budget_split_rows():
            assert isinstance(row["processor"], str)
            assert row["total"] == pytest.approx(
                row["budget[total]"] + row["budget[processor]"]
            )

    def test_namespacing_supports_identical_applications(self):
        workload = Workload(chain_configuration(stages=2).platform, name="twins")
        workload.add_application("left", chain_configuration(stages=2))
        workload.add_application("right", chain_configuration(stages=2))
        mapped = JointAllocator(options=options()).allocate_workload(workload)
        left, right = mapped.application("left"), mapped.application("right")
        assert set(left.budgets) == set(right.budgets)
        for task_name, budget in left.relaxed_budgets.items():
            assert right.relaxed_budgets[task_name] == pytest.approx(budget, abs=1e-6)

    def test_per_application_capacity_limits_only_bind_their_application(self):
        workload = two_app_workload()
        allocator = JointAllocator(options=options())
        free = allocator.allocate_workload(workload)
        limited = allocator.allocate_workload(
            workload, capacity_limits={"video": {"bab": 2}}
        )
        assert limited.application("video").buffer_capacities["bab"] <= 2
        # The audio application's buffer keeps its unconstrained capacity.
        assert limited.application("audio").buffer_capacities["bab"] == (
            free.application("audio").buffer_capacities["bab"]
        )
        # Squeezing the video buffers costs video budget.
        assert (
            limited.application("video").total_budget()
            > free.application("video").total_budget()
        )

    def test_unknown_application_in_limits_is_rejected(self):
        with pytest.raises(FormulationError, match="ghost"):
            WorkloadSocpFormulation(
                two_app_workload(), capacity_limits={"ghost": {"bab": 2}}
            )

    def test_jointly_infeasible_capacity_limits_raise(self):
        # Three containers per buffer is feasible for either application
        # alone, but the budgets both then need no longer fit on the two
        # shared processors: infeasibility only the joint program can see.
        workload = two_app_workload()
        allocator = JointAllocator(options=options())
        limits = {"video": {"bab": 3}, "audio": {"bab": 3}}
        for app_name in ("video", "audio"):
            solo = one_app_workload(
                workload.application(app_name).configuration
            )
            allocator.allocate_workload(
                solo, capacity_limits={"only": limits[app_name]}
            )
        # The unlimited workload remains feasible …
        allocate_workload(workload, verify=False)
        # … but the jointly limited one is not.
        with pytest.raises(InfeasibleProblemError):
            JointAllocator(options=options()).allocate_workload(
                workload, capacity_limits=limits
            )


class TestWorkloadSession:
    SWEEP = tuple(range(3, 11))

    def test_session_sweep_matches_rebuild_per_point(self):
        allocator = JointAllocator(options=options())
        session = allocator.workload_session(two_app_workload())
        rebuilt_allocator = JointAllocator(options=options())
        for limit in self.SWEEP:
            limits = {"video": {"bab": int(limit)}}
            warm = session.allocate(capacity_limits=limits)
            rebuilt = rebuilt_allocator.allocate_workload(
                two_app_workload(), capacity_limits=limits
            )
            for app_name in ("video", "audio"):
                warm_app = warm.application(app_name)
                rebuilt_app = rebuilt.application(app_name)
                assert warm_app.budgets == rebuilt_app.budgets
                assert warm_app.buffer_capacities == rebuilt_app.buffer_capacities
                for task_name, budget in rebuilt_app.relaxed_budgets.items():
                    assert warm_app.relaxed_budgets[task_name] == pytest.approx(
                        budget, abs=1e-6
                    )
        assert session.stats.compiles == 1
        assert session.stats.solves == len(self.SWEEP)
        assert session.stats.warm_started >= len(self.SWEEP) - 1

    def test_pinned_point_falls_back_to_rebuild(self):
        # A budget limit equal to the throughput-implied lower bound
        # (̺·χ/µ = 40/10 = 4) pins the variable onto its lower bound: the
        # structural case the compiled parametric program cannot express,
        # so the session rebuilds that point.
        allocator = JointAllocator(options=options())
        session = allocator.workload_session(two_app_workload())
        mapped = session.allocate(budget_limits={"video": {"wa": 4.0}})
        assert session.stats.rebuilds == 1
        assert mapped.application("video").relaxed_budgets["wa"] == pytest.approx(
            4.0, abs=1e-6
        )
        assert mapped.solver_info["solve_stats"].get("rebuild") is True

    def test_parametric_formulation_round_trips_limits(self):
        parametric = ParametricWorkloadFormulation(two_app_workload())
        pinned = parametric.apply_limits(capacity_limits={"video": {"bab": 5}})
        assert pinned == []
        with pytest.raises(FormulationError, match="ghost"):
            parametric.apply_limits(capacity_limits={"ghost": {"bab": 5}})


class TestApplicationCapacitySweep:
    def test_sweep_constrains_only_the_named_application(self):
        explorer = TradeoffExplorer(allocator_options=options())
        curve = explorer.sweep_application_capacity(
            two_app_workload(), "video", range(2, 8)
        )
        feasible = curve.feasible_points()
        assert feasible, "expected feasible points in the sweep"
        for point in feasible:
            assert point.capacities["video/bab"] <= point.capacity_limit
        # The video budget falls monotonically as its buffering grows.
        video_budgets = [
            sum(v for k, v in point.relaxed_budgets.items() if k.startswith("video/"))
            for point in feasible
        ]
        assert all(
            later <= earlier + 1e-6
            for earlier, later in zip(video_budgets, video_budgets[1:])
        )
        assert curve.solver_stats["compiles"] >= 1

    def test_unknown_application_is_rejected(self):
        explorer = TradeoffExplorer(allocator_options=options())
        from repro.exceptions import ModelError

        with pytest.raises(ModelError, match="ghost"):
            explorer.sweep_application_capacity(two_app_workload(), "ghost", [2, 3])

    def test_unknown_buffer_is_rejected(self):
        # A misspelled buffer name must not silently sweep the unconstrained
        # program.
        explorer = TradeoffExplorer(allocator_options=options())
        from repro.exceptions import ModelError

        with pytest.raises(ModelError, match="b_typo"):
            explorer.sweep_application_capacity(
                two_app_workload(), "video", [2, 3], buffers=["b_typo"]
            )

    def test_infeasible_workload_yields_all_infeasible_points(self):
        workload = Workload(
            chain_configuration(stages=2, period=4.0).platform, name="crowded"
        )
        for index in range(3):
            workload.add_application(
                f"app{index}", chain_configuration(stages=2, period=4.0)
            )
        explorer = TradeoffExplorer(allocator_options=options())
        curve = explorer.sweep_application_capacity(workload, "app0", [2, 3, 4])
        assert not curve.feasible_points()
        assert len(curve.points) == 3

    def test_overloaded_workload_yields_all_infeasible_points(self):
        # The combined-load screen rejects this workload before any solve;
        # the sweep reports every point infeasible instead of raising.
        workload = Workload(
            chain_configuration(stages=2, period=3.0).platform, name="overloaded"
        )
        for index in range(3):
            workload.add_application(
                f"app{index}", chain_configuration(stages=2, period=3.0)
            )
        explorer = TradeoffExplorer(allocator_options=options())
        curve = explorer.sweep_application_capacity(workload, "app0", [2, 3])
        assert not curve.feasible_points()
        assert len(curve.points) == 2


class TestBatchWorkloads:
    def test_campaign_workload_entry_round_trips_and_solves(self, tmp_path):
        from repro.batch import CampaignSpec, run_campaign
        from repro.taskgraph.workload import workload_to_dict

        spec = CampaignSpec.from_dict(
            {
                "name": "wl-smoke",
                "entries": [
                    {"workload": workload_to_dict(two_app_workload())},
                    {
                        "workload": workload_to_dict(two_app_workload()),
                        "capacity_sweep": [4, 6],
                    },
                ],
            }
        )
        # to_dict/from_dict round trip keeps the workload entries.
        restored = CampaignSpec.from_dict(spec.to_dict())
        assert [e.to_dict() for e in restored.entries] == [
            e.to_dict() for e in spec.entries
        ]
        items = spec.expand()
        # Entry 0 has distinct inline workload name 'duo'; entry 1 sweeps it.
        assert [item.label for item in items] == [
            "0:duo",
            "1:duo@cap4",
            "1:duo@cap6",
        ]
        results, summary = run_campaign(spec, cache_dir=tmp_path / "cache")
        assert summary.total == 3
        assert all(result.feasible for result in results)
        # Flattened per-application keys.
        assert "video/wa" in results[0].budgets
        assert "audio/bab" in results[0].buffer_capacities
        # The swept items respect their bound.
        assert results[1].buffer_capacities["video/bab"] <= 4

        # A warm (cached) re-run reproduces the cold run bit-for-bit.
        warm_results, _ = run_campaign(spec, cache_dir=tmp_path / "cache")
        assert all(result.from_cache for result in warm_results)
        assert [r.deterministic_dict() for r in warm_results] == [
            r.deterministic_dict() for r in results
        ]

    def test_workload_path_entries_resolve_against_campaign_dir(self, tmp_path):
        from repro.batch import load_campaign
        from repro.taskgraph.workload import save_workload
        import json

        save_workload(two_app_workload(), tmp_path / "duo.json")
        campaign_path = tmp_path / "campaign.json"
        campaign_path.write_text(
            json.dumps(
                {"name": "by-path", "entries": [{"workload_path": "duo.json"}]}
            )
        )
        items = load_campaign(campaign_path).expand()
        assert len(items) == 1
        assert items[0].workload is not None
        assert items[0].workload.application_names == ["video", "audio"]

    def test_overloaded_workload_item_is_infeasible_not_error(self):
        # The combined-load screen is a definite verdict: the item reports
        # 'infeasible' (like solver-proven infeasibility) instead of burning
        # time on backend fallback and ending as an 'error'.
        from repro.batch import CampaignSpec, run_campaign
        from repro.taskgraph.workload import workload_to_dict

        workload = Workload(
            chain_configuration(stages=2, period=3.0).platform, name="overloaded"
        )
        for index in range(3):
            workload.add_application(
                f"app{index}", chain_configuration(stages=2, period=3.0)
            )
        spec = CampaignSpec.from_dict(
            {
                "name": "overload",
                "entries": [{"workload": workload_to_dict(workload)}],
            }
        )
        results, summary = run_campaign(spec)
        assert results[0].status == "infeasible"
        assert "overloaded" in results[0].error
        assert summary.infeasible == 1 and summary.errors == 0

    def test_entry_with_two_sources_is_rejected(self):
        from repro.batch import CampaignEntry
        from repro.exceptions import ModelError
        from repro.taskgraph.workload import workload_to_dict

        with pytest.raises(ModelError, match="exactly one of"):
            CampaignEntry.from_dict(
                {
                    "generator": "chain",
                    "workload": workload_to_dict(two_app_workload()),
                }
            )
