"""Figure 3: topology dependence of the trade-off on the three-task chain.

Both buffer capacities are bounded by the swept value and the sum of budgets
is minimised.  The middle task ``w_b`` interacts with two buffers, so the
optimiser reduces the budgets of the outer tasks ``w_a`` / ``w_c`` first;
``w_b`` keeps the larger budget at every point of the sweep.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure3 import run_figure3


@pytest.mark.benchmark(group="figure3")
def test_figure3_topology_dependence(benchmark, record_series):
    result = benchmark(run_figure3)

    assert result.capacity_limits == list(range(1, 11))
    record_series(benchmark, "buffer_capacity", result.capacity_limits)
    record_series(
        benchmark, "budget_wa_mcycles", [round(b, 3) for b in result.relaxed_budget_wa]
    )
    record_series(
        benchmark, "budget_wb_mcycles", [round(b, 3) for b in result.relaxed_budget_wb]
    )
    record_series(
        benchmark, "budget_wc_mcycles", [round(b, 3) for b in result.relaxed_budget_wc]
    )

    for wa, wb, wc in zip(
        result.relaxed_budget_wa, result.relaxed_budget_wb, result.relaxed_budget_wc
    ):
        # Outer tasks are symmetric; the middle task keeps the larger budget.
        assert wa == pytest.approx(wc, rel=1e-2, abs=5e-2)
        assert wb >= wa - 1e-6
    # Budgets fall monotonically along the sweep and all reach the 4-Mcycle
    # floor once ten containers are allowed.
    for series in (result.relaxed_budget_wa, result.relaxed_budget_wb):
        assert all(b1 >= b2 - 1e-9 for b1, b2 in zip(series, series[1:]))
    assert result.budget_wa[-1] == pytest.approx(4.0)
    assert result.budget_wb[-1] == pytest.approx(4.0)
