"""The classical two-phase mapping flow the paper argues against.

Before this paper, budgets and buffer capacities were computed in two separate
phases (e.g. Moreira et al. EMSOFT'07, Stuijk et al. DAC'07):

* **budget-first**: pick the smallest budgets that could ever satisfy the
  throughput requirement (assuming unbounded buffers), then size the buffers
  for those budgets;
* **buffer-first**: pick the smallest buffers (one container, or just enough
  to hold the initial tokens), then compute budgets for those buffers.

Both orders ignore the budget/buffer trade-off, so they either over-allocate
one resource or report infeasibility even though a joint solution exists (a
*false negative*).  This module implements both orders so that the benchmarks
can quantify the benefit of the joint formulation.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.exceptions import InfeasibleProblemError, ReproError
from repro.baselines.buffer_sizing import minimal_buffer_capacities
from repro.baselines.budget_minimization import minimal_budgets_fixed_capacities
from repro.core.objective import ObjectiveWeights
from repro.core.rounding import round_budget
from repro.core.validation import verify_mapping
from repro.taskgraph.configuration import Configuration, MappedConfiguration


class TwoPhaseOrder(enum.Enum):
    """Which resource the two-phase flow fixes first."""

    BUDGET_FIRST = "budget_first"
    BUFFER_FIRST = "buffer_first"


@dataclass
class TwoPhaseResult:
    """Outcome of a two-phase mapping attempt."""

    order: TwoPhaseOrder
    feasible: bool
    mapped: Optional[MappedConfiguration] = None
    failure_reason: str = ""

    @property
    def total_budget(self) -> float:
        if not self.feasible or self.mapped is None:
            return math.inf
        return sum(self.mapped.budgets.values())

    @property
    def total_capacity(self) -> int:
        if not self.feasible or self.mapped is None:
            return 0
        return sum(self.mapped.buffer_capacities.values())


def minimum_throughput_budgets(configuration: Configuration) -> Dict[str, float]:
    """Smallest per-task budgets that any buffer sizing could ever work with.

    With unbounded buffers the only binding constraint involving a single task
    is its self-loop: ``̺(p)·χ(w)/β(w) ≤ µ(T)``, i.e. ``β(w) ≥ ̺(p)·χ(w)/µ(T)``.
    The result is rounded up to the allocation granularity.
    """
    budgets: Dict[str, float] = {}
    for graph in configuration.task_graphs:
        for task in graph.tasks:
            processor = configuration.platform.processor(task.processor)
            minimal = processor.replenishment_interval * task.wcet / graph.period
            if task.min_budget is not None:
                minimal = max(minimal, task.min_budget)
            budgets[task.name] = round_budget(minimal, configuration.granularity)
    return budgets


def minimum_buffer_capacities(configuration: Configuration) -> Dict[str, int]:
    """Smallest structurally valid capacity per buffer (ignoring throughput)."""
    return {
        buffer.name: buffer.smallest_feasible_capacity
        for _, buffer in configuration.all_buffers()
    }


def run_two_phase(
    configuration: Configuration,
    order: TwoPhaseOrder = TwoPhaseOrder.BUDGET_FIRST,
    weights: Optional[ObjectiveWeights] = None,
) -> TwoPhaseResult:
    """Run the two-phase flow in the requested order.

    The result's ``mapped`` configuration is verified with the same
    independent dataflow analyses as the joint allocator's output, so the two
    flows can be compared apples-to-apples.
    """
    configuration.validate()
    try:
        if order is TwoPhaseOrder.BUDGET_FIRST:
            mapped = _budget_first(configuration, weights)
        elif order is TwoPhaseOrder.BUFFER_FIRST:
            mapped = _buffer_first(configuration, weights)
        else:  # pragma: no cover - defensive
            raise ReproError(f"unknown two-phase order {order!r}")
    except InfeasibleProblemError as error:
        return TwoPhaseResult(order=order, feasible=False, failure_reason=str(error))

    report = verify_mapping(mapped, run_simulation=False)
    if not report.is_valid:
        return TwoPhaseResult(
            order=order, feasible=False, failure_reason=report.summary()
        )
    return TwoPhaseResult(order=order, feasible=True, mapped=mapped)


def _budget_first(
    configuration: Configuration, weights: Optional[ObjectiveWeights]
) -> MappedConfiguration:
    budgets = minimum_throughput_budgets(configuration)
    _check_processor_capacity(configuration, budgets)
    capacities = minimal_buffer_capacities(
        configuration, budgets, weights=weights or ObjectiveWeights()
    )
    return MappedConfiguration(
        configuration=configuration,
        budgets=budgets,
        buffer_capacities=capacities,
        relaxed_budgets=dict(budgets),
        relaxed_capacities={name: float(value) for name, value in capacities.items()},
        solver_info={"flow": "two-phase", "order": TwoPhaseOrder.BUDGET_FIRST.value},
    )


def _buffer_first(
    configuration: Configuration, weights: Optional[ObjectiveWeights]
) -> MappedConfiguration:
    capacities = minimum_buffer_capacities(configuration)
    mapped = minimal_budgets_fixed_capacities(
        configuration, capacities, weights=weights or ObjectiveWeights.prefer_budgets()
    )
    mapped.solver_info["flow"] = "two-phase"
    mapped.solver_info["order"] = TwoPhaseOrder.BUFFER_FIRST.value
    return mapped


def _check_processor_capacity(
    configuration: Configuration, budgets: Dict[str, float]
) -> None:
    for processor_name, processor in configuration.platform.processors.items():
        tasks = configuration.tasks_on_processor(processor_name)
        total = sum(budgets[task.name] for task in tasks) + processor.scheduling_overhead
        if total > processor.replenishment_interval + 1e-9:
            raise InfeasibleProblemError(
                f"two-phase (budget-first): minimal throughput budgets already "
                f"overload processor {processor_name!r}"
            )


def compare_with_joint(
    configuration: Configuration,
    joint: MappedConfiguration,
    weights: Optional[ObjectiveWeights] = None,
) -> Dict[str, object]:
    """Run both two-phase orders and summarise them against a joint mapping.

    Returns a dictionary with, per flow, feasibility, total budget and total
    capacity — the data behind the paper's argument that joint computation
    avoids false negatives and over-allocation.
    """
    rows: Dict[str, object] = {
        "joint": {
            "feasible": True,
            "total_budget": sum(joint.budgets.values()),
            "total_capacity": sum(joint.buffer_capacities.values()),
        }
    }
    for order in TwoPhaseOrder:
        result = run_two_phase(configuration, order=order, weights=weights)
        rows[order.value] = {
            "feasible": result.feasible,
            "total_budget": result.total_budget if result.feasible else None,
            "total_capacity": result.total_capacity if result.feasible else None,
            "failure_reason": result.failure_reason,
        }
    return rows
