"""Benchmark: warm-started workload sweeps vs rebuild-per-point.

The multi-application counterpart of ``test_bench_parametric_sweep``: a
12-point capacity sweep over *one application* of a two-application workload
(the other application keeps the shared platform loaded) is solved three
ways:

* **rebuild** — a fresh :class:`WorkloadSocpFormulation` built, compiled and
  cold-started per point;
* **compile-once / cold-start** — one :class:`WorkloadSession`, every point
  ignoring the previous optimum (isolates the compile-once gain);
* **warm-start** — the session default: one compilation, each point seeded
  from its neighbour.

Besides the timings, the benchmark asserts that the compile-once and
phase-I-skip behaviour of the single-configuration session API carries over
to the block-structured multi-application case: a single compilation per
sweep, phase I skipped on at least half the points, budgets equal to the
rebuild path within 1e-6, and strictly less Newton work than the rebuild
path.
"""

from __future__ import annotations

import pytest

from repro.core import AllocatorOptions, JointAllocator
from repro.taskgraph import Workload
from repro.taskgraph.generators import random_dag_configuration

SWEEP = tuple(range(4, 16))  # 12 points, clear of pinned lower bounds
SWEPT_APP = "front"

_reference_cache = {}


def _workload():
    front = random_dag_configuration(
        task_count=4, processor_count=4, seed=5, wcet_range=(0.3, 0.9)
    )
    back = random_dag_configuration(
        task_count=4, processor_count=4, seed=11, wcet_range=(0.3, 0.9)
    )
    workload = Workload(front.platform, name="bench-workload")
    workload.add_application(SWEPT_APP, front)
    workload.add_application("back", back)
    return workload


def _options():
    return AllocatorOptions(run_simulation=False, verify=False)


def _limits(workload, limit):
    application = workload.application(SWEPT_APP)
    return {SWEPT_APP: {name: int(limit) for name in application.buffer_names()}}


def _rebuild_sweep():
    """The pre-session path: one full build/compile/cold-solve per point."""
    workload = _workload()
    allocator = JointAllocator(options=_options())
    return [
        allocator.allocate_workload(workload, capacity_limits=_limits(workload, limit))
        for limit in SWEEP
    ]


def _session_sweep(warm_start):
    workload = _workload()
    session = JointAllocator(options=_options()).workload_session(workload)
    points = [
        session.allocate(
            capacity_limits=_limits(workload, limit), warm_start=warm_start
        )
        for limit in SWEEP
    ]
    return points, session.stats


def _reference_points():
    """The rebuild-per-point results, computed once per benchmark session."""
    if "points" not in _reference_cache:
        _reference_cache["points"] = _rebuild_sweep()
    return _reference_cache["points"]


def _newton_total(mapped_points):
    return sum(
        int(mapped.solver_info["solve_stats"].get("newton_iterations", 0))
        + int(mapped.solver_info["solve_stats"].get("phase1_newton_iterations", 0))
        for mapped in mapped_points
    )


def _assert_equivalent(points, reference):
    assert len(points) == len(reference)
    for mapped, ref in zip(points, reference):
        for app_name, ref_app in ref.applications.items():
            app = mapped.application(app_name)
            assert app.budgets == ref_app.budgets
            assert app.buffer_capacities == ref_app.buffer_capacities
            for task_name, budget in ref_app.relaxed_budgets.items():
                assert app.relaxed_budgets[task_name] == pytest.approx(
                    budget, abs=1e-6
                )


def test_bench_workload_sweep_rebuild_per_point(benchmark, record_series):
    points = benchmark(_rebuild_sweep)
    assert len(points) == len(SWEEP)
    record_series(benchmark, "newton_iterations_total", _newton_total(points))
    record_series(benchmark, "points", len(points))


def test_bench_workload_sweep_compile_once_cold(benchmark, record_series):
    points, stats = benchmark(lambda: _session_sweep(warm_start=False))
    _assert_equivalent(points, _reference_points())
    assert stats.compiles == 1
    record_series(benchmark, "newton_iterations_total", _newton_total(points))


def test_bench_workload_sweep_warm_start(benchmark, record_series):
    points, stats = benchmark(lambda: _session_sweep(warm_start=True))
    reference = _reference_points()
    _assert_equivalent(points, reference)

    # The session-API acceptance criteria, carried over to workloads.
    assert stats.compiles == 1, "the sweep must compile exactly once"
    assert stats.rebuilds == 0, "no point may fall back to a rebuild"
    assert stats.solves == len(SWEEP)
    assert stats.phase1_skipped >= len(SWEEP) // 2, (
        f"phase I skipped on only {stats.phase1_skipped}/{len(SWEEP)} points"
    )
    warm_newton = _newton_total(points)
    rebuild_newton = _newton_total(reference)
    assert warm_newton < rebuild_newton, (
        f"warm-started workload sweep spent {warm_newton} Newton iterations, "
        f"rebuild path {rebuild_newton}"
    )
    record_series(benchmark, "newton_iterations_total", warm_newton)
    record_series(benchmark, "rebuild_newton_iterations_total", rebuild_newton)
    record_series(benchmark, "phase1_skipped", stats.phase1_skipped)
