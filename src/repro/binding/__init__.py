"""Task-to-processor and buffer-to-memory binding (the paper's named future work)."""

from repro.binding.greedy import BindingResult, bind_and_allocate, bind_greedy

__all__ = ["BindingResult", "bind_and_allocate", "bind_greedy"]
