"""Figure 2(a): budget vs. buffer capacity for the producer-consumer graph.

Regenerates the trade-off curve of the paper's first experiment and asserts
its shape: the minimal budget falls monotonically from ≈ 36 Mcycles at one
container to the 4-Mcycle floor at ten containers, matching the closed-form
solution of the instance.
"""

from __future__ import annotations

import pytest

from repro.baselines.budget_minimization import producer_consumer_minimum_budget
from repro.experiments.figure2 import run_figure2


@pytest.mark.benchmark(group="figure2a")
def test_figure2a_budget_buffer_tradeoff(benchmark, record_series):
    result = benchmark(run_figure2)

    assert result.capacity_limits == list(range(1, 11))
    budgets = result.relaxed_budget_wa
    record_series(benchmark, "buffer_capacity", result.capacity_limits)
    record_series(benchmark, "budget_mcycles", [round(b, 3) for b in budgets])
    record_series(
        benchmark, "rounded_budget_mcycles", [round(b, 3) for b in result.budget_wa]
    )

    # Shape: monotone non-increasing, matching the closed form at every point.
    assert all(b1 >= b2 - 1e-9 for b1, b2 in zip(budgets, budgets[1:]))
    for capacity, budget in zip(result.capacity_limits, budgets):
        assert budget == pytest.approx(
            producer_consumer_minimum_budget(capacity), rel=2e-3
        )
    # Paper endpoints: ≈ 36 Mcycles at d = 1, the 4-Mcycle floor at d = 10.
    assert budgets[0] == pytest.approx(36.1, abs=0.2)
    assert budgets[-1] == pytest.approx(4.0, abs=0.05)
    # "A buffer capacity of 10 containers minimises the budgets."
    assert budgets[-2] > budgets[-1] + 0.25
