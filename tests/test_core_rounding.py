"""Tests of the conservative rounding rules."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import AllocationError
from repro.core.rounding import (
    round_budget,
    round_budgets,
    round_capacities,
    round_capacity,
    rounding_overhead,
)


class TestRoundBudget:
    def test_rounds_up_to_granule(self):
        assert round_budget(17.2, 1.0) == pytest.approx(18.0)
        assert round_budget(17.2, 2.0) == pytest.approx(18.0)
        assert round_budget(17.2, 5.0) == pytest.approx(20.0)

    def test_exact_multiples_are_kept(self):
        assert round_budget(16.0, 4.0) == pytest.approx(16.0)

    def test_snapping_absorbs_solver_noise(self):
        assert round_budget(16.0000000001, 4.0) == pytest.approx(16.0)

    def test_minimum_one_granule(self):
        assert round_budget(0.001, 2.0) == pytest.approx(2.0)

    def test_invalid_inputs(self):
        with pytest.raises(AllocationError):
            round_budget(-1.0, 1.0)
        with pytest.raises(AllocationError):
            round_budget(1.0, 0.0)


class TestRelativeSnapping:
    """Boundary tests of the granule-count-relative snap tolerance.

    A budget of ~1e6 granules (large budget, fine granularity) carries double
    round-off far above any absolute epsilon; the snap window must scale with
    the granule count so such values do not get charged a whole extra
    granule, yet stay below half a granule so genuine fractions round up.
    """

    def test_large_granule_count_absorbs_double_round_off(self):
        # ~1e6 granules with a 3e-12 relative perturbation: an absolute 1e-6
        # window mis-snaps this to 1e6 + 1 granules.
        assert round_budget(1.0 + 3e-12, 1e-6) == pytest.approx(1.0, abs=1e-12)

    def test_exact_large_multiple_is_kept(self):
        # Exactly 1e6 granules must neither gain nor lose a granule (an
        # uncapped relative window of 1e-6 * 1e6 = 1 granule would snap DOWN).
        assert round_budget(1.0, 1e-6) == pytest.approx(1.0, abs=1e-12)

    def test_genuine_half_granule_still_rounds_up(self):
        assert round_budget(1.0000005, 1e-6) == pytest.approx(1.000001, abs=1e-12)

    def test_genuine_fraction_at_large_count_still_rounds_up(self):
        # The window absorbs round-off, not real fractional requirements: a
        # third of a granule at half a million granules must be charged (a
        # window proportional to 1e-6 of the count would swallow it and ship
        # a budget *below* the relaxed minimum).
        assert round_budget(500000.3, 1.0) == pytest.approx(500001.0, abs=1e-9)
        assert round_budget(500000.3, 1.0) >= 500000.3

    def test_small_scale_behaviour_unchanged(self):
        assert round_budget(17.2, 1.0) == pytest.approx(18.0)
        assert round_budget(16.0000000001, 4.0) == pytest.approx(16.0)

    def test_never_undershoots_by_more_than_relative_tolerance(self):
        for relaxed, granularity in ((1.0, 1e-6), (123456.789, 0.001), (3.0000000004, 1.0)):
            rounded = round_budget(relaxed, granularity)
            assert rounded >= relaxed * (1.0 - 1e-6)


class TestRoundCapacity:
    def test_rounds_up(self):
        assert round_capacity(3.2) == 4
        assert round_capacity(3.0) == 3

    def test_minimum_one_container(self):
        assert round_capacity(0.2) == 1

    def test_snapping(self):
        assert round_capacity(5.0000000001) == 5

    def test_invalid_input(self):
        with pytest.raises(AllocationError):
            round_capacity(0.0)


class TestBatchHelpers:
    def test_round_budgets_and_overhead(self):
        relaxed = {"a": 3.3, "b": 8.0}
        rounded = round_budgets(relaxed, granularity=2.0)
        assert rounded == {"a": 4.0, "b": 8.0}
        overhead = rounding_overhead(relaxed, rounded)
        assert overhead["a"] == pytest.approx(0.7)
        assert overhead["b"] == pytest.approx(0.0)

    def test_round_capacities(self):
        assert round_capacities({"x": 1.1, "y": 2.0}) == {"x": 2, "y": 2}


@given(
    value=st.floats(min_value=1e-3, max_value=1e4, allow_nan=False),
    granularity=st.floats(min_value=1e-2, max_value=100.0, allow_nan=False),
)
def test_budget_rounding_properties(value, granularity):
    """Property: rounding never decreases the budget, adds at most one granule,
    and always lands on a positive multiple of the granularity."""
    rounded = round_budget(value, granularity)
    assert rounded >= value - 1e-6 * max(1.0, value)
    assert rounded <= value + granularity + 1e-6 * max(1.0, value)
    granules = rounded / granularity
    assert abs(granules - round(granules)) < 1e-6
    assert rounded > 0.0


@given(value=st.floats(min_value=1e-3, max_value=1e6, allow_nan=False))
def test_capacity_rounding_properties(value):
    """Property: capacity rounding is the conservative integer ceiling."""
    rounded = round_capacity(value)
    assert isinstance(rounded, int)
    assert rounded >= 1
    assert rounded >= value - 1e-5 * max(1.0, value)
    assert rounded < value + 1.0 + 1e-6
