"""Crash safety: durable journal, snapshot/restore, fault injection, retry.

Lazy (PEP 562) exports: ``repro.reliability.faults`` and ``.retry`` are
dependency-free leaves imported from hot paths (solver, cache, executor),
so importing this package must not drag in the journal/snapshot layer —
which imports ``repro.core.admission`` and everything under it.
"""

from __future__ import annotations

from typing import List

_EXPORTS = {
    # faults
    "FaultPlan": "repro.reliability.faults",
    "FaultSpec": "repro.reliability.faults",
    "active_plan": "repro.reliability.faults",
    "armed": "repro.reliability.faults",
    "install": "repro.reliability.faults",
    "maybe_fail": "repro.reliability.faults",
    "uninstall": "repro.reliability.faults",
    # retry
    "CircuitBreaker": "repro.reliability.retry",
    "RetryPolicy": "repro.reliability.retry",
    "graceful_interrupts": "repro.reliability.retry",
    # journal
    "JOURNAL_SCHEMA_VERSION": "repro.reliability.journal",
    "AdmissionJournal": "repro.reliability.journal",
    "JournalContents": "repro.reliability.journal",
    "JournalEntry": "repro.reliability.journal",
    "platform_fingerprint": "repro.reliability.journal",
    "read_journal": "repro.reliability.journal",
    # snapshot / restore
    "SNAPSHOT_FORMAT_VERSION": "repro.reliability.snapshot",
    "SessionSnapshot": "repro.reliability.snapshot",
    "default_snapshot_path": "repro.reliability.snapshot",
    "load_snapshot": "repro.reliability.snapshot",
    "replay_trace_durably": "repro.reliability.snapshot",
    "restore_controller": "repro.reliability.snapshot",
    "save_snapshot": "repro.reliability.snapshot",
    "snapshot_controller": "repro.reliability.snapshot",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(__all__))
