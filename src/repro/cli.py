"""Command-line interface.

The CLI makes the library usable from a shell or a build system without
writing Python:

* ``repro-map allocate <config.json>`` — run the joint budget/buffer
  computation on a configuration stored as JSON and print (or write) the
  mapped configuration.
* ``repro-map sweep <config.json> --capacities 1:10`` — reproduce a
  budget-vs-buffer trade-off sweep for an arbitrary configuration.
* ``repro-map experiments`` — regenerate the paper's figures.
* ``repro-map validate <config.json>`` — structural validation plus the
  closed-form feasibility screen, without invoking the solver.

All sub-commands exit with status 0 on success, 1 on infeasibility or
validation failure, and 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis import render_table, screen_configuration
from repro.core import AllocatorOptions, JointAllocator, ObjectiveWeights, TradeoffExplorer
from repro.exceptions import InfeasibleProblemError, ReproError
from repro.taskgraph import serialization

#: Exit codes used by every sub-command.
EXIT_OK = 0
EXIT_INFEASIBLE = 1
EXIT_USAGE = 2


def _load_configuration(path: str):
    return serialization.load_configuration(path)


def _weights(name: str) -> ObjectiveWeights:
    presets = {
        "balanced": ObjectiveWeights.balanced,
        "prefer-budgets": ObjectiveWeights.prefer_budgets,
        "prefer-buffers": ObjectiveWeights.prefer_buffers,
    }
    return presets[name]()


def _parse_capacity_range(text: str) -> List[int]:
    """Parse ``"1:10"`` or ``"2,4,8"`` into a list of capacities."""
    if ":" in text:
        low, high = text.split(":", 1)
        return list(range(int(low), int(high) + 1))
    return [int(part) for part in text.split(",") if part]


# -- sub-commands ----------------------------------------------------------------
def _cmd_allocate(arguments: argparse.Namespace) -> int:
    configuration = _load_configuration(arguments.configuration)
    allocator = JointAllocator(
        weights=_weights(arguments.weights),
        options=AllocatorOptions(backend=arguments.backend),
    )
    try:
        mapped = allocator.allocate(configuration)
    except InfeasibleProblemError as error:
        print(f"infeasible: {error}", file=sys.stderr)
        return EXIT_INFEASIBLE

    payload = serialization.mapped_configuration_to_dict(mapped)
    if arguments.output:
        Path(arguments.output).write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"mapped configuration written to {arguments.output}")
    else:
        print(render_table(
            [{"task": name, "budget": budget} for name, budget in sorted(mapped.budgets.items())]
        ))
        print()
        print(render_table(
            [
                {"buffer": name, "capacity": capacity}
                for name, capacity in sorted(mapped.buffer_capacities.items())
            ]
        ))
    return EXIT_OK


def _cmd_validate(arguments: argparse.Namespace) -> int:
    try:
        configuration = _load_configuration(arguments.configuration)
        configuration.validate()
    except ReproError as error:
        print(f"invalid configuration: {error}", file=sys.stderr)
        return EXIT_INFEASIBLE
    screen = screen_configuration(configuration)
    rows = [
        {"resource": name, "minimum load": round(load, 4)}
        for name, load in {**screen.processor_load, **screen.memory_load}.items()
    ]
    print(render_table(rows))
    if not screen.may_be_feasible:
        for violation in screen.violations:
            print(f"violation: {violation}", file=sys.stderr)
        return EXIT_INFEASIBLE
    print("configuration is structurally valid and passes the feasibility screen")
    return EXIT_OK


def _cmd_sweep(arguments: argparse.Namespace) -> int:
    configuration = _load_configuration(arguments.configuration)
    capacities = _parse_capacity_range(arguments.capacities)
    if not capacities:
        print("empty capacity range", file=sys.stderr)
        return EXIT_USAGE
    explorer = TradeoffExplorer(
        weights=_weights(arguments.weights),
        allocator_options=AllocatorOptions(backend=arguments.backend, run_simulation=False),
    )
    curve = explorer.sweep_capacity_limit(configuration, capacities)
    print(render_table(curve.as_table()))
    return EXIT_OK if curve.feasible_points() else EXIT_INFEASIBLE


def _cmd_experiments(arguments: argparse.Namespace) -> int:
    from repro.experiments.runner import run_all

    run_all(backend=arguments.backend)
    return EXIT_OK


# -- entry point -------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-map",
        description="Simultaneous budget and buffer-size computation for "
        "throughput-constrained task graphs (Wiggers et al., DATE 2010).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--backend",
            default="auto",
            choices=["auto", "barrier", "scipy"],
            help="cone-solver backend (default: auto)",
        )
        sub.add_argument(
            "--weights",
            default="prefer-budgets",
            choices=["balanced", "prefer-budgets", "prefer-buffers"],
            help="objective weighting preset (default: prefer-budgets)",
        )

    allocate_parser = subparsers.add_parser(
        "allocate", help="compute budgets and buffer capacities for a configuration"
    )
    allocate_parser.add_argument("configuration", help="path to a configuration JSON file")
    allocate_parser.add_argument("--output", help="write the mapped configuration JSON here")
    add_common(allocate_parser)
    allocate_parser.set_defaults(handler=_cmd_allocate)

    validate_parser = subparsers.add_parser(
        "validate", help="validate a configuration and run the feasibility screen"
    )
    validate_parser.add_argument("configuration", help="path to a configuration JSON file")
    validate_parser.set_defaults(handler=_cmd_validate)

    sweep_parser = subparsers.add_parser(
        "sweep", help="sweep the maximum buffer capacity and report the budget trade-off"
    )
    sweep_parser.add_argument("configuration", help="path to a configuration JSON file")
    sweep_parser.add_argument(
        "--capacities",
        default="1:10",
        help="capacity bounds to sweep, as 'low:high' or a comma-separated list (default 1:10)",
    )
    add_common(sweep_parser)
    sweep_parser.set_defaults(handler=_cmd_sweep)

    experiments_parser = subparsers.add_parser(
        "experiments", help="regenerate the figures of the paper's evaluation"
    )
    add_common(experiments_parser)
    experiments_parser.set_defaults(handler=_cmd_experiments)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        arguments = parser.parse_args(argv)
    except SystemExit as exit_error:
        return EXIT_USAGE if exit_error.code not in (0, None) else EXIT_OK
    try:
        return int(arguments.handler(arguments))
    except FileNotFoundError as error:
        print(f"file not found: {error.filename}", file=sys.stderr)
        return EXIT_USAGE
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_INFEASIBLE


if __name__ == "__main__":  # pragma: no cover - exercised through tests via main()
    raise SystemExit(main())
