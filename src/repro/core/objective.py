"""Objective weighting helpers.

The objective of Algorithm 1 is a weighted sum of budgets and buffer
capacities: ``Σ a(w)·β'(w) + Σ b(e)·ζ(e)·δ'(e)``.  The weights express which
resource is scarcer on the platform at hand.  Tasks and buffers carry default
weights (``budget_weight`` and ``capacity_weight``); an
:class:`ObjectiveWeights` object can scale or override them per solve without
rebuilding the configuration — this is how the trade-off sweeps of the paper's
experiments "prefer minimisation of the budgets over minimisation of the
buffer sizes".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.taskgraph.buffer import Buffer
from repro.taskgraph.task import Task


@dataclass
class ObjectiveWeights:
    """Scaling and overrides applied to the per-task / per-buffer weights.

    The effective objective coefficient of a task is
    ``budget_scale · override.get(task, task.budget_weight)`` and analogously
    for buffers (times the container size ``ζ``).
    """

    budget_scale: float = 1.0
    capacity_scale: float = 1.0
    budget_overrides: Dict[str, float] = field(default_factory=dict)
    capacity_overrides: Dict[str, float] = field(default_factory=dict)

    def budget_coefficient(self, task: Task) -> float:
        base = self.budget_overrides.get(task.name, task.budget_weight)
        return self.budget_scale * base

    def capacity_coefficient(self, buffer: Buffer) -> float:
        base = self.capacity_overrides.get(buffer.name, buffer.capacity_weight)
        return self.capacity_scale * base * buffer.container_size

    # -- common presets -----------------------------------------------------
    @classmethod
    def balanced(cls) -> "ObjectiveWeights":
        """Equal emphasis on budgets and buffer capacities."""
        return cls()

    @classmethod
    def prefer_budgets(cls, ratio: float = 1e3) -> "ObjectiveWeights":
        """Budgets are ``ratio`` times more expensive than buffer capacities.

        This is the setting of the paper's experiments: processor cycles are
        the scarce resource, so budgets are minimised first and buffer
        capacities act as a tie-breaker.
        """
        if ratio <= 0.0:
            raise ValueError("ratio must be positive")
        return cls(budget_scale=1.0, capacity_scale=1.0 / ratio)

    @classmethod
    def prefer_buffers(cls, ratio: float = 1e3) -> "ObjectiveWeights":
        """Buffer capacities are ``ratio`` times more expensive than budgets."""
        if ratio <= 0.0:
            raise ValueError("ratio must be positive")
        return cls(budget_scale=1.0 / ratio, capacity_scale=1.0)

    @classmethod
    def budgets_only(cls) -> "ObjectiveWeights":
        """Ignore buffer capacities in the objective entirely."""
        return cls(budget_scale=1.0, capacity_scale=0.0)

    @classmethod
    def buffers_only(cls) -> "ObjectiveWeights":
        """Ignore budgets in the objective entirely."""
        return cls(budget_scale=0.0, capacity_scale=1.0)
