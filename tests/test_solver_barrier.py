"""Unit tests for the log-barrier interior-point solver.

The barrier solver is the default backend for the cone programs of
Algorithm 1, so these tests check it against problems with known analytic
optima and against the independent scipy backend.
"""

from __future__ import annotations

import math

import pytest

from repro.solver import BarrierOptions, BarrierSolver, ConeProgram, SolverStatus
from repro.solver.barrier import solve_with_barrier


def _solve(program, initial_point=None, **options):
    compiled = program.compile()
    x0 = compiled.vector_from_mapping(initial_point) if initial_point else None
    return solve_with_barrier(compiled, initial_point=x0, options=BarrierOptions(**options))


class TestLinearProgramsViaBarrier:
    def test_bounded_minimisation(self):
        program = ConeProgram()
        x = program.add_variable("x", lower=0.0, upper=10.0)
        y = program.add_variable("y", lower=0.0, upper=10.0)
        program.add_less_equal(x + y, 6.0)
        program.minimize(-x - 2.0 * y)
        solution = _solve(program)
        assert solution.is_optimal
        assert solution.value(y) == pytest.approx(6.0, abs=1e-4)
        assert solution.objective == pytest.approx(-12.0, abs=1e-3)

    def test_agrees_with_lp_backend(self):
        program = ConeProgram()
        x = program.add_variable("x", lower=0.0, upper=4.0)
        y = program.add_variable("y", lower=0.0, upper=4.0)
        program.add_less_equal(2.0 * x + y, 5.0)
        program.add_less_equal(x + 3.0 * y, 7.0)
        program.minimize(-3.0 * x - 4.0 * y)
        barrier = program.solve(backend="barrier")
        linprog = program.solve(backend="linprog")
        assert barrier.is_optimal and linprog.is_optimal
        assert barrier.objective == pytest.approx(linprog.objective, abs=1e-4)

    def test_infeasible_linear_program(self):
        program = ConeProgram()
        x = program.add_variable("x", lower=0.0, upper=1.0)
        program.add_greater_equal(x, 3.0)
        program.minimize(x)
        solution = _solve(program)
        assert solution.status is SolverStatus.INFEASIBLE

    def test_equality_constraints_are_respected(self):
        program = ConeProgram()
        x = program.add_variable("x", lower=0.0, upper=10.0)
        y = program.add_variable("y", lower=0.0, upper=10.0)
        program.add_equality(x + y, 4.0)
        program.minimize(3.0 * x + y)
        solution = _solve(program)
        assert solution.is_optimal
        assert solution.value(x) == pytest.approx(0.0, abs=1e-4)
        assert solution.value(y) == pytest.approx(4.0, abs=1e-4)

    def test_inconsistent_equalities(self):
        program = ConeProgram()
        x = program.add_variable("x")
        program.add_equality(x, 1.0)
        program.add_equality(x, 2.0)
        program.minimize(x)
        solution = _solve(program)
        assert solution.status is SolverStatus.INFEASIBLE

    def test_unconstrained_nonzero_objective_is_unbounded(self):
        program = ConeProgram()
        x = program.add_variable("x")
        program.minimize(x)
        solution = _solve(program)
        assert solution.status is SolverStatus.UNBOUNDED


class TestHyperbolicProgramsViaBarrier:
    def test_known_geometric_optimum(self):
        """min x + y  s.t.  x·y >= 4  has the optimum x = y = 2."""
        program = ConeProgram()
        x = program.add_variable("x", lower=1e-3, upper=100.0)
        y = program.add_variable("y", lower=1e-3, upper=100.0)
        program.add_hyperbolic(x, y, bound=4.0)
        program.minimize(x + y)
        solution = _solve(program)
        assert solution.is_optimal
        assert solution.value(x) == pytest.approx(2.0, rel=1e-3)
        assert solution.value(y) == pytest.approx(2.0, rel=1e-3)

    def test_weighted_hyperbolic_optimum(self):
        """min a·x + b·y s.t. x·y >= w  ->  x* = sqrt(w·b/a), y* = sqrt(w·a/b)."""
        a, b, w = 2.0, 8.0, 9.0
        program = ConeProgram()
        x = program.add_variable("x", lower=1e-4, upper=1e3)
        y = program.add_variable("y", lower=1e-4, upper=1e3)
        program.add_hyperbolic(x, y, bound=w)
        program.minimize(a * x + b * y)
        solution = _solve(program)
        assert solution.is_optimal
        assert solution.value(x) == pytest.approx(math.sqrt(w * b / a), rel=1e-3)
        assert solution.value(y) == pytest.approx(math.sqrt(w * a / b), rel=1e-3)
        assert solution.objective == pytest.approx(2.0 * math.sqrt(a * b * w), rel=1e-3)

    def test_affine_arguments(self):
        """The hyperbolic constraint accepts affine (not just variable) sides."""
        program = ConeProgram()
        x = program.add_variable("x", lower=0.0, upper=50.0)
        program.add_hyperbolic(x + 1.0, x + 1.0, bound=16.0)
        program.minimize(x)
        solution = _solve(program)
        assert solution.is_optimal
        assert solution.value(x) == pytest.approx(3.0, rel=1e-3)

    def test_infeasible_hyperbolic(self):
        program = ConeProgram()
        x = program.add_variable("x", lower=0.0, upper=1.0)
        y = program.add_variable("y", lower=0.0, upper=1.0)
        program.add_hyperbolic(x, y, bound=4.0)
        program.minimize(x + y)
        solution = _solve(program)
        assert solution.status is SolverStatus.INFEASIBLE

    def test_agrees_with_scipy_backend(self):
        program = ConeProgram()
        x = program.add_variable("x", lower=0.5, upper=40.0)
        y = program.add_variable("y", lower=0.01, upper=1.0)
        program.add_hyperbolic(x, y, bound=1.0)
        program.add_less_equal(x + 10.0 * y, 20.0)
        program.minimize(x + 3.0 * y)
        barrier = program.solve(backend="barrier")
        scipy_solution = program.solve(backend="scipy")
        assert barrier.is_optimal and scipy_solution.is_optimal
        assert barrier.objective == pytest.approx(scipy_solution.objective, rel=1e-3)


class TestSecondOrderConeViaBarrier:
    def test_projection_onto_cone(self):
        """min t s.t. ||(x-3, y-4)|| <= t at fixed x=0,y=0 gives t = 5."""
        program = ConeProgram()
        t = program.add_variable("t", lower=0.0, upper=100.0)
        x = program.add_variable("x", lower=0.0, upper=0.0)
        y = program.add_variable("y", lower=0.0, upper=0.0)
        program.add_second_order_cone([x - 3.0, y - 4.0], t)
        program.minimize(t)
        solution = _solve(program)
        assert solution.is_optimal
        assert solution.value(t) == pytest.approx(5.0, rel=1e-4)

    def test_cone_constrained_lp(self):
        """Maximise x + y inside the unit disc: optimum sqrt(2) at x = y."""
        program = ConeProgram()
        x = program.add_variable("x", lower=-2.0, upper=2.0)
        y = program.add_variable("y", lower=-2.0, upper=2.0)
        program.add_second_order_cone([x, y], 1.0)
        program.maximize(x + y)
        solution = program.solve(backend="barrier")
        assert solution.is_optimal
        assert solution.objective == pytest.approx(math.sqrt(2.0), rel=1e-3)


class TestWarmStartAndOptions:
    def test_warm_start_accepted(self):
        program = ConeProgram()
        x = program.add_variable("x", lower=1.0, upper=9.0)
        y = program.add_variable("y", lower=1.0, upper=9.0)
        program.add_hyperbolic(x, y, bound=4.0)
        program.minimize(x + y)
        solution = _solve(program, initial_point={x: 3.0, y: 3.0})
        assert solution.is_optimal
        assert solution.objective == pytest.approx(4.0, rel=1e-3)

    def test_option_overrides_are_applied(self):
        options = BarrierOptions(max_outer_iterations=2, tolerance=1e-2)
        assert options.max_outer_iterations == 2
        solver = BarrierSolver(options)
        assert solver.options.tolerance == pytest.approx(1e-2)

    def test_empty_problem(self):
        program = ConeProgram()
        compiled = program.compile()
        solution = solve_with_barrier(compiled)
        assert solution.is_optimal
        assert solution.values == {}
