"""Drivers that regenerate the paper's figures (Section V)."""

from repro.experiments.figure2 import Figure2Result, figure2_from_curve, run_figure2
from repro.experiments.figure3 import Figure3Result, figure3_from_curve, run_figure3
from repro.experiments.runner import batch_capacity_sweep, run_all

__all__ = [
    "Figure2Result",
    "Figure3Result",
    "batch_capacity_sweep",
    "figure2_from_curve",
    "figure3_from_curve",
    "run_all",
    "run_figure2",
    "run_figure3",
]
