"""Tests for the multi-rate SDF extension (repetition vectors, SRDF expansion)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphStructureError, ModelError
from repro.dataflow.mcr import maximum_cycle_ratio
from repro.dataflow.sdf import SDFActor, SDFChannel, SDFGraph
from repro.dataflow.simulation import simulate


def _downsampler() -> SDFGraph:
    """A 2:1 down-sampler: src produces 2 tokens, snk consumes 1 per firing."""
    graph = SDFGraph("downsample")
    graph.add_actor(SDFActor("src", 1.0))
    graph.add_actor(SDFActor("snk", 1.0))
    graph.add_channel(SDFChannel("c", "src", "snk", production_rate=2, consumption_rate=1))
    return graph


class TestRepetitionVector:
    def test_single_rate_graph(self):
        graph = SDFGraph("sr")
        graph.add_actor(SDFActor("a", 1.0))
        graph.add_actor(SDFActor("b", 1.0))
        graph.add_channel(SDFChannel("ab", "a", "b", 1, 1))
        assert graph.repetition_vector() == {"a": 1, "b": 1}

    def test_downsampler(self):
        assert _downsampler().repetition_vector() == {"src": 1, "snk": 2}

    def test_three_actor_rates(self):
        graph = SDFGraph("abc")
        graph.add_actor(SDFActor("a", 1.0))
        graph.add_actor(SDFActor("b", 1.0))
        graph.add_actor(SDFActor("c", 1.0))
        graph.add_channel(SDFChannel("ab", "a", "b", 3, 2))
        graph.add_channel(SDFChannel("bc", "b", "c", 1, 2))
        repetitions = graph.repetition_vector()
        assert repetitions == {"a": 4, "b": 6, "c": 3}
        # Balance equations hold.
        assert repetitions["a"] * 3 == repetitions["b"] * 2
        assert repetitions["b"] * 1 == repetitions["c"] * 2

    def test_inconsistent_graph_detected(self):
        graph = SDFGraph("bad")
        graph.add_actor(SDFActor("a", 1.0))
        graph.add_actor(SDFActor("b", 1.0))
        graph.add_channel(SDFChannel("ab", "a", "b", 2, 1))
        graph.add_channel(SDFChannel("ba", "b", "a", 1, 1, tokens=2))
        assert not graph.is_consistent()
        with pytest.raises(GraphStructureError):
            graph.repetition_vector()

    def test_disconnected_components(self):
        graph = SDFGraph("two")
        graph.add_actor(SDFActor("a", 1.0))
        graph.add_actor(SDFActor("b", 1.0))
        assert graph.repetition_vector() == {"a": 1, "b": 1}

    def test_empty_graph(self):
        assert SDFGraph("empty").repetition_vector() == {}

    def test_validation_of_inputs(self):
        with pytest.raises(ModelError):
            SDFActor("", 1.0)
        with pytest.raises(ModelError):
            SDFChannel("c", "a", "b", 0, 1)
        graph = SDFGraph("g")
        graph.add_actor(SDFActor("a", 1.0))
        with pytest.raises(GraphStructureError):
            graph.add_channel(SDFChannel("c", "a", "zzz", 1, 1))


class TestSrdfExpansion:
    def test_actor_copies_match_repetition_vector(self):
        srdf = _downsampler().to_srdf()
        names = set(srdf.actor_names)
        assert names == {"src#0", "snk#0", "snk#1"}

    def test_expanded_edges_preserve_dependencies(self):
        srdf = _downsampler().to_srdf()
        # Both snk firings depend on src firing 0 in the same iteration.
        incoming = {q.source for q in srdf.input_queues("snk#0")}
        assert incoming == {"src#0"}
        incoming = {q.source for q in srdf.input_queues("snk#1")}
        assert incoming == {"src#0"}
        assert all(q.tokens == 0 for q in srdf.queues)

    def test_initial_tokens_become_iteration_offsets(self):
        graph = SDFGraph("cycle")
        graph.add_actor(SDFActor("a", 1.0))
        graph.add_actor(SDFActor("b", 2.0))
        graph.add_channel(SDFChannel("ab", "a", "b", 1, 1))
        graph.add_channel(SDFChannel("ba", "b", "a", 1, 1, tokens=1))
        srdf = graph.to_srdf()
        # Exactly one expanded edge of 'ba' carries the initial token.
        ba_edges = [q for q in srdf.queues if q.name.startswith("ba#")]
        assert sum(q.tokens for q in ba_edges) == 1
        # The expanded graph is live and has MCR = (1 + 2) / 1 = 3.
        assert maximum_cycle_ratio(srdf) == pytest.approx(3.0, rel=1e-6)

    def test_expanded_graph_simulates(self):
        graph = SDFGraph("cycle")
        graph.add_actor(SDFActor("a", 1.0))
        graph.add_actor(SDFActor("b", 1.0))
        graph.add_channel(SDFChannel("ab", "a", "b", 2, 1))
        graph.add_channel(SDFChannel("ba", "b", "a", 1, 2, tokens=2))
        srdf = graph.to_srdf()
        trace = simulate(srdf, iterations=10)
        assert trace.iterations == 10


@settings(max_examples=30, deadline=None)
@given(
    production=st.integers(min_value=1, max_value=4),
    consumption=st.integers(min_value=1, max_value=4),
    duration_src=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    duration_snk=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
)
def test_repetition_vector_balances_every_channel(
    production, consumption, duration_src, duration_snk
):
    """Property: the repetition vector satisfies the balance equations."""
    graph = SDFGraph("prop")
    graph.add_actor(SDFActor("src", duration_src))
    graph.add_actor(SDFActor("snk", duration_snk))
    graph.add_channel(SDFChannel("c", "src", "snk", production, consumption))
    repetitions = graph.repetition_vector()
    assert repetitions["src"] * production == repetitions["snk"] * consumption
    import math

    assert math.gcd(repetitions["src"], repetitions["snk"]) == 1


@settings(max_examples=20, deadline=None)
@given(
    production=st.integers(min_value=1, max_value=3),
    consumption=st.integers(min_value=1, max_value=3),
)
def test_expansion_preserves_total_token_production(production, consumption):
    """Property: the expanded SRDF graph has one edge per consumed token per iteration."""
    graph = SDFGraph("prop")
    graph.add_actor(SDFActor("src", 1.0))
    graph.add_actor(SDFActor("snk", 1.0))
    graph.add_channel(SDFChannel("c", "src", "snk", production, consumption))
    repetitions = graph.repetition_vector()
    srdf = graph.to_srdf()
    expanded_edges = [q for q in srdf.queues if q.name.startswith("c#")]
    assert len(expanded_edges) == consumption * repetitions["snk"]
