"""Experiment 2 of the paper: topology dependence of the trade-off (Figure 3).

The task graph ``T2`` extends the producer-consumer graph with a third task
``wc`` and a second buffer ``bbc`` (a three-stage chain on three processors,
same parameters as experiment 1).  Both buffer capacities are bounded by the
swept value and the sum of budgets is minimised.  Because the budget of the
middle task ``wb`` interacts with *two* buffers, the optimiser reduces the
budgets of ``wa`` and ``wc`` first: for every capacity bound,
``β(wb) ≥ β(wa) = β(wc)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.allocator import AllocatorOptions
from repro.core.objective import ObjectiveWeights
from repro.core.tradeoff import TradeoffCurve, TradeoffExplorer
from repro.taskgraph.configuration import Configuration
from repro.taskgraph.generators import (
    PAPER_PERIOD,
    PAPER_REPLENISHMENT_INTERVAL,
    PAPER_WCET,
    chain_configuration,
)

#: Capacity sweep of the paper's Figure 3 (containers).
DEFAULT_CAPACITY_SWEEP = tuple(range(1, 11))


@dataclass
class Figure3Result:
    """Data behind Figure 3: per-task budgets against the common capacity bound."""

    capacity_limits: List[int] = field(default_factory=list)
    budget_wa: List[float] = field(default_factory=list)
    budget_wb: List[float] = field(default_factory=list)
    budget_wc: List[float] = field(default_factory=list)
    relaxed_budget_wa: List[float] = field(default_factory=list)
    relaxed_budget_wb: List[float] = field(default_factory=list)
    relaxed_budget_wc: List[float] = field(default_factory=list)
    curve: Optional[TradeoffCurve] = None

    def rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for i, limit in enumerate(self.capacity_limits):
            rows.append(
                {
                    "buffer_capacity": limit,
                    "budget_wa_mcycles": self.budget_wa[i],
                    "budget_wb_mcycles": self.budget_wb[i],
                    "budget_wc_mcycles": self.budget_wc[i],
                }
            )
        return rows


def build_configuration(max_capacity: Optional[int] = None) -> Configuration:
    """The three-task chain ``T2`` with the paper's parameters."""
    return chain_configuration(
        stages=3,
        replenishment_interval=PAPER_REPLENISHMENT_INTERVAL,
        wcet=PAPER_WCET,
        period=PAPER_PERIOD,
        max_capacity=max_capacity,
    )


def run_figure3(
    capacity_sweep: Sequence[int] = DEFAULT_CAPACITY_SWEEP,
    backend: str = "auto",
    run_simulation: bool = False,
) -> Figure3Result:
    """Run the sweep over the common maximum buffer capacity (Figure 3)."""
    configuration = build_configuration()
    explorer = TradeoffExplorer(
        weights=ObjectiveWeights.prefer_budgets(),
        allocator_options=AllocatorOptions(
            backend=backend, run_simulation=run_simulation
        ),
    )
    curve = explorer.sweep_capacity_limit(configuration, capacity_sweep)
    return figure3_from_curve(curve)


def figure3_from_curve(curve: TradeoffCurve) -> Figure3Result:
    """Build the figure data from an already-computed trade-off curve."""
    result = Figure3Result(curve=curve)
    for point in curve.feasible_points():
        result.capacity_limits.append(point.capacity_limit)
        result.budget_wa.append(point.budgets["wa"])
        result.budget_wb.append(point.budgets["wb"])
        result.budget_wc.append(point.budgets["wc"])
        result.relaxed_budget_wa.append(point.relaxed_budgets["wa"])
        result.relaxed_budget_wb.append(point.relaxed_budgets["wb"])
        result.relaxed_budget_wc.append(point.relaxed_budgets["wc"])
    return result
