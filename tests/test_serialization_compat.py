"""Schema-versioning and backward-compatibility of the on-disk model format.

The committed fixture ``tests/fixtures/legacy_configuration_v1.json`` was
written by the pre-generalisation (version 1) serialiser.  Loading it must
produce objects equal to freshly built default-valued models, and writing a
legacy-expressible configuration must reproduce the fixture byte-for-byte —
the batch result cache hashes this document, so any drift would silently
invalidate every old campaign cache entry.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.exceptions import ModelError
from repro.batch.cache import cache_key
from repro.taskgraph.generators import (
    chain_configuration,
    csdf_chain_configuration,
    heterogeneous_random_configuration,
)
from repro.taskgraph.serialization import (
    FORMAT_VERSION,
    LEGACY_FORMAT_VERSION,
    configuration_from_dict,
    configuration_from_json,
    configuration_to_dict,
    configuration_to_json,
    load_configuration,
    uses_extended_model,
)

FIXTURE = Path(__file__).parent / "fixtures" / "legacy_configuration_v1.json"


class TestLegacyFixture:
    def test_loads_to_default_equal_objects(self):
        loaded = load_configuration(FIXTURE)
        fresh = chain_configuration(stages=3, max_capacity=8)
        assert loaded.name == fresh.name
        assert loaded.granularity == fresh.granularity
        assert list(loaded.platform.processors.values()) == list(
            fresh.platform.processors.values()
        )
        assert list(loaded.platform.memories.values()) == list(
            fresh.platform.memories.values()
        )
        for loaded_graph, fresh_graph in zip(loaded.task_graphs, fresh.task_graphs):
            assert list(loaded_graph.tasks) == list(fresh_graph.tasks)
            assert list(loaded_graph.buffers) == list(fresh_graph.buffers)

    def test_extended_fields_load_as_defaults(self):
        loaded = load_configuration(FIXTURE)
        for _, task in loaded.all_tasks():
            assert task.phases is None
            assert task.cycles_by_type is None
        for _, buffer in loaded.all_buffers():
            assert buffer.production_rates is None
            assert buffer.consumption_rates is None
        for processor in loaded.platform:
            assert processor.proc_type == "generic"
            assert processor.speed == 1.0
            assert processor.dvfs_levels is None

    def test_reserialisation_is_byte_identical(self):
        loaded = load_configuration(FIXTURE)
        assert configuration_to_json(loaded) == FIXTURE.read_text(encoding="utf-8")

    def test_legacy_configuration_stamps_version_one(self):
        data = configuration_to_dict(chain_configuration(stages=3, max_capacity=8))
        assert data["format_version"] == LEGACY_FORMAT_VERSION
        assert not uses_extended_model(configuration_from_dict(data))

    def test_legacy_cache_key_is_stable(self):
        # The exact pre-refactor hash of the fixture problem: if this moves,
        # every cached campaign result for legacy configurations is lost.
        loaded = load_configuration(FIXTURE)
        key = cache_key(configuration_to_dict(loaded), {"backend": "auto"})
        fresh = chain_configuration(stages=3, max_capacity=8)
        assert key == cache_key(configuration_to_dict(fresh), {"backend": "auto"})
        data = configuration_to_dict(loaded)
        for graph_data in data["task_graphs"]:
            for task_data in graph_data["tasks"]:
                assert "phases" not in task_data
                assert "cycles_by_type" not in task_data
            for buffer_data in graph_data["buffers"]:
                assert "production_rates" not in buffer_data
                assert "consumption_rates" not in buffer_data
        for processor_data in data["platform"]["processors"]:
            assert "proc_type" not in processor_data
            assert "speed" not in processor_data
            assert "dvfs_levels" not in processor_data


class TestExtendedSchema:
    def test_extended_configuration_stamps_version_two(self):
        data = configuration_to_dict(csdf_chain_configuration())
        assert data["format_version"] == FORMAT_VERSION

    def test_csdf_round_trip(self):
        configuration = csdf_chain_configuration(stages=3, phases_per_task=2)
        restored = configuration_from_json(configuration_to_json(configuration))
        for (_, original), (_, loaded) in zip(
            configuration.all_tasks(), restored.all_tasks()
        ):
            assert loaded == original
        for (_, original), (_, loaded) in zip(
            configuration.all_buffers(), restored.all_buffers()
        ):
            assert loaded == original

    def test_heterogeneous_round_trip(self):
        configuration = heterogeneous_random_configuration(
            task_count=5, seed=3, dvfs_levels=(1.0, 2.0)
        )
        restored = configuration_from_json(configuration_to_json(configuration))
        assert list(restored.platform.processors.values()) == list(
            configuration.platform.processors.values()
        )
        for (_, original), (_, loaded) in zip(
            configuration.all_tasks(), restored.all_tasks()
        ):
            assert loaded.cycles_by_type == original.cycles_by_type

    def test_missing_version_defaults_to_legacy(self):
        data = configuration_to_dict(chain_configuration())
        del data["format_version"]
        assert configuration_from_dict(data).name == "chain-3"

    def test_future_version_is_rejected(self):
        data = configuration_to_dict(chain_configuration())
        data["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ModelError, match="newer than supported"):
            configuration_from_dict(data)
