"""Workload quickstart: several applications jointly allocated on one platform.

The budget schedulers of the paper's MPSoC exist because several applications
share the processors.  This example builds exactly that scenario: a video
decoder and an audio pipeline — two independent applications with their own
throughput requirements — mapped onto one shared three-processor platform.

One block-structured cone program allocates both applications at once: each
application contributes its own variables and throughput constraints, and the
applications meet only in the shared processor/memory capacity rows.  The
result reports budgets and buffer capacities per application plus the budget
split on every shared processor, and a capacity sweep shows how much
processor budget the video application gives back as *its* buffers grow while
the audio application keeps running untouched.
"""

from __future__ import annotations

from repro.core import AllocatorOptions, JointAllocator, TradeoffExplorer
from repro.taskgraph import ConfigurationBuilder, Workload


def video_application():
    """A three-stage decode pipeline spread over all three processors."""
    return (
        ConfigurationBuilder(name="video", granularity=1.0)
        .processor("p1", replenishment_interval=40.0)
        .processor("p2", replenishment_interval=40.0)
        .processor("p3", replenishment_interval=40.0)
        .memory("m1")
        .task_graph("decode", period=10.0)
        .task("parse", wcet=1.0, processor="p1")
        .task("idct", wcet=1.5, processor="p2")
        .task("render", wcet=1.0, processor="p3")
        .buffer("b_parse_idct", source="parse", target="idct", memory="m1")
        .buffer("b_idct_render", source="idct", target="render", memory="m1")
        .build()
    )


def audio_application():
    """A two-stage audio pipeline sharing processors p1 and p2 with the video."""
    return (
        ConfigurationBuilder(name="audio", granularity=1.0)
        .processor("p1", replenishment_interval=40.0)
        .processor("p2", replenishment_interval=40.0)
        .processor("p3", replenishment_interval=40.0)
        .memory("m1")
        .task_graph("playback", period=20.0)
        .task("decode", wcet=1.0, processor="p1")
        .task("mix", wcet=1.0, processor="p2")
        .buffer("b_decode_mix", source="decode", target="mix", memory="m1")
        .build()
    )


def main() -> None:
    video = video_application()
    workload = Workload(video.platform, name="set-top-box")
    workload.add_application("video", video)
    workload.add_application("audio", audio_application())

    allocator = JointAllocator(options=AllocatorOptions(run_simulation=True))
    mapped = allocator.allocate_workload(workload)

    print("Joint allocation of the set-top-box workload")
    print("=" * 52)
    for app_name, app_mapped in mapped.applications.items():
        print(f"\napplication {app_name!r}:")
        for task_name, budget in sorted(app_mapped.budgets.items()):
            print(f"  budget  {task_name:<12} {budget:6.2f} Mcycles")
        for buffer_name, capacity in sorted(app_mapped.buffer_capacities.items()):
            print(f"  buffer  {buffer_name:<14} {capacity:3d} containers")

    print("\nbudget split on the shared processors:")
    for row in mapped.budget_split_rows():
        shares = ", ".join(
            f"{name}={row[f'budget[{name}]']:.1f}"
            for name in workload.application_names
        )
        print(
            f"  {row['processor']}: {shares}  "
            f"(total {row['total']:.1f}, utilisation {row['utilisation']:.0%})"
        )
    print(f"\nverification: {mapped.solver_info['verification']}")

    # Sweep the video application's buffer bound while the audio app stays
    # fixed: the admission-style question of a loaded shared platform.
    explorer = TradeoffExplorer(
        allocator_options=AllocatorOptions(run_simulation=False)
    )
    curve = explorer.sweep_application_capacity(workload, "video", range(2, 7))
    print("\nvideo buffer bound vs video budget (audio untouched):")
    for point in curve.feasible_points():
        video_budget = sum(
            budget
            for name, budget in point.relaxed_budgets.items()
            if name.startswith("video/")
        )
        print(
            f"  <= {point.capacity_limit} containers/buffer: "
            f"video needs {video_budget:6.2f} Mcycles"
        )
    stats = curve.solver_stats
    print(
        f"\nsweep solved through one compiled program: "
        f"{stats['compiles']} compilation(s), {stats['solves']} solves, "
        f"phase I skipped {stats['phase1_skipped']}x"
    )


if __name__ == "__main__":
    main()
