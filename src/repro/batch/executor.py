"""Parallel batch allocation engine.

:class:`BatchExecutor` turns the single-shot :class:`~repro.core.allocator.
JointAllocator` into a high-throughput batch service: campaign items are
checked against the persistent :mod:`result cache <repro.batch.cache>`,
cache misses are fanned out over a :class:`concurrent.futures.
ProcessPoolExecutor` (workers and submission window configurable), each item
is bounded by an optional per-item timeout, solver failures fall back to
alternative backends, and structured :class:`ItemResult` records stream back
as they complete.

Determinism guarantees:

* every item is solved independently with a deterministic solver, so the same
  campaign produces identical per-item results with one worker and with
  ``N`` workers — only wall-clock fields (``solve_seconds``) differ;
* :meth:`BatchExecutor.run` returns results in campaign order regardless of
  completion order, so downstream aggregation is order-stable;
* cached payloads round-trip through JSON exactly, so a warm run reproduces a
  cold run bit-for-bit (modulo the ``from_cache`` flag).
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.allocator import AllocatorOptions, JointAllocator
from repro.core.objective import ObjectiveWeights
from repro.exceptions import FaultInjected, InfeasibleProblemError, NumericalError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span as obs_span
from repro.batch.cache import NullCache, ResultCache, cache_key
from repro.batch.campaign import CampaignItem
from repro.reliability.faults import FaultPlan, armed, maybe_fail
from repro.reliability.retry import CircuitBreaker, RetryPolicy
from repro.taskgraph import serialization

#: Objective presets usable in campaigns and on the command line.
WEIGHT_PRESETS = {
    "balanced": ObjectiveWeights.balanced,
    "prefer-budgets": ObjectiveWeights.prefer_budgets,
    "prefer-buffers": ObjectiveWeights.prefer_buffers,
}

#: Item statuses (terminal, mutually exclusive).
STATUS_OK = "ok"
STATUS_INFEASIBLE = "infeasible"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"


def resolve_weights(name: str) -> ObjectiveWeights:
    try:
        preset = WEIGHT_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown objective preset {name!r}; expected one of {sorted(WEIGHT_PRESETS)}"
        ) from None
    return preset()


@dataclass
class ExecutorConfig:
    """Operational knobs of the batch engine.

    Only ``backend``, ``weights``, ``verify``, ``run_simulation`` and
    ``fallback_backends`` influence the computed results (and therefore the
    cache key); ``workers``, ``chunk_size`` and ``timeout`` are pure
    throughput knobs.
    """

    workers: int = 1                   #: processes; 1 solves inline (no pool)
    backend: str = "auto"              #: primary solver backend per item
    weights: str = "prefer-budgets"    #: objective preset name
    verify: bool = True                #: run analytical verification per item
    run_simulation: bool = False       #: include self-timed simulation (slow)
    #: Per-item wait bound in seconds, pool mode only.  This bounds how long
    #: the collector waits for an item once it is that item's turn — a bound
    #: on *stuck workers*, not an exact execution limit: items that finished
    #: before their turn are never timed out retroactively, and items that
    #: never started are solved inline instead of being reported as timeouts.
    timeout: Optional[float] = None
    chunk_size: int = 16               #: submission window is workers * chunk_size
    fallback_backends: Tuple[str, ...] = ("scipy",)  #: tried when a backend fails
    #: Capture per-item span trees and metrics inside the workers and ship
    #: them back on each :class:`ItemResult`.  A pure observability knob:
    #: telemetry stays out of :meth:`result_options` (and thus out of cache
    #: keys), out of cached payloads and out of deterministic output.
    telemetry: bool = False
    #: A serialised :class:`repro.reliability.faults.FaultPlan`
    #: (``FaultPlan.to_dict()``) armed inside every worker for the duration
    #: of each item — the chaos-testing transport.  Arming is per item, so
    #: ``nth``/``times`` triggers count an item's own calls regardless of
    #: which worker process it lands on.  Operational only: fault plans stay
    #: out of :meth:`result_options` and therefore out of cache keys.
    fault_plan: Optional[Dict[str, object]] = None

    def result_options(self) -> Dict[str, object]:
        """The result-relevant subset, canonical for cache keying."""
        return {
            "backend": self.backend,
            "weights": self.weights,
            "verify": self.verify,
            "run_simulation": self.run_simulation,
            "fallback_backends": list(self.fallback_backends),
        }


@dataclass
class ItemResult:
    """The structured outcome of one campaign item."""

    label: str
    key: str
    status: str
    budgets: Dict[str, float] = field(default_factory=dict)
    buffer_capacities: Dict[str, int] = field(default_factory=dict)
    relaxed_budgets: Dict[str, float] = field(default_factory=dict)
    relaxed_capacities: Dict[str, float] = field(default_factory=dict)
    objective_value: Optional[float] = None
    backend_used: Optional[str] = None
    solve_seconds: float = 0.0
    error: Optional[str] = None
    from_cache: bool = False
    #: Deterministic solver statistics (phase-I skipped, Newton iterations,
    #: outer iterations) — everything needed by ``repro-map batch --stats``.
    stats: Dict[str, object] = field(default_factory=dict)
    #: Worker-captured telemetry (span trees + metrics snapshot, the
    #: :meth:`repro.obs.Capture.as_dict` payload) when the executor ran with
    #: ``telemetry=True``.  Transport-only: excluded from :meth:`to_dict`
    #: (so it is never cached) and from :meth:`deterministic_dict`.
    telemetry: Optional[Dict[str, object]] = None

    @property
    def feasible(self) -> bool:
        return self.status == STATUS_OK

    @property
    def total_budget(self) -> float:
        return sum(self.budgets.values())

    @property
    def total_capacity(self) -> int:
        return sum(self.buffer_capacities.values())

    def to_dict(self) -> Dict[str, object]:
        """The cached/streamed payload (``from_cache`` is a load-time flag)."""
        return {
            "label": self.label,
            "key": self.key,
            "status": self.status,
            "budgets": dict(self.budgets),
            "buffer_capacities": dict(self.buffer_capacities),
            "relaxed_budgets": dict(self.relaxed_budgets),
            "relaxed_capacities": dict(self.relaxed_capacities),
            "objective_value": self.objective_value,
            "backend_used": self.backend_used,
            "solve_seconds": self.solve_seconds,
            "error": self.error,
            "stats": dict(self.stats),
        }

    def deterministic_dict(self) -> Dict[str, object]:
        """The payload without wall-clock fields (for equivalence checks)."""
        data = self.to_dict()
        del data["solve_seconds"]
        # Telemetry (span trees, timing quantiles) is wall-clock through and
        # through; to_dict() already excludes it, but strip defensively so a
        # payload that carried it stays comparable across worker counts.
        data.pop("telemetry", None)
        data["stats"] = {
            key: value
            for key, value in dict(data["stats"]).items()
            # The barrier backend reports wall-clock per-phase timings
            # (*_time) alongside its deterministic counters; drop them all.
            if key != "solve_time" and not key.endswith("_time")
        }
        return data

    @classmethod
    def from_dict(
        cls, data: Dict[str, object], from_cache: bool = False
    ) -> "ItemResult":
        return cls(
            label=str(data["label"]),
            key=str(data["key"]),
            status=str(data["status"]),
            budgets={str(k): float(v) for k, v in dict(data.get("budgets", {})).items()},
            buffer_capacities={
                str(k): int(v) for k, v in dict(data.get("buffer_capacities", {})).items()
            },
            relaxed_budgets={
                str(k): float(v) for k, v in dict(data.get("relaxed_budgets", {})).items()
            },
            relaxed_capacities={
                str(k): float(v)
                for k, v in dict(data.get("relaxed_capacities", {})).items()
            },
            objective_value=(
                None if data.get("objective_value") is None else float(data["objective_value"])
            ),
            backend_used=(
                None if data.get("backend_used") is None else str(data["backend_used"])
            ),
            solve_seconds=float(data.get("solve_seconds", 0.0)),
            error=None if data.get("error") is None else str(data["error"]),
            from_cache=from_cache,
            stats=dict(data.get("stats", {})),
            telemetry=(
                dict(data["telemetry"]) if data.get("telemetry") else None
            ),
        )

    def row(self) -> Dict[str, object]:
        """One table row for :func:`repro.analysis.report.render_table`."""
        return {
            "item": self.label,
            "status": self.status,
            "total_budget": self.total_budget if self.feasible else None,
            "containers": self.total_capacity if self.feasible else None,
            "backend": self.backend_used,
            "cached": self.from_cache,
            "seconds": round(self.solve_seconds, 4),
        }


def _solve_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Solve one serialised item; runs inside a worker process.

    Must stay importable at module top level so it pickles across the
    process pool.  Never raises: every failure mode maps to a terminal
    status so a single bad item cannot abort a campaign.

    Three payload shapes are accepted:

    * a single item (``capacity_limits``) — solved through
      :meth:`JointAllocator.allocate` with backend fallback;
    * a *workload* item (``workload``) — a multi-application workload solved
      jointly through :meth:`JointAllocator.allocate_workload` (per-app
      budgets/capacities are reported flattened as
      ``"<application>/<name>"``), with the same backend fallback;
    * a *sweep family* (``capacity_sweep``) — a whole capacity sweep over one
      configuration, solved through the session API
      (:meth:`~repro.core.tradeoff.TradeoffExplorer.sweep_capacity_limit`)
      so the cone program compiles once and every point warm-starts from its
      neighbour.  The result carries per-point payloads under ``"points"``
      plus the aggregate session statistics; backend fallback does not apply
      (a sweep must come from exactly one backend to stay explainable);
    * an *admission trace* (``trace``) — an arrival/departure event sequence
      replayed through one incremental admission session
      (:func:`repro.core.admission.replay_trace`); the per-event verdicts
      ride under ``stats["events"]`` and the final platform state fills the
      item fields.  Like sweep families, a trace is one sequential session,
      so it runs with exactly the configured backend.
    """
    plan = (
        None
        if payload.get("faults") is None
        else FaultPlan.from_dict(payload["faults"])
    )
    with obs_span("batch-item", label=str(payload["label"])) as item_span, armed(plan):
        label = str(payload["label"])
        injected: Optional[BaseException] = None
        try:
            # Chaos sites: ``executor.worker`` with an ``exit`` action kills
            # this worker process mid-item (→ BrokenProcessPool recovery in
            # run_iter); ``item.timeout`` with a ``sleep`` action stalls the
            # item past its per-item timeout.  Any raising action (injected
            # fault, numerical blow-up, linalg failure, OSError, …) becomes
            # a terminal item error, same as any other solver breakdown —
            # never a campaign abort.
            maybe_fail("executor.worker", label=label)
            maybe_fail("item.timeout", label=label)
        except Exception as error:  # noqa: BLE001 - see comment above
            injected = error
        if injected is not None:
            base = {
                "label": payload["label"],
                "key": payload["key"],
                "budgets": {},
                "buffer_capacities": {},
                "relaxed_budgets": {},
                "relaxed_capacities": {},
                "objective_value": None,
                "backend_used": None,
                "error": f"{type(injected).__name__}: {injected}",
                "stats": {},
                "status": STATUS_ERROR,
            }
        elif payload.get("telemetry"):
            with obs.capture() as captured:
                base = _solve_item(payload)
            base["telemetry"] = captured.as_dict()
        else:
            base = _solve_item(payload)
    # The one place per-item wall-clock is measured: every payload shape and
    # every failure mode below reports through this single span.
    base["solve_seconds"] = item_span.seconds
    return base


def _solve_item(payload: Dict[str, object]) -> Dict[str, object]:
    """Dispatch one payload to its solve branch (timing handled by the caller)."""
    options = payload["options"]
    base = {
        "label": payload["label"],
        "key": payload["key"],
        "budgets": {},
        "buffer_capacities": {},
        "relaxed_budgets": {},
        "relaxed_capacities": {},
        "objective_value": None,
        "backend_used": None,
        "error": None,
        "stats": {},
    }
    if payload.get("trace") is not None:
        return _solve_trace_payload(payload, base)
    if payload.get("workload") is not None:
        return _solve_workload_payload(payload, base)

    try:
        configuration = serialization.configuration_from_dict(payload["configuration"])
        weights = resolve_weights(options["weights"])
    except Exception as error:  # noqa: BLE001 - malformed payloads become item errors
        base.update(status=STATUS_ERROR, error=str(error))
        return base

    if payload.get("capacity_sweep") is not None:
        from repro.core.tradeoff import TradeoffExplorer

        explorer = TradeoffExplorer(
            weights=weights,
            allocator_options=AllocatorOptions(
                backend=options["backend"],
                verify=options["verify"],
                run_simulation=options["run_simulation"],
            ),
        )
        try:
            curve = explorer.sweep_capacity_limit(
                configuration, [int(value) for value in payload["capacity_sweep"]]
            )
        except Exception as error:  # noqa: BLE001 - solver failures become family errors
            base.update(status=STATUS_ERROR, error=f"{options['backend']}: {error}")
            return base
        base.update(
            status=STATUS_OK,
            backend_used=options["backend"],
            stats=dict(curve.solver_stats),
        )
        base["points"] = [
            {
                "capacity_limit": point.capacity_limit,
                "feasible": point.feasible,
                "budgets": dict(point.budgets),
                "relaxed_budgets": dict(point.relaxed_budgets),
                "capacities": dict(point.capacities),
                "objective_value": point.objective_value,
                "stats": dict(point.solve_stats),
            }
            for point in curve.points
        ]
        return base

    def solve(backend: str) -> Dict[str, object]:
        allocator = JointAllocator(
            weights=weights,
            options=AllocatorOptions(
                backend=backend,
                verify=options["verify"],
                run_simulation=options["run_simulation"],
            ),
        )
        mapped = allocator.allocate(
            configuration, capacity_limits=payload.get("capacity_limits")
        )
        return {
            "budgets": dict(mapped.budgets),
            "buffer_capacities": dict(mapped.buffer_capacities),
            "relaxed_budgets": dict(mapped.relaxed_budgets),
            "relaxed_capacities": dict(mapped.relaxed_capacities),
            "objective_value": mapped.objective_value,
            "backend_used": str(mapped.solver_info.get("backend", backend)),
            "stats": dict(mapped.solver_info.get("solve_stats", {})),
        }

    return _run_with_backend_fallback(base, options, solve)


#: Transient failures worth retrying on the *same* backend before falling
#: back to the next one — numerical blow-ups and injected faults, never
#: infeasibility (a definite answer) or programming errors.
_RETRYABLE = (NumericalError, FaultInjected, FloatingPointError, ArithmeticError)

#: Per-process circuit breaker over solver backends, shared by every item a
#: worker solves: a backend that keeps failing stops being attempted for
#: ``reset_after`` seconds, so a campaign with a systematically broken
#: backend pays its failure cost once per window instead of once per item.
_BACKEND_BREAKER: Optional[CircuitBreaker] = None


def _backend_breaker() -> CircuitBreaker:
    global _BACKEND_BREAKER
    if _BACKEND_BREAKER is None:
        _BACKEND_BREAKER = CircuitBreaker(failure_threshold=3, reset_after=30.0)
    return _BACKEND_BREAKER


def _count_reliability(name: str) -> None:
    from repro.obs.metrics import get_registry

    registry = get_registry()
    if registry.enabled:
        registry.counter(name).inc()


def _run_with_backend_fallback(
    base: Dict[str, object],
    options: Dict[str, object],
    solve: Callable[[str], Dict[str, object]],
) -> Dict[str, object]:
    """Try ``solve(backend)`` over the configured backend chain.

    The single definition of the per-item fallback contract, shared by the
    single-configuration and workload payload shapes: infeasibility
    (including the validation screens' :class:`~repro.exceptions.
    InfeasibleModelError`) is a definite answer that ends the item
    immediately; a *transient* failure (:data:`_RETRYABLE`) is retried once
    on the same backend, any other failure moves on to the next fallback
    backend, and exhausting the chain yields a terminal error status.  A
    backend whose circuit is open (see :func:`_backend_breaker`) is skipped
    outright.  ``solve`` returns the result fields merged into ``base`` on
    success.
    """
    import numpy as np

    attempts = [options["backend"]] + [
        backend
        for backend in options["fallback_backends"]
        if backend != options["backend"]
    ]
    breaker = _backend_breaker()
    policy = RetryPolicy(attempts=2)
    retryable = _RETRYABLE + (np.linalg.LinAlgError,)
    last_error: Optional[str] = None
    for position, backend in enumerate(attempts):
        if not breaker.allow(backend):
            last_error = f"{backend}: circuit open after repeated failures"
            continue
        try:
            fields = policy.run(
                lambda: solve(backend),
                retryable=retryable,
                on_retry=lambda attempt, error: _count_reliability(
                    "reliability.retries"
                ),
            )
        except InfeasibleProblemError as error:
            # Infeasibility is a definite answer, not a solver failure:
            # trying another backend would only burn time.
            base.update(status=STATUS_INFEASIBLE, error=str(error), backend_used=backend)
            breaker.record_success(backend)
            break
        except Exception as error:  # noqa: BLE001 - numerical failures trigger fallback
            breaker.record_failure(backend)
            if position + 1 < len(attempts):
                _count_reliability("reliability.fallbacks")
            last_error = f"{backend}: {error}"
            continue
        base.update(status=STATUS_OK, **fields)
        breaker.record_success(backend)
        break
    else:
        base.update(status=STATUS_ERROR, error=last_error)
    return base


def _solve_workload_payload(
    payload: Dict[str, object], base: Dict[str, object]
) -> Dict[str, object]:
    """Solve one serialised workload item (joint multi-application allocation).

    Same terminal-status and backend-fallback contract as the
    single-configuration branch of :func:`_solve_payload`; per-application
    results are flattened into the item fields with
    ``"<application>/<name>"`` keys so :class:`ItemResult` and the
    aggregation layer work unchanged.
    """
    from repro.taskgraph.workload import workload_from_dict

    options = payload["options"]
    try:
        workload = workload_from_dict(payload["workload"])
        weights = resolve_weights(options["weights"])
    except Exception as error:  # noqa: BLE001 - malformed payloads become item errors
        base.update(status=STATUS_ERROR, error=str(error))
        return base

    def solve(backend: str) -> Dict[str, object]:
        allocator = JointAllocator(
            weights=weights,
            options=AllocatorOptions(
                backend=backend,
                verify=options["verify"],
                run_simulation=options["run_simulation"],
            ),
        )
        mapped = allocator.allocate_workload(
            workload, capacity_limits=payload.get("capacity_limits")
        )
        return {
            "budgets": mapped.flattened("budgets"),
            "buffer_capacities": mapped.flattened("buffer_capacities"),
            "relaxed_budgets": mapped.flattened("relaxed_budgets"),
            "relaxed_capacities": mapped.flattened("relaxed_capacities"),
            "objective_value": mapped.objective_value,
            "backend_used": str(mapped.solver_info.get("backend", backend)),
            "stats": dict(mapped.solver_info.get("solve_stats", {})),
        }

    return _run_with_backend_fallback(base, options, solve)


def _solve_trace_payload(
    payload: Dict[str, object], base: Dict[str, object]
) -> Dict[str, object]:
    """Replay one serialised admission trace (run-time arrival/departure events).

    The whole trace is one unit of work and of caching: its incremental
    session is inherently sequential, so it runs inline in the worker with
    exactly the configured backend (no fallback — mixed backends would make
    the per-event timeline unexplainable).  Per-event verdicts are reported
    under ``stats["events"]``; the item-level fields carry the *final*
    platform state (empty when the last application departed).
    """
    from repro.core.admission import replay_trace, trace_from_dict

    options = payload["options"]
    try:
        trace = trace_from_dict(payload["trace"])
        weights = resolve_weights(options["weights"])
    except Exception as error:  # noqa: BLE001 - malformed payloads become item errors
        base.update(status=STATUS_ERROR, error=str(error))
        return base

    allocator = JointAllocator(
        weights=weights,
        options=AllocatorOptions(
            backend=options["backend"],
            verify=options["verify"],
            run_simulation=options["run_simulation"],
        ),
    )
    try:
        result = replay_trace(trace, allocator=allocator)
    except Exception as error:  # noqa: BLE001 - solver failures become item errors
        base.update(status=STATUS_ERROR, error=f"{options['backend']}: {error}")
        return base

    final = result.final_mapped
    base.update(
        status=STATUS_OK,
        backend_used=options["backend"],
        budgets=final.flattened("budgets") if final else {},
        buffer_capacities=final.flattened("buffer_capacities") if final else {},
        relaxed_budgets=final.flattened("relaxed_budgets") if final else {},
        relaxed_capacities=final.flattened("relaxed_capacities") if final else {},
        objective_value=None if final is None else final.objective_value,
        stats={
            **dict(result.solver_stats),
            "events": [record.as_dict() for record in result.records],
            "admitted": result.admitted,
            "rejected": result.rejected,
            "departed": result.departed,
        },
    )
    return base


@dataclass
class SweepResult:
    """The structured outcome of one capacity-sweep family.

    ``points`` holds one payload per swept capacity bound (in sweep order)
    with the same fields a :class:`~repro.core.tradeoff.TradeoffPoint`
    carries; ``solver_stats`` is the aggregate of the solve session that
    produced the family (compiles, phase-I skips, Newton iterations, …).
    """

    label: str
    key: str
    status: str
    points: List[Dict[str, object]] = field(default_factory=list)
    solver_stats: Dict[str, object] = field(default_factory=dict)
    backend_used: Optional[str] = None
    solve_seconds: float = 0.0
    error: Optional[str] = None
    from_cache: bool = False
    #: Captured telemetry of the family solve (see :attr:`ItemResult.telemetry`).
    telemetry: Optional[Dict[str, object]] = None

    @classmethod
    def from_dict(
        cls, data: Dict[str, object], label: str, key: str, from_cache: bool = False
    ) -> "SweepResult":
        return cls(
            label=label,
            key=key,
            status=str(data["status"]),
            points=[dict(point) for point in data.get("points", [])],
            solver_stats=dict(data.get("stats", {})),
            backend_used=(
                None if data.get("backend_used") is None else str(data["backend_used"])
            ),
            solve_seconds=float(data.get("solve_seconds", 0.0)),
            error=None if data.get("error") is None else str(data["error"]),
            from_cache=from_cache,
            telemetry=(
                dict(data["telemetry"]) if data.get("telemetry") else None
            ),
        )


class BatchExecutor:
    """Fan a campaign out over the cache and a process pool."""

    def __init__(
        self,
        config: Optional[ExecutorConfig] = None,
        cache: Optional[object] = None,
    ) -> None:
        self.config = config or ExecutorConfig()
        self.cache = cache if cache is not None else NullCache()
        #: Campaign-level aggregate: executor-side counters (cache hits,
        #: solved items, timeouts) plus — with ``telemetry=True`` — every
        #: worker's metric snapshot merged in.  Always enabled: it is local
        #: to this executor and costs nothing unless a campaign runs.
        self.metrics = MetricsRegistry(enabled=True)
        # The worker pool persists across run()/run_iter() calls: it is
        # created lazily on the first parallel run and reused until close(),
        # so back-to-back campaigns pay the process start-up cost once.
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- public API -------------------------------------------------------------
    def close(self) -> None:
        """Shut down the persistent worker pool (if one was ever created).

        Idempotent; the executor stays usable — the next parallel run simply
        creates a fresh pool.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.config.workers)
        return self._pool
    def run(
        self,
        items: Sequence[CampaignItem],
        progress: Optional[Callable[[int, ItemResult], None]] = None,
    ) -> List[ItemResult]:
        """Solve every item and return results in campaign order."""
        results: List[Optional[ItemResult]] = [None] * len(items)
        for index, result in self.run_iter(items):
            results[index] = result
            if progress is not None:
                progress(index, result)
        return [result for result in results if result is not None]

    def run_iter(
        self, items: Sequence[CampaignItem]
    ) -> Iterator[Tuple[int, ItemResult]]:
        """Stream ``(campaign_index, result)`` pairs as items finish.

        Cache hits are yielded first (they cost microseconds); misses follow
        in submission order as the pool completes them.  Items with identical
        cache keys (overlapping entries) are solved once per run, and every
        result carries the *current* item's label — never a label stored by
        an earlier campaign that happened to populate the cache.
        """
        options = self.config.result_options()
        pending: List[Tuple[str, Dict[str, object]]] = []
        waiters: Dict[str, List[Tuple[int, str]]] = {}
        for index, item in enumerate(items):
            configuration_dict = item.configuration_dict()
            try:
                key = cache_key(configuration_dict, options, item.limits())
            except ValueError as error:
                # Non-finite floats in the item's payload have no canonical
                # JSON form (and no meaningful cache identity).  Like every
                # other malformed payload, this is a per-item error, never a
                # campaign abort.
                yield index, ItemResult(
                    label=item.label,
                    key="",
                    status=STATUS_ERROR,
                    error=str(error),
                )
                continue
            if key in waiters:
                waiters[key].append((index, item.label))
                continue
            cached = self.cache.get(key)
            if cached is not None:
                self.metrics.counter("batch.cache_hits").inc()
                yield index, self._load(cached, item.label, key, from_cache=True)
                continue
            waiters[key] = [(index, item.label)]
            payload: Dict[str, object] = {
                "label": item.label,
                "key": key,
                "capacity_limits": item.limits(),
                "options": options,
            }
            if self.config.telemetry:
                payload["telemetry"] = True
            if self.config.fault_plan is not None:
                payload["faults"] = self.config.fault_plan
            if item.trace is not None:
                payload["trace"] = configuration_dict
            elif item.workload is not None:
                payload["workload"] = configuration_dict
            else:
                payload["configuration"] = configuration_dict
            pending.append((key, payload))

        if self.config.workers <= 1 or len(pending) <= 1:
            if self.config.timeout is not None and pending:
                warnings.warn(
                    "the per-item timeout is not enforced in inline mode "
                    "(workers <= 1, or nothing left to parallelise); "
                    "use workers >= 2 to bound per-item time",
                    RuntimeWarning,
                )
            for key, payload in pending:
                result_dict = self._absorb(self._store(_solve_payload(payload)))
                for index, label in waiters[key]:
                    yield index, self._load(result_dict, label, key)
            return

        window = max(1, self.config.chunk_size) * self.config.workers
        pool = self._ensure_pool()
        pool_stuck = False
        try:
            for start in range(0, len(pending), window):
                batch = pending[start : start + window]
                futures = [
                    (key, payload, pool.submit(_solve_payload, payload))
                    for key, payload in batch
                ]
                for key, payload, future in futures:
                    try:
                        result_dict = future.result(timeout=self.config.timeout)
                    except BrokenProcessPool:
                        # A worker process died mid-item (crash, OOM kill,
                        # injected ``executor.worker`` exit).  The pool is
                        # unusable; replace it and give the item one retry on
                        # the fresh pool — a second death means the payload
                        # itself kills workers, which becomes a terminal
                        # per-item error rather than a campaign abort.
                        self.metrics.counter("batch.worker_crashes").inc()
                        pool = self._ensure_healthy_pool(pool)
                        try:
                            result_dict = pool.submit(
                                _solve_payload, payload
                            ).result(timeout=self.config.timeout)
                        except BrokenProcessPool:
                            self.metrics.counter("batch.worker_crashes").inc()
                            pool = self._ensure_healthy_pool(pool)
                            for index, label in waiters[key]:
                                yield index, ItemResult(
                                    label=label,
                                    key=key,
                                    status=STATUS_ERROR,
                                    error=(
                                        "worker process died while solving "
                                        "this item (twice); not retried again"
                                    ),
                                )
                            continue
                        except FutureTimeoutError:
                            pool_stuck = True
                            self.metrics.counter("batch.timeouts").inc()
                            for index, label in waiters[key]:
                                yield index, ItemResult(
                                    label=label,
                                    key=key,
                                    status=STATUS_TIMEOUT,
                                    error=(
                                        f"item exceeded the per-item timeout "
                                        f"of {self.config.timeout} s"
                                    ),
                                )
                            continue
                    except FutureTimeoutError:
                        if future.cancel():
                            # The item never started (workers were starved by
                            # slow neighbours), so it has not violated its own
                            # timeout — solve it inline rather than reporting
                            # a spurious timeout.
                            result_dict = _solve_payload(payload)
                        else:
                            # The worker process keeps running (POSIX offers
                            # no safe per-task kill inside a shared pool); the
                            # item is reported as timed out and never cached,
                            # and the pool is replaced after this window so
                            # the stuck worker does not occupy a slot (or
                            # block the shutdown) for the rest of the run.
                            pool_stuck = True
                            self.metrics.counter("batch.timeouts").inc()
                            for index, label in waiters[key]:
                                yield index, ItemResult(
                                    label=label,
                                    key=key,
                                    status=STATUS_TIMEOUT,
                                    error=(
                                        f"item exceeded the per-item timeout "
                                        f"of {self.config.timeout} s"
                                    ),
                                )
                            continue
                    result_dict = self._absorb(self._store(result_dict))
                    for index, label in waiters[key]:
                        yield index, self._load(result_dict, label, key)
                if pool_stuck:
                    pool = self._replace_stuck_pool(pool)
                    pool_stuck = False
        except (KeyboardInterrupt, SystemExit):
            # Graceful shutdown (Ctrl-C, or SIGTERM converted by
            # ``graceful_interrupts``): waiting for in-flight items could
            # take arbitrarily long, so release the pool without waiting and
            # kill its workers — nothing of this run is reusable, results
            # already yielded (and cached) stay valid, and no worker process
            # is left orphaned.
            pool_stuck = False
            if self._pool is pool:
                self._pool = None
            self._drain_stuck_pool(pool)
            raise
        finally:
            # The pool persists across runs (see close()); only a pool left
            # with a stuck worker is torn down here, so the next run starts
            # with full parallelism again.
            if pool_stuck:
                if self._pool is pool:
                    self._pool = None
                self._drain_stuck_pool(pool)

    def _ensure_healthy_pool(self, pool: ProcessPoolExecutor) -> ProcessPoolExecutor:
        """Replace ``pool`` if it is broken (a worker died); else keep it.

        Safe to call once per failed future: after the first replacement the
        surviving futures of the dead pool fail fast with
        :class:`BrokenProcessPool`, find the *current* pool healthy, and only
        resubmit — no pool churn.
        """
        if self._pool is not None and not getattr(self._pool, "_broken", False):
            return self._pool
        warnings.warn(
            "a batch worker process died unexpectedly; recreating the "
            "process pool and retrying the item once",
            RuntimeWarning,
        )
        if self._pool is pool:
            self._pool = None
        self._drain_stuck_pool(pool)
        return self._ensure_pool()

    @staticmethod
    def _drain_stuck_pool(pool: ProcessPoolExecutor) -> None:
        """Tear down a pool with a worker stuck on a timed-out item.

        ``shutdown(wait=True)`` would block until the un-cancellable payload
        finishes (it already blew its timeout, so that can be arbitrarily
        long); instead the pool is released without waiting and any worker
        still running is killed — every non-stuck future of the pool has been
        collected by the time this is called, so only timed-out payloads die.
        """
        pool.shutdown(wait=False, cancel_futures=True)
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            process.kill()

    def _replace_stuck_pool(self, pool: ProcessPoolExecutor) -> ProcessPoolExecutor:
        """Swap a pool whose worker is stuck on a timed-out item for a new one.

        After an un-cancellable per-item timeout the worker process keeps
        executing the old payload, leaving every later window of the run one
        worker short (or queued behind it).  Recreating the pool restores the
        configured parallelism; the replacement is per *window*, so one stuck
        item costs one pool restart, not one per item.
        """
        warnings.warn(
            "a worker exceeded the per-item timeout and cannot be cancelled; "
            "recreating the process pool to restore full parallelism",
            RuntimeWarning,
        )
        if self._pool is pool:
            self._pool = None
        self._drain_stuck_pool(pool)
        return self._ensure_pool()

    def run_sweep(
        self,
        configuration,
        capacity_sweep: Sequence[int],
        label: Optional[str] = None,
    ) -> SweepResult:
        """Solve a whole capacity sweep over one configuration as a family.

        The family is the unit of work *and* of caching: its cache key covers
        the configuration, the result-relevant options and the full sweep, so
        a cached family reproduces the original run bit-for-bit.  The sweep
        itself goes through the session API (compile once, warm-start each
        point from its neighbour), which is why it runs inline rather than
        through the process pool — the points of a family form one sequential
        warm-start chain.  Backend fallback is not applied; a family solves
        with exactly the configured backend or reports an error.
        """
        from repro.taskgraph import serialization as taskgraph_serialization

        options = self.config.result_options()
        # Families never apply backend fallback (see above), so the fallback
        # list must not fragment the family cache: two configs differing only
        # in fallback_backends produce bit-identical sweeps.
        del options["fallback_backends"]
        configuration_dict = taskgraph_serialization.configuration_to_dict(configuration)
        sweep = [int(value) for value in capacity_sweep]
        label = label or f"{configuration.name}@sweep"
        try:
            key = cache_key(
                configuration_dict, options, {"__capacity_sweep__": sweep}
            )
        except ValueError as error:
            # Non-finite floats in the configuration: a per-family error,
            # consistent with run_iter's per-item handling.
            return SweepResult(
                label=label, key="", status=STATUS_ERROR, error=str(error)
            )
        cached = self.cache.get(key)
        if cached is not None:
            return SweepResult.from_dict(cached, label, key, from_cache=True)
        payload = {
            "label": label,
            "key": key,
            "configuration": configuration_dict,
            "capacity_limits": None,
            "capacity_sweep": sweep,
            "options": options,
        }
        if self.config.telemetry:
            payload["telemetry"] = True
        result_dict = self._absorb(self._store(_solve_payload(payload)))
        return SweepResult.from_dict(result_dict, label, key)

    # -- helpers ----------------------------------------------------------------
    def _store(self, result_dict: Dict[str, object]) -> Dict[str, object]:
        if result_dict["status"] in (STATUS_OK, STATUS_INFEASIBLE):
            # Errors and timeouts may be transient; never cache them.
            # Telemetry is transport-only wall-clock data: cached payloads
            # must stay byte-identical across telemetry settings.
            cacheable = {
                key: value
                for key, value in result_dict.items()
                if key != "telemetry"
            }
            self.cache.put(str(result_dict["key"]), cacheable)
        return result_dict

    def _absorb(self, result_dict: Dict[str, object]) -> Dict[str, object]:
        """Fold one solved (non-cached) result into the campaign aggregates."""
        self.metrics.counter("batch.solved").inc()
        telemetry = result_dict.get("telemetry")
        if telemetry:
            self.metrics.merge_snapshot(telemetry.get("metrics", {}))
        return result_dict

    @staticmethod
    def _load(
        payload: Dict[str, object], label: str, key: str, from_cache: bool = False
    ) -> ItemResult:
        result = ItemResult.from_dict(payload, from_cache=from_cache)
        result.label = label
        result.key = key
        return result


def make_cache(directory: Optional[object], enabled: bool = True):
    """Build the cache for a batch run: a :class:`ResultCache` or a no-op."""
    if not enabled or directory is None:
        return NullCache()
    return ResultCache(directory)
