"""Unit helpers for clock-cycle quantities.

The paper reports all durations in Mcycles (megacycles).  Internally the
library is unit-agnostic: every duration-valued quantity (worst-case execution
time, replenishment interval, budget, throughput period) simply has to use the
*same* unit.  These helpers make the intent explicit in examples and
experiment drivers and guard against the classic cycles/Mcycles mix-up.
"""

from __future__ import annotations

#: Number of cycles in one Mcycle.
CYCLES_PER_MCYCLE: float = 1.0e6


def mcycles(value: float) -> float:
    """Return ``value`` Mcycles expressed in cycles."""
    return float(value) * CYCLES_PER_MCYCLE


def to_mcycles(cycles: float) -> float:
    """Convert a cycle count to Mcycles."""
    return float(cycles) / CYCLES_PER_MCYCLE


def kcycles(value: float) -> float:
    """Return ``value`` kilocycles expressed in cycles."""
    return float(value) * 1.0e3


def format_cycles(cycles: float, *, digits: int = 3) -> str:
    """Render a cycle count with an adaptive unit suffix.

    >>> format_cycles(40_000_000.0)
    '40.0 Mcycles'
    >>> format_cycles(1500.0)
    '1.5 kcycles'
    >>> format_cycles(12.0)
    '12.0 cycles'
    """
    value = float(cycles)
    if abs(value) >= CYCLES_PER_MCYCLE:
        return f"{round(value / CYCLES_PER_MCYCLE, digits)} Mcycles"
    if abs(value) >= 1.0e3:
        return f"{round(value / 1.0e3, digits)} kcycles"
    return f"{round(value, digits)} cycles"
