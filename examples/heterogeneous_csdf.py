#!/usr/bin/env python3
"""Generalised execution models: heterogeneous/DVFS platforms and CSDF tasks.

The paper's model — single-phase tasks on identical processors — is the
degenerate case of two orthogonal generalisations that lower through the same
analysis pipeline:

1. a *heterogeneous* platform mixes processor types and clock speeds
   (optionally with discrete DVFS levels), and tasks carry per-type cycle
   costs resolved at binding time;
2. *cyclo-static* tasks cycle through phases with per-phase execution times
   and token rates, phase-unrolled into the same single-rate dataflow graph
   the SOCP formulation consumes.

This example builds a small video-style pipeline using both: a two-phase
scaler feeding a single-phase encoder, mapped onto a big/little platform.
It then sweeps the big core's DVFS levels to show the budget cost of
down-clocking.

Run with:  python examples/heterogeneous_csdf.py
"""

from __future__ import annotations

from repro.core import TradeoffExplorer, allocate, verify_mapping
from repro.taskgraph import (
    Buffer,
    Configuration,
    Task,
    TaskGraph,
    heterogeneous_platform,
)


def build_configuration() -> Configuration:
    """A two-stage pipeline on a big/little platform.

    The scaler is cyclo-static: its first phase (luma, 1.0 Mcycles) and
    second phase (chroma, 2.0 Mcycles) each produce one slice, and the
    encoder consumes two slices per firing.  Both tasks declare per-type
    cycle costs: the encoder has a tuned implementation on the big core.
    """
    platform = heterogeneous_platform(
        {
            "big": {"count": 1, "speed": 2.0, "dvfs_levels": (1.0, 1.5, 2.0)},
            "little": {"count": 1},
        },
        replenishment_interval=40.0,
        name="big-little",
    )
    graph = TaskGraph(name="video", period=10.0)
    graph.add_task(
        Task(
            name="scale",
            wcet=0.0,  # derived from the phases
            phases=(1.0, 2.0),
            processor="little1",
            cycles_by_type={"big": 3.0, "little": 2.0},
        )
    )
    graph.add_task(
        Task(
            name="encode",
            wcet=4.0,
            processor="big1",
            cycles_by_type={"big": 4.0, "little": 7.0},
        )
    )
    graph.add_buffer(
        Buffer(
            name="slices",
            source="scale",
            target="encode",
            memory="m1",
            production_rates=(1, 1),
            consumption_rates=(2,),
            max_capacity=8,
        )
    )
    return Configuration(platform=platform, task_graphs=[graph], name="video-pipeline")


def main() -> None:
    configuration = build_configuration()
    graph = configuration.task_graphs[0]

    print("Cyclo-static lowering")
    print(f"  repetition vector: {graph.repetitions()}")
    for _, task in configuration.all_tasks():
        processor = configuration.platform.processor(task.processor)
        effective = graph.period_cycles(task.name, processor)
        print(
            f"  {task.name}: {task.phase_count} phase(s) on {task.processor} "
            f"({processor.proc_type} @ speed {processor.speed}) -> "
            f"{effective:.3g} Mcycles effective per iteration"
        )

    mapped = allocate(configuration)
    print("\nJoint budget/buffer computation (SOCP)")
    for name, budget in sorted(mapped.budgets.items()):
        print(f"  budget[{name}] = {budget:.3f}")
    for name, capacity in sorted(mapped.buffer_capacities.items()):
        print(f"  capacity[{name}] = {capacity} containers")
    report = verify_mapping(mapped)
    print(f"  verification: {report.summary()}")

    print("\nDVFS sweep of the big core")
    sweep = TradeoffExplorer().sweep_dvfs(configuration, processors=["big1"])
    for point in sweep.points:
        speed = point.speeds["big1"]
        if point.feasible:
            print(
                f"  speed {speed:.1f}: total budget {point.total_budget:.3f} "
                f"(objective {point.objective_value:.3f})"
            )
        else:
            print(f"  speed {speed:.1f}: infeasible")
    best = sweep.best()
    print(
        f"  best operating point: speed {best.speeds['big1']:.1f} "
        f"with objective {best.objective_value:.3f}"
    )


if __name__ == "__main__":
    main()
