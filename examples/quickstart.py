#!/usr/bin/env python3
"""Quickstart: compute budgets and buffer sizes for a small streaming job.

A two-stage job (decode → render) runs on two TDM-scheduled processors with a
40-Mcycle replenishment interval and must sustain one iteration every
10 Mcycles.  The joint allocator computes, in one shot, the TDM budget of each
task and the capacity of the FIFO buffer between them such that the
throughput requirement is guaranteed.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ConfigurationBuilder, JointAllocator, ObjectiveWeights
from repro.analysis import analyse_throughput, render_table, utilisation_summary
from repro.scheduling import allocations_from_mapping


def build_configuration():
    """A decode → render pipeline on a two-processor platform."""
    return (
        ConfigurationBuilder(name="quickstart", granularity=1.0)
        .processor("dsp", replenishment_interval=40.0, scheduling_overhead=1.0)
        .processor("gpu", replenishment_interval=40.0, scheduling_overhead=1.0)
        .memory("sram", capacity=16.0)
        .task_graph("video", period=10.0)
        .task("decode", wcet=1.5, processor="dsp")
        .task("render", wcet=1.0, processor="gpu")
        .buffer("frames", source="decode", target="render", memory="sram", container_size=2.0)
        .build()
    )


def main() -> None:
    configuration = build_configuration()

    # Budgets are the scarce resource here, so prefer minimising them and let
    # the buffer grow as far as the 16-unit memory allows.
    allocator = JointAllocator(weights=ObjectiveWeights.prefer_budgets())
    mapping = allocator.allocate(configuration)

    print("Joint budget / buffer-size computation")
    print("=" * 54)
    rows = [
        {
            "task": task_name,
            "budget (Mcycles / interval)": budget,
            "relaxed optimum": round(mapping.relaxed_budgets[task_name], 3),
        }
        for task_name, budget in sorted(mapping.budgets.items())
    ]
    print(render_table(rows))
    print()
    print(
        render_table(
            [
                {
                    "buffer": name,
                    "capacity (containers)": capacity,
                    "storage (units)": mapping.configuration.find_buffer(name)[1].storage_for(capacity),
                }
                for name, capacity in sorted(mapping.buffer_capacities.items())
            ]
        )
    )
    print()

    # Independent verification: minimum sustainable period per task graph and
    # processor utilisation.
    throughput = analyse_throughput(mapping)
    for report in throughput.values():
        print(
            f"graph {report.graph_name!r}: minimum period "
            f"{report.minimum_period:.3f} Mcycles "
            f"(required {report.required_period:.0f}, slack {report.slack:.3f})"
        )
    for processor, utilisation in utilisation_summary(mapping).items():
        print(f"processor {processor!r}: {100.0 * utilisation:.1f}% of the TDM wheel allocated")
    print()

    # Materialise concrete TDM slot tables from the computed budgets.
    for processor_name, allocation in allocations_from_mapping(mapping).items():
        table = allocation.slot_table()
        owners = "".join((owner or ".")[0] for owner in table.owners)
        print(f"TDM wheel of {processor_name!r}: [{owners}]  (one character per granule)")


if __name__ == "__main__":
    main()
