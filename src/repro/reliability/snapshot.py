"""Session snapshots, crash recovery and durable trace replay.

A :class:`SessionSnapshot` captures everything a killed admission run needs
to resume without re-solving its history: the committed workload document,
the warm-start and interior vectors of the live
:class:`~repro.solver.parametric.SolveSession` (keyed by variable *name*,
so they re-apply cleanly to a freshly compiled program), the final-barrier
rung, the aggregate session statistics and the journal sequence number the
snapshot covers.  Snapshots are written atomically (temp file +
``os.replace``), so a crash mid-snapshot leaves the previous snapshot
intact.

:func:`restore_controller` rebuilds an
:class:`~repro.core.admission.AdmissionController` from snapshot +
journal: the workload is recompiled, the warm state re-installed, one warm
re-solve recommits the allocation (within 1e-6 of the uninterrupted run —
the incremental-equals-rebuild lock-in of the session layer), and only the
journal events *after* the snapshot are replayed through the controller.
Replayed outcomes are checked against the journalled ones — a divergence
means the journal does not describe this code/platform and raises
:class:`~repro.exceptions.JournalError` rather than silently rewriting
history.

:func:`replay_trace_durably` is the crash-safe counterpart of
:func:`repro.core.admission.replay_trace`: every committed event is
journalled, a snapshot is taken every ``snapshot_every`` events, and
``resume=True`` picks a killed run up at the exact event boundary it died
on, producing the same :class:`~repro.core.admission.TraceResult` as an
uninterrupted replay.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.admission import (
    AdmissionController,
    AdmissionTrace,
    TraceRecord,
    TraceResult,
    apply_trace_event,
)
from repro.core.allocator import JointAllocator
from repro.exceptions import JournalError, SnapshotError
from repro.obs.metrics import get_registry as _metrics_registry
from repro.reliability.faults import maybe_fail
from repro.reliability.journal import (
    AdmissionJournal,
    JournalContents,
    platform_fingerprint,
    read_journal,
)
from repro.solver.parametric import SessionStats

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SessionSnapshot",
    "default_snapshot_path",
    "load_snapshot",
    "restore_controller",
    "replay_trace_durably",
    "save_snapshot",
    "snapshot_controller",
]

SNAPSHOT_FORMAT_VERSION = 1


@dataclass
class SessionSnapshot:
    """Serialized controller/session state as of one journal sequence number."""

    journal_seq: int
    fingerprint: str
    workload_data: Optional[Dict[str, object]] = None   #: None = nothing running
    session_state: Optional[Dict[str, object]] = None   #: SolveSession.state_dict()
    stats: Optional[Dict[str, object]] = None           #: SessionStats.as_dict()
    objective_value: Optional[float] = None             #: committed objective

    def to_dict(self) -> Dict[str, object]:
        return {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "journal_seq": self.journal_seq,
            "fingerprint": self.fingerprint,
            "workload": self.workload_data,
            "session_state": self.session_state,
            "stats": self.stats,
            "objective_value": self.objective_value,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SessionSnapshot":
        version = int(data.get("format_version", SNAPSHOT_FORMAT_VERSION))
        if version > SNAPSHOT_FORMAT_VERSION:
            raise SnapshotError(
                f"snapshot format version {version} is newer than supported "
                f"version {SNAPSHOT_FORMAT_VERSION}"
            )
        return cls(
            journal_seq=int(data["journal_seq"]),
            fingerprint=str(data["fingerprint"]),
            workload_data=(
                None if data.get("workload") is None else dict(data["workload"])
            ),
            session_state=(
                None
                if data.get("session_state") is None
                else dict(data["session_state"])
            ),
            stats=None if data.get("stats") is None else dict(data["stats"]),
            objective_value=(
                None
                if data.get("objective_value") is None
                else float(data["objective_value"])
            ),
        )


def default_snapshot_path(journal_path: Union[str, Path]) -> Path:
    """Where ``replay_trace_durably`` keeps the journal's snapshot."""
    return Path(str(journal_path) + ".snapshot")


def snapshot_controller(
    controller: AdmissionController, journal_seq: int
) -> SessionSnapshot:
    """Capture a controller's durable state as of ``journal_seq``."""
    from repro.taskgraph.workload import workload_to_dict

    workload_data = None
    session_state = None
    if controller._session is not None and len(controller.workload):
        workload_data = workload_to_dict(controller.workload)
        session_state = controller._session._session.state_dict()
    stats = controller._stats
    return SessionSnapshot(
        journal_seq=int(journal_seq),
        fingerprint=platform_fingerprint(controller.platform),
        workload_data=workload_data,
        session_state=session_state,
        stats=None if stats is None else dict(stats.as_dict()),
        objective_value=(
            None if controller.mapped is None else controller.mapped.objective_value
        ),
    )


def save_snapshot(snapshot: SessionSnapshot, path: Union[str, Path]) -> None:
    """Write a snapshot atomically (temp file + ``os.replace``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        prefix=f".{path.name}-", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(snapshot.to_dict(), handle, sort_keys=True, indent=2)
            # fsync before the rename: os.replace is atomic in the
            # namespace, but without the sync a power loss could publish
            # the new name over empty (unflushed) content.
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def load_snapshot(path: Union[str, Path]) -> SessionSnapshot:
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise SnapshotError(f"cannot read snapshot {path}: {error}") from error
    if not isinstance(data, dict):
        raise SnapshotError(f"snapshot {path} is not a JSON object")
    return SessionSnapshot.from_dict(data)


def _load_stats(data: Optional[Dict[str, object]]) -> Optional[SessionStats]:
    if data is None:
        return None
    known = {
        key: value
        for key, value in data.items()
        if key in SessionStats.__dataclass_fields__
    }
    return SessionStats(**known)


def _coerce_journal(journal: object) -> JournalContents:
    if isinstance(journal, JournalContents):
        return journal
    return read_journal(journal)


def _coerce_snapshot(snapshot: object) -> Optional[SessionSnapshot]:
    if snapshot is None or isinstance(snapshot, SessionSnapshot):
        return snapshot
    return load_snapshot(snapshot)


def restore_controller(
    journal: object,
    snapshot: object = None,
    allocator: Optional[JointAllocator] = None,
) -> Tuple[AdmissionController, List[TraceRecord]]:
    """Rebuild a controller from a journal, optionally fast-forwarded by a snapshot.

    Events covered by the snapshot contribute their *recorded* outcomes to
    the returned timeline without re-solving anything; events after it are
    replayed through the restored controller (each replay is checked
    against its journalled outcome and counted as
    ``reliability.journal_replays``).
    """
    from repro.taskgraph.workload import workload_from_dict

    contents = _coerce_journal(journal)
    snap = _coerce_snapshot(snapshot)

    if snap is not None:
        if contents.fingerprint is not None and snap.fingerprint != contents.fingerprint:
            raise SnapshotError(
                f"snapshot platform fingerprint {snap.fingerprint!r} does not "
                f"match the journal's {contents.fingerprint!r} — refusing to "
                f"restore onto a different platform"
            )
        if snap.journal_seq > contents.last_seq:
            raise SnapshotError(
                f"snapshot covers journal seq {snap.journal_seq} but the "
                f"journal ends at seq {contents.last_seq} — the snapshot is "
                f"newer than the journal tail"
            )

    platform = contents.platform()
    records: List[TraceRecord] = []
    start_seq = 0

    if snap is not None and snap.workload_data is not None:
        workload = workload_from_dict(snap.workload_data)
        restored_fingerprint = platform_fingerprint(workload.platform)
        if restored_fingerprint != snap.fingerprint:
            raise SnapshotError(
                "the snapshot's workload was serialised against a different "
                "platform than its fingerprint claims — refusing to restore"
            )
        controller = AdmissionController(workload.platform, allocator=allocator)
        controller.workload = workload
        session = controller.allocator.workload_session(workload)
        if snap.session_state is not None:
            session._session.load_state(snap.session_state)
        stats = _load_stats(snap.stats)
        if stats is not None:
            session._adopt_stats(stats)
        controller._session = session
        controller._stats = session.stats
        # One warm re-solve recommits the allocation; the session layer's
        # incremental-equals-rebuild lock-in keeps it within 1e-6 of the
        # uninterrupted run's committed workload.
        controller.mapped = controller._resilient_allocate(session)
        start_seq = snap.journal_seq
    else:
        controller = AdmissionController(platform, allocator=allocator)
        if snap is not None:
            # Snapshot of an empty platform: only the statistics carry over.
            controller._stats = _load_stats(snap.stats)
            start_seq = snap.journal_seq

    registry = _metrics_registry()
    for entry in contents.entries:
        if entry.seq <= start_seq:
            records.append(entry.record())
            continue
        record = apply_trace_event(controller, entry.seq - 1, entry.event)
        if registry.enabled:
            registry.counter("reliability.journal_replays").inc()
        recorded_status = str(entry.outcome.get("status"))
        if record.status != recorded_status:
            raise JournalError(
                f"replay diverged at journal seq {entry.seq}: recorded status "
                f"{recorded_status!r}, replayed {record.status!r} — the "
                f"journal does not describe this platform/configuration"
            )
        records.append(record)
    return controller, records


def replay_trace_durably(
    trace: AdmissionTrace,
    journal_path: Union[str, Path],
    snapshot_path: Optional[Union[str, Path]] = None,
    snapshot_every: int = 0,
    allocator: Optional[JointAllocator] = None,
    resume: bool = False,
    fsync: bool = False,
) -> TraceResult:
    """Replay a trace with a durable journal and periodic snapshots.

    The crash-safe counterpart of :func:`repro.core.admission.replay_trace`:
    each committed event is appended to the journal at ``journal_path``
    (checksummed, truncation-tolerant), and — with ``snapshot_every > 0`` —
    a :class:`SessionSnapshot` is written atomically to ``snapshot_path``
    (default: ``<journal_path>.snapshot``) after every that-many events.

    ``resume=True`` restores a killed run: the controller is rebuilt from
    snapshot + journal (events already journalled are *not* re-asked; their
    recorded outcomes fill the timeline) and the replay continues with the
    first un-journalled trace event.  The returned result matches an
    uninterrupted replay within 1e-6.  Without ``resume``, a journal that
    already holds committed events is refused (:class:`~repro.exceptions.
    JournalError`) — appending a second copy of the trace would make a
    later restore double-apply every event.

    Every append is durable against process death; against power loss the
    journal is ``fsync``-ed before each snapshot is published and on close,
    so at most the events since the last barrier are lost.  ``fsync=True``
    hardens every single append into a power-loss barrier (one ``fsync``
    per event).
    """
    if snapshot_path is None:
        snapshot_path = default_snapshot_path(journal_path)
    snapshot_path = Path(snapshot_path)

    done = 0
    records: List[TraceRecord] = []
    if resume:
        contents = read_journal(journal_path)
        if (
            contents.fingerprint is not None
            and contents.fingerprint != platform_fingerprint(trace.platform)
        ):
            raise JournalError(
                f"journal {journal_path} was recorded against a different "
                f"platform than trace {trace.name!r} — refusing to resume"
            )
        snap = _coerce_snapshot(snapshot_path) if snapshot_path.exists() else None
        controller, records = restore_controller(
            contents, snap, allocator=allocator
        )
        done = contents.last_seq
        if done > len(trace.events):
            raise JournalError(
                f"journal {journal_path} holds {done} events but trace "
                f"{trace.name!r} only has {len(trace.events)} — wrong trace?"
            )
    else:
        existing = read_journal(journal_path)
        if existing.entries:
            # Appending a fresh replay onto an old journal would duplicate
            # every event, and a later restore would double-apply them.
            raise JournalError(
                f"journal {journal_path} already holds "
                f"{len(existing.entries)} committed events; resume it "
                f"(resume=True / --restore) to continue, or remove the "
                f"file to start over"
            )
        controller = AdmissionController(trace.platform, allocator=allocator)

    with AdmissionJournal(journal_path, fsync=fsync).open(
        trace.platform, name=trace.name
    ) as journal:
        for index in range(done, len(trace.events)):
            # The kill-and-restore chaos site: arming ``replay.event`` with
            # an ``exit`` action at the nth event simulates a crash at that
            # exact event boundary.
            maybe_fail("replay.event", label=str(index))
            event = trace.events[index]
            record = apply_trace_event(controller, index, event)
            records.append(record)
            journal.append_event(event, record)
            if snapshot_every > 0 and (index + 1) % snapshot_every == 0:
                # Power-loss barrier before publishing: a snapshot on disk
                # must never reference a journal seq that is not durable.
                journal.sync()
                save_snapshot(
                    snapshot_controller(controller, journal.seq), snapshot_path
                )

    stats = controller.session_stats
    return TraceResult(
        trace=trace,
        records=records,
        final_mapped=controller.mapped,
        solver_stats=dict(stats.as_dict()) if stats is not None else {},
    )
