"""Plain-text and Markdown rendering of experiment results.

The experiment drivers and benchmarks print the same rows the paper plots;
these helpers format them consistently for the console, for
``EXPERIMENTS.md`` and for test assertions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def _format_value(value: object, precision: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 4,
) -> str:
    """Render rows of dictionaries as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_format_value(row.get(col), precision) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), max(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(row[i].ljust(widths[i]) for i in range(len(columns))) for row in cells
    ]
    return "\n".join([header, separator, *body])


def render_markdown_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 4,
) -> str:
    """Render rows of dictionaries as a GitHub-flavoured Markdown table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    lines = [
        "| " + " | ".join(str(col) for col in columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_format_value(row.get(col), precision) for col in columns) + " |"
        )
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Iterable[object],
    series: Mapping[str, Sequence[float]],
    precision: int = 4,
) -> str:
    """Render one or more y-series against a common x-axis as a table."""
    x_list = list(x_values)
    rows: List[Dict[str, object]] = []
    for i, x in enumerate(x_list):
        row: Dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = values[i] if i < len(values) else None
        rows.append(row)
    return render_table(rows, precision=precision)
