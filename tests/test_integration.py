"""End-to-end integration tests across the whole stack.

Each test exercises the full pipeline: configuration → Algorithm-1 SOCP →
rounding → independent dataflow verification → TDM realisation, on scenarios
a user of the library would actually run.
"""

from __future__ import annotations

import pytest

from repro.analysis import analyse_throughput, screen_configuration
from repro.baselines import bisect_uniform_budget, run_two_phase, TwoPhaseOrder
from repro.core import ObjectiveWeights, allocate, verify_mapping
from repro.dataflow.construction import build_srdf_specification, instantiate_srdf
from repro.dataflow.simulation import meets_period
from repro.scheduling import allocations_from_mapping
from repro.taskgraph import ConfigurationBuilder
from repro.taskgraph.generators import (
    multi_job_configuration,
    producer_consumer_configuration,
)


class TestFullPipelineProducerConsumer:
    def test_allocation_to_tdm_slot_tables(self):
        """From throughput requirement to a concrete TDM wheel per processor."""
        config = producer_consumer_configuration(max_capacity=5)
        mapped = allocate(config, weights=ObjectiveWeights.prefer_budgets())

        allocations = allocations_from_mapping(mapped)
        for processor_name, allocation in allocations.items():
            assert allocation.is_feasible()
            scheduler = allocation.scheduler()
            for task_name, budget in allocation.budgets.items():
                assert scheduler.slot_table.budget_of(task_name) == pytest.approx(budget)
                # The worst-case TDM response of one execution stays within the
                # latency-rate bound the dataflow model assumed.
                graph, task = config.find_task(task_name)
                bound = scheduler.latency_rate_bound(task_name).worst_case_completion(task.wcet)
                observed = scheduler.worst_case_response(task_name, task.wcet, samples=32)
                assert observed <= bound + 1e-9

    def test_simulated_throughput_meets_requirement(self):
        config = producer_consumer_configuration(max_capacity=6)
        mapped = allocate(config, weights=ObjectiveWeights.prefer_budgets())
        graph = config.task_graphs[0]
        srdf = instantiate_srdf(
            build_srdf_specification(graph),
            graph,
            config.platform,
            mapped.budgets,
            mapped.buffer_capacities,
        )
        assert meets_period(srdf, graph.period, iterations=120)

    def test_joint_beats_two_phase_under_memory_pressure(self):
        config = producer_consumer_configuration(memory_capacity=7.0)
        joint = allocate(config, weights=ObjectiveWeights.prefer_budgets())
        budget_first = run_two_phase(config, TwoPhaseOrder.BUDGET_FIRST)
        buffer_first = run_two_phase(config, TwoPhaseOrder.BUFFER_FIRST)
        # Budget-first cannot place its 10-container buffer in 7 units of memory.
        assert not budget_first.feasible
        # Buffer-first works but needs far more processor budget than the joint flow.
        assert buffer_first.feasible
        assert buffer_first.total_budget > sum(joint.budgets.values())


class TestMultiJobScenario:
    def test_two_jobs_sharing_processors(self):
        config = multi_job_configuration(job_count=2, stages_per_job=3, max_capacity=8)
        screen = screen_configuration(config)
        assert screen.may_be_feasible
        mapped = allocate(config, weights=ObjectiveWeights.prefer_budgets())
        report = verify_mapping(mapped)
        assert report.is_valid, report.summary()
        # Both jobs' tasks share each processor; together they must fit.
        for processor_name in config.platform.processors:
            assert mapped.processor_utilisation(processor_name) <= 1.0 + 1e-9
        throughput = analyse_throughput(mapped)
        assert all(r.meets_requirement for r in throughput.values())

    def test_jobs_with_different_periods_get_different_budgets(self):
        config = (
            ConfigurationBuilder(name="mixed", granularity=1.0)
            .processor("p1", replenishment_interval=40.0)
            .processor("p2", replenishment_interval=40.0)
            .memory("m1")
            .task_graph("video", period=10.0)
            .task("vdec", wcet=1.0, processor="p1")
            .task("vout", wcet=1.0, processor="p2")
            .buffer("vbuf", source="vdec", target="vout", memory="m1", max_capacity=6)
            .task_graph("audio", period=40.0)
            .task("adec", wcet=1.0, processor="p1")
            .task("aout", wcet=1.0, processor="p2")
            .buffer("abuf", source="adec", target="aout", memory="m1", max_capacity=6)
            .build()
        )
        mapped = allocate(config, weights=ObjectiveWeights.prefer_budgets())
        assert verify_mapping(mapped).is_valid
        # The 4× slower audio job needs no more budget than the video job.
        assert mapped.budgets["adec"] <= mapped.budgets["vdec"] + 1e-9
        assert analyse_throughput(mapped)["audio"].meets_requirement


class TestHeterogeneousPlatform:
    def test_different_replenishment_intervals_and_overheads(self):
        config = (
            ConfigurationBuilder(name="hetero", granularity=0.5)
            .processor("fast", replenishment_interval=20.0, scheduling_overhead=1.0)
            .processor("slow", replenishment_interval=80.0, scheduling_overhead=2.0)
            .memory("sram", capacity=24.0)
            .task_graph("job", period=12.0)
            .task("front", wcet=1.5, processor="fast")
            .task("back", wcet=2.0, processor="slow")
            .buffer("link", source="front", target="back", memory="sram", container_size=2.0)
            .build()
        )
        mapped = allocate(config, weights=ObjectiveWeights.prefer_budgets())
        report = verify_mapping(mapped)
        assert report.is_valid, report.summary()
        # Budgets are multiples of the 0.5-cycle granularity.
        for budget in mapped.budgets.values():
            assert abs(budget / 0.5 - round(budget / 0.5)) < 1e-9
        # The buffer (plus rounding slack) fits in the 24-unit memory.
        assert mapped.total_storage("sram") <= 24.0

    def test_allocator_agrees_with_uniform_budget_oracle_on_symmetric_instance(self):
        config = producer_consumer_configuration(max_capacity=4)
        mapped = allocate(config, weights=ObjectiveWeights.prefer_budgets())
        oracle = bisect_uniform_budget(config, {"bab": 4})
        assert mapped.relaxed_budgets["wa"] == pytest.approx(oracle, rel=2e-3)

    def test_weights_steer_the_solution_along_the_tradeoff(self):
        config = producer_consumer_configuration(memory_capacity=12.0)
        cheap_budget = allocate(config, weights=ObjectiveWeights.prefer_budgets())
        cheap_buffer = allocate(config, weights=ObjectiveWeights.prefer_buffers())
        assert sum(cheap_budget.budgets.values()) <= sum(cheap_buffer.budgets.values())
        assert (
            sum(cheap_budget.buffer_capacities.values())
            >= sum(cheap_buffer.buffer_capacities.values())
        )
