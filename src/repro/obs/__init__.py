"""``repro.obs`` — the unified telemetry layer.

One dependency-free subsystem carries every observability concern of the
stack:

* **Tracing** (:mod:`repro.obs.trace`): hierarchical wall-clock spans with
  attributes and parent links, used by the solver (compile → phase I →
  centering per rung), the allocator (rounding), the admission controller
  and the batch executor.  ``obs.span("name")`` is the one instrumentation
  call; disabled spans still time themselves (so statistics keep their
  timing fields) but record nothing.
* **Metrics** (:mod:`repro.obs.metrics`): counters, gauges and quantile
  histograms in a process-global registry — per-solve Newton iterations,
  rung-ladder progress, elimination reuse, admission verdict latencies,
  batch cache hit rates.
* **Export** (:mod:`repro.obs.export`): a schema-versioned JSONL event log
  safe for concurrent writers, plus the human ``--trace`` / ``--profile``
  renderers.
* **Progress** (:mod:`repro.obs.progress`): live progress/ETA reporting for
  batch campaigns.

Telemetry is **off by default** and never affects results: span and metric
data stay out of cache keys and out of
:meth:`~repro.batch.executor.ItemResult.deterministic_dict`.

Two activation styles:

* :func:`configure` flips the global switch for a long-lived process
  (optionally attaching a JSONL sink);
* :func:`capture` scopes telemetry to a ``with`` block and hands back the
  recorded span trees and metrics snapshot — the CLI and the batch workers
  use this so telemetry from one operation never bleeds into another.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs import metrics
from repro.obs.export import (
    SCHEMA_VERSION,
    JsonlSink,
    read_records,
    render_metrics,
    render_profile,
    render_trace_tree,
    validate_record,
)
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.progress import ProgressReporter
from repro.obs.trace import Span, Tracer, get_tracer, span, span_tree_size

__all__ = [
    "SCHEMA_VERSION",
    "Capture",
    "JsonlSink",
    "MetricsRegistry",
    "ProgressReporter",
    "Span",
    "Tracer",
    "capture",
    "configure",
    "enabled",
    "get_registry",
    "get_tracer",
    "metrics",
    "read_records",
    "render_metrics",
    "render_profile",
    "render_trace_tree",
    "span",
    "span_tree_size",
    "validate_record",
]


def enabled() -> bool:
    """Whether telemetry collection is currently on."""
    return get_tracer().enabled


def configure(
    enabled: bool = True,
    sink: Optional[Union[JsonlSink, str, Path]] = None,
) -> None:
    """Switch global telemetry on or off (optionally attaching a JSONL sink).

    With a sink attached, every completed root span is appended to the event
    log as it closes; call :func:`flush_metrics` to append a metrics
    snapshot (e.g. once at process exit).
    """
    tracer = get_tracer()
    registry = get_registry()
    if sink is not None and not isinstance(sink, JsonlSink):
        sink = JsonlSink(sink)
    tracer.enabled = bool(enabled)
    registry.enabled = bool(enabled)
    tracer.sink = sink if enabled else None


def flush_metrics(sink: Optional[JsonlSink] = None) -> Dict[str, Dict[str, object]]:
    """Snapshot the global registry, appending it to ``sink`` (or the configured one)."""
    snapshot = get_registry().snapshot()
    sink = sink if sink is not None else get_tracer().sink
    if sink is not None and snapshot:
        sink.emit_metrics(snapshot)
    return snapshot


class Capture:
    """The telemetry recorded by one :func:`capture` block."""

    def __init__(self) -> None:
        #: Serialised root span trees, in completion order.
        self.spans: List[Dict[str, object]] = []
        #: Metrics snapshot of the block (name → instrument snapshot).
        self.metrics: Dict[str, Dict[str, object]] = {}

    def as_dict(self) -> Dict[str, object]:
        """The cross-process payload (schema-versioned, JSON-serialisable)."""
        return {
            "schema": SCHEMA_VERSION,
            "spans": list(self.spans),
            "metrics": dict(self.metrics),
        }

    @property
    def span_count(self) -> int:
        """Total spans recorded, descendants included."""
        return sum(span_tree_size(root) for root in self.spans)


@contextmanager
def capture(sink: Optional[Union[JsonlSink, str, Path]] = None):
    """Enable telemetry for one ``with`` block and collect what it records.

    The block runs with tracing and metrics enabled against *fresh* buffers;
    on exit the previous global state (enabled flags, sink, pending spans,
    registry contents) is restored exactly, so captures compose with an
    already-configured process and with each other.  The yielded
    :class:`Capture` is filled when the block exits — including exits through
    an exception, so a failed operation still hands back its partial trace.
    """
    tracer = get_tracer()
    registry = get_registry()
    if sink is not None and not isinstance(sink, JsonlSink):
        sink = JsonlSink(sink)

    previous_enabled = tracer.enabled
    previous_sink = tracer.sink
    previous_registry_enabled = registry.enabled
    with tracer._lock:
        previous_finished, tracer._finished = tracer._finished, []
    with registry._lock:
        previous_instruments, registry._instruments = registry._instruments, {}

    tracer.enabled = True
    tracer.sink = sink
    registry.enabled = True
    result = Capture()
    try:
        yield result
    finally:
        result.spans = [span.as_dict() for span in tracer.drain()]
        result.metrics = registry.snapshot()
        if sink is not None and result.metrics:
            sink.emit_metrics(result.metrics)
        tracer.enabled = previous_enabled
        tracer.sink = previous_sink
        registry.enabled = previous_registry_enabled
        with tracer._lock:
            tracer._finished = previous_finished + tracer._finished
        with registry._lock:
            registry._instruments = previous_instruments
