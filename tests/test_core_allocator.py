"""Tests of the joint allocator: solving, rounding, verification, error handling."""

from __future__ import annotations

import pytest

from repro.exceptions import InfeasibleProblemError
from repro.core import (
    AllocatorOptions,
    JointAllocator,
    ObjectiveWeights,
    allocate,
    verify_mapping,
)
from repro.baselines.budget_minimization import producer_consumer_minimum_budget
from repro.taskgraph import MappedConfiguration
from repro.taskgraph.generators import (
    chain_configuration,
    fork_join_configuration,
    multi_job_configuration,
    producer_consumer_configuration,
    ring_configuration,
)


class TestAllocateProducerConsumer:
    def test_relaxed_budget_matches_closed_form(self):
        for capacity in (2, 5, 8):
            config = producer_consumer_configuration(max_capacity=capacity)
            mapped = allocate(config, weights=ObjectiveWeights.prefer_budgets())
            expected = producer_consumer_minimum_budget(capacity)
            assert mapped.relaxed_budgets["wa"] == pytest.approx(expected, rel=1e-3)
            assert mapped.relaxed_budgets["wb"] == pytest.approx(expected, rel=1e-3)

    def test_rounded_budgets_are_granular_and_conservative(self):
        config = producer_consumer_configuration(max_capacity=5, granularity=2.0)
        mapped = allocate(config, weights=ObjectiveWeights.prefer_budgets())
        for task_name, budget in mapped.budgets.items():
            relaxed = mapped.relaxed_budgets[task_name]
            assert budget >= relaxed - 1e-6
            assert budget <= relaxed + 2.0 + 1e-6
            assert abs(budget / 2.0 - round(budget / 2.0)) < 1e-9

    def test_unconstrained_capacity_reaches_minimum_budget(self):
        """Without a capacity bound the budget falls to the ̺·χ/µ = 4 floor."""
        config = producer_consumer_configuration()
        mapped = allocate(config, weights=ObjectiveWeights.prefer_budgets())
        assert mapped.budgets["wa"] == pytest.approx(4.0)
        assert mapped.buffer_capacities["bab"] <= 11

    def test_verification_is_recorded(self):
        config = producer_consumer_configuration(max_capacity=4)
        mapped = allocate(config)
        assert "verification" in mapped.solver_info
        assert "verified" in str(mapped.solver_info["verification"])

    def test_mapping_passes_independent_verification(self):
        config = producer_consumer_configuration(max_capacity=3)
        mapped = allocate(config)
        report = verify_mapping(mapped)
        assert report.is_valid, report.summary()
        assert report.minimum_periods["T1"] <= 10.0 + 1e-9


class TestAllocateOtherTopologies:
    @pytest.mark.parametrize(
        "config_factory",
        [
            lambda: chain_configuration(stages=3, max_capacity=4),
            lambda: chain_configuration(stages=5, max_capacity=6),
            lambda: fork_join_configuration(branches=2, max_capacity=5),
            lambda: ring_configuration(stages=3, initial_tokens=2, max_capacity=6),
            lambda: multi_job_configuration(job_count=2, stages_per_job=2, max_capacity=6),
        ],
        ids=["chain3", "chain5", "forkjoin2", "ring3", "multijob2x2"],
    )
    def test_allocation_verifies_end_to_end(self, config_factory):
        config = config_factory()
        mapped = allocate(config, weights=ObjectiveWeights.prefer_budgets())
        report = verify_mapping(mapped)
        assert report.is_valid, report.summary()
        # Budgets respect the throughput-implied minimum.
        for graph in config.task_graphs:
            for task in graph.tasks:
                processor = config.platform.processor(task.processor)
                minimum = processor.replenishment_interval * task.wcet / graph.period
                assert mapped.budgets[task.name] >= minimum - 1e-6

    def test_memory_bound_forces_larger_budgets(self):
        roomy = allocate(
            producer_consumer_configuration(memory_capacity=12.0),
            weights=ObjectiveWeights.prefer_budgets(),
        )
        tight = allocate(
            producer_consumer_configuration(memory_capacity=4.0),
            weights=ObjectiveWeights.prefer_budgets(),
        )
        assert tight.buffer_capacities["bab"] < roomy.buffer_capacities["bab"]
        assert sum(tight.budgets.values()) > sum(roomy.budgets.values())


class TestInfeasibilityAndErrors:
    def test_capacity_bound_of_one_with_tight_period_is_infeasible(self):
        # With one container the minimum budget is ≈ 36.1; demand a period of
        # 2 Mcycles instead and even a full budget cannot deliver it.
        config = producer_consumer_configuration(period=2.0, max_capacity=1)
        with pytest.raises(InfeasibleProblemError):
            allocate(config)

    def test_memory_too_small_is_rejected_by_validation(self):
        config = producer_consumer_configuration(memory_capacity=1.0)
        with pytest.raises(Exception):
            # Validation rejects it before the solver runs (ModelError) —
            # either way the caller sees a ReproError subclass.
            allocate(config)

    def test_capacity_limits_argument(self):
        config = producer_consumer_configuration()
        allocator = JointAllocator(weights=ObjectiveWeights.prefer_budgets())
        mapped = allocator.allocate(config, capacity_limits={"bab": 2})
        assert mapped.buffer_capacities["bab"] <= 2
        expected = producer_consumer_minimum_budget(2)
        assert mapped.relaxed_budgets["wa"] == pytest.approx(expected, rel=1e-3)

    def test_budget_limits_argument(self):
        config = producer_consumer_configuration()
        allocator = JointAllocator(weights=ObjectiveWeights.prefer_buffers())
        mapped = allocator.allocate(config, budget_limits={"wa": 10.0, "wb": 10.0})
        assert mapped.budgets["wa"] <= 10.0 + 1e-9
        # A 10-Mcycle budget needs at least 5 containers (β_min(4) ≈ 10.6 > 10).
        assert mapped.buffer_capacities["bab"] >= 5

    def test_verification_failure_raises_when_requested(self):
        config = producer_consumer_configuration(max_capacity=4)
        allocator = JointAllocator(options=AllocatorOptions())
        mapped = allocator.allocate(config)
        # Corrupt the mapping and check that verification catches it.
        mapped.budgets["wa"] = 1.0
        report = allocator.verify(mapped)
        assert not report.is_valid

    def test_allocator_options_disable_verification(self):
        config = producer_consumer_configuration(max_capacity=4)
        allocator = JointAllocator(
            options=AllocatorOptions(verify=False, run_simulation=False)
        )
        mapped = allocator.allocate(config)
        assert "verification" not in mapped.solver_info


class TestVerifyMappingDetails:
    def _mapped(self, budgets, capacities) -> MappedConfiguration:
        config = producer_consumer_configuration()
        return MappedConfiguration(
            configuration=config, budgets=budgets, buffer_capacities=capacities
        )

    def test_detects_non_granular_budget(self):
        report = verify_mapping(self._mapped({"wa": 4.5, "wb": 4.0}, {"bab": 10}))
        assert any("not a multiple" in issue for issue in report.issues)

    def test_detects_missing_entries(self):
        report = verify_mapping(self._mapped({"wa": 4.0}, {"bab": 10}))
        assert any("missing budgets" in issue for issue in report.issues)

    def test_detects_throughput_violation(self):
        report = verify_mapping(self._mapped({"wa": 4.0, "wb": 4.0}, {"bab": 1}))
        assert any("periodic admissible schedule" in issue for issue in report.issues)

    def test_detects_capacity_below_one(self):
        report = verify_mapping(self._mapped({"wa": 4.0, "wb": 4.0}, {"bab": 0}))
        assert any("below one container" in issue for issue in report.issues)

    def test_detects_overloaded_processor(self):
        report = verify_mapping(self._mapped({"wa": 44.0, "wb": 4.0}, {"bab": 10}))
        assert not report.is_valid

    def test_detects_memory_overflow(self):
        config = producer_consumer_configuration(memory_capacity=4.0)
        mapped = MappedConfiguration(
            configuration=config,
            budgets={"wa": 36.0, "wb": 36.0},
            buffer_capacities={"bab": 8},
        )
        report = verify_mapping(mapped)
        assert any("memory" in issue for issue in report.issues)

    def test_summary_mentions_issue_count(self):
        report = verify_mapping(self._mapped({"wa": 4.5, "wb": 4.0}, {"bab": 0}))
        assert "issue" in report.summary()
        good = verify_mapping(self._mapped({"wa": 39.0, "wb": 39.0}, {"bab": 10}))
        assert good.is_valid
        assert "verified" in good.summary()
