"""Unit tests for the affine expression algebra."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import FormulationError
from repro.solver.expression import AffineExpression, Variable, linear_sum


class TestVariable:
    def test_requires_name(self):
        with pytest.raises(FormulationError):
            Variable("")

    def test_rejects_contradictory_bounds(self):
        with pytest.raises(FormulationError):
            Variable("x", lower=2.0, upper=1.0)

    def test_bounds_are_stored_as_floats(self):
        var = Variable("x", lower=1, upper=3)
        assert var.lower == 1.0 and isinstance(var.lower, float)
        assert var.upper == 3.0 and isinstance(var.upper, float)

    def test_identity_based_equality(self):
        a = Variable("x")
        b = Variable("x")
        assert a == a
        assert a != b
        assert len({a, b}) == 2


class TestAffineExpression:
    def test_variable_plus_constant(self):
        x = Variable("x")
        expr = x + 2.5
        assert expr.coefficient(x) == 1.0
        assert expr.constant == 2.5

    def test_right_subtraction(self):
        x = Variable("x")
        expr = 10.0 - x
        assert expr.coefficient(x) == -1.0
        assert expr.constant == 10.0

    def test_scalar_multiplication_and_division(self):
        x = Variable("x")
        expr = (x * 4.0) / 2.0
        assert expr.coefficient(x) == 2.0

    def test_negation(self):
        x = Variable("x")
        expr = -(x + 1.0)
        assert expr.coefficient(x) == -1.0
        assert expr.constant == -1.0

    def test_addition_merges_terms(self):
        x, y = Variable("x"), Variable("y")
        expr = (x + y) + (x - y) + 3.0
        assert expr.coefficient(x) == 2.0
        assert expr.coefficient(y) == 0.0
        assert expr.constant == 3.0

    def test_zero_coefficients_are_dropped(self):
        x = Variable("x")
        expr = x - x
        assert expr.is_constant()

    def test_product_of_expressions_is_rejected(self):
        x, y = Variable("x"), Variable("y")
        with pytest.raises(FormulationError):
            (x + 1.0) * y  # type: ignore[operator]

    def test_division_by_zero_is_rejected(self):
        x = Variable("x")
        with pytest.raises(FormulationError):
            (x + 1.0) / 0.0

    def test_non_finite_constant_rejected(self):
        x = Variable("x")
        with pytest.raises(FormulationError):
            x + math.inf

    def test_evaluate_requires_all_variables(self):
        x, y = Variable("x"), Variable("y")
        expr = x + y
        with pytest.raises(FormulationError):
            expr.evaluate({x: 1.0})

    def test_evaluate(self):
        x, y = Variable("x"), Variable("y")
        expr = 2.0 * x - 3.0 * y + 1.0
        assert expr.evaluate({x: 2.0, y: 1.0}) == pytest.approx(2.0)

    def test_coerce_rejects_unknown_types(self):
        with pytest.raises(FormulationError):
            AffineExpression.coerce("not an expression")  # type: ignore[arg-type]

    def test_as_pairs_is_deterministic(self):
        x, y = Variable("x"), Variable("y")
        expr = y + x
        pairs = expr.as_pairs()
        assert [var.name for var, _ in pairs] == ["x", "y"]


class TestLinearSum:
    def test_matches_repeated_addition(self):
        variables = [Variable(f"x{i}") for i in range(5)]
        summed = linear_sum([v * (i + 1) for i, v in enumerate(variables)] + [7.0])
        values = {v: float(i) for i, v in enumerate(variables)}
        manual = sum((i + 1) * i for i in range(5)) + 7.0
        assert summed.evaluate(values) == pytest.approx(manual)

    def test_empty_sum_is_zero(self):
        assert linear_sum([]).is_constant()
        assert linear_sum([]).constant == 0.0


@given(
    coefficients=st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1, max_size=6
    ),
    values=st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=6, max_size=6
    ),
    constant=st.floats(min_value=-100, max_value=100, allow_nan=False),
    scale=st.floats(min_value=-10, max_value=10, allow_nan=False),
)
def test_expression_algebra_matches_arithmetic(coefficients, values, constant, scale):
    """Building and evaluating expressions agrees with plain float arithmetic."""
    variables = [Variable(f"v{i}") for i in range(len(coefficients))]
    expr = linear_sum([c * v for c, v in zip(coefficients, variables)]) + constant
    scaled = expr * scale
    assignment = {v: values[i] for i, v in enumerate(variables)}
    expected = sum(c * values[i] for i, c in enumerate(coefficients)) + constant
    assert expr.evaluate(assignment) == pytest.approx(expected, rel=1e-9, abs=1e-6)
    assert scaled.evaluate(assignment) == pytest.approx(expected * scale, rel=1e-9, abs=1e-6)


@given(
    st.lists(st.floats(min_value=-50, max_value=50, allow_nan=False), min_size=2, max_size=5)
)
def test_sum_then_negate_cancels(values):
    """expr + (-expr) is the zero expression for arbitrary coefficients."""
    variables = [Variable(f"v{i}") for i in range(len(values))]
    expr = linear_sum([c * v for c, v in zip(values, variables)])
    cancelled = expr + (-expr)
    assert cancelled.is_constant()
    assert cancelled.constant == pytest.approx(0.0)
