"""Tests for periodic admissible schedules and the self-timed simulator."""

from __future__ import annotations

import pytest

from repro.exceptions import AnalysisError, SimulationError
from repro.dataflow.graph import Actor, Queue, SRDFGraph
from repro.dataflow.mcr import maximum_cycle_ratio
from repro.dataflow.schedule import (
    compute_schedule,
    rate_optimal_schedule,
    validate_schedule_against_period,
)
from repro.dataflow.simulation import measured_period, meets_period, simulate


class TestPeriodicSchedule:
    def test_schedule_satisfies_constraints(self, pipeline_srdf):
        schedule = compute_schedule(pipeline_srdf, period=3.0)
        assert schedule is not None
        assert schedule.satisfies_constraints(pipeline_srdf)
        assert validate_schedule_against_period(pipeline_srdf, schedule, 3.0)

    def test_schedule_none_below_mcr(self, pipeline_srdf):
        assert compute_schedule(pipeline_srdf, period=1.0) is None

    def test_start_times_are_periodic(self, pipeline_srdf):
        schedule = compute_schedule(pipeline_srdf, period=2.5)
        assert schedule is not None
        first = schedule.start_time("b", 1)
        fourth = schedule.start_time("b", 4)
        assert fourth - first == pytest.approx(3 * 2.5)
        finish = schedule.finish_time(pipeline_srdf, "b", 1)
        assert finish == pytest.approx(first + 2.0)

    def test_firing_index_is_one_based(self, pipeline_srdf):
        schedule = compute_schedule(pipeline_srdf, period=3.0)
        with pytest.raises(AnalysisError):
            schedule.start_time("a", 0)

    def test_rate_optimal_schedule(self, two_actor_cycle):
        schedule = rate_optimal_schedule(two_actor_cycle)
        assert schedule.period == pytest.approx(2.5, rel=1e-6)
        assert schedule.satisfies_constraints(two_actor_cycle)

    def test_rate_optimal_schedule_rejects_deadlock(self, deadlocked_srdf):
        with pytest.raises(AnalysisError):
            rate_optimal_schedule(deadlocked_srdf)

    def test_validation_rejects_too_slow_schedules(self, pipeline_srdf):
        schedule = compute_schedule(pipeline_srdf, period=5.0)
        assert schedule is not None
        assert not validate_schedule_against_period(pipeline_srdf, schedule, 3.0)


class TestSelfTimedSimulation:
    def test_pipeline_steady_state_period(self, pipeline_srdf):
        period = measured_period(pipeline_srdf, iterations=400)
        assert period == pytest.approx(maximum_cycle_ratio(pipeline_srdf), rel=2e-2)

    def test_two_actor_cycle_period(self, two_actor_cycle):
        period = measured_period(two_actor_cycle, iterations=200)
        assert period == pytest.approx(2.5, rel=1e-2)

    def test_first_firings_start_asap(self, pipeline_srdf):
        trace = simulate(pipeline_srdf, iterations=5)
        # 'a' has 2 tokens on its only input queue, so firings 1 and 2 start at 0.
        assert trace.start_time("a", 1) == pytest.approx(0.0)
        assert trace.start_time("a", 2) == pytest.approx(0.0)
        # 'b' waits for a's first finish.
        assert trace.start_time("b", 1) == pytest.approx(1.0)
        # 'c' waits for b's first finish.
        assert trace.start_time("c", 1) == pytest.approx(3.0)

    def test_deadlock_is_detected(self, deadlocked_srdf):
        with pytest.raises(SimulationError):
            simulate(deadlocked_srdf, iterations=5)

    def test_requires_positive_iterations(self, pipeline_srdf):
        with pytest.raises(SimulationError):
            simulate(pipeline_srdf, iterations=0)

    def test_trace_bounds_checked(self, pipeline_srdf):
        trace = simulate(pipeline_srdf, iterations=3)
        with pytest.raises(SimulationError):
            trace.start_time("a", 4)

    def test_meets_period_true_at_and_above_mcr(self, pipeline_srdf):
        mcr = maximum_cycle_ratio(pipeline_srdf)
        assert meets_period(pipeline_srdf, mcr * 1.001, iterations=50)
        assert meets_period(pipeline_srdf, mcr * 2.0, iterations=50)

    def test_meets_period_false_below_mcr(self, pipeline_srdf):
        mcr = maximum_cycle_ratio(pipeline_srdf)
        assert not meets_period(pipeline_srdf, mcr * 0.8, iterations=50)

    def test_meets_period_false_for_deadlock(self, deadlocked_srdf):
        assert not meets_period(deadlocked_srdf, 10.0)

    def test_auto_concurrency_without_self_loop(self):
        """Without a self-loop an actor may fire multiple times concurrently."""
        graph = SRDFGraph("autoconc")
        graph.add_actor(Actor("src", 4.0))
        graph.add_actor(Actor("snk", 1.0))
        graph.add_queue(Queue("q", "src", "snk", tokens=0))
        trace = simulate(graph, iterations=3)
        # All firings of src start immediately (no self-loop serialises them).
        assert trace.start_time("src", 3) == pytest.approx(0.0)

    def test_self_loop_serialises_firings(self):
        graph = SRDFGraph("serial")
        graph.add_actor(Actor("src", 4.0))
        graph.add_queue(Queue("self", "src", "src", tokens=1))
        trace = simulate(graph, iterations=3)
        assert trace.start_time("src", 3) == pytest.approx(8.0)

    def test_measured_period_requires_two_iterations(self, pipeline_srdf):
        trace = simulate(pipeline_srdf, iterations=1)
        with pytest.raises(SimulationError):
            trace.measured_period()
