"""Constraint types accepted by :class:`repro.solver.problem.ConeProgram`.

Three constraint families are supported:

* :class:`LinearConstraint` — an affine inequality or equality.
* :class:`HyperbolicConstraint` — ``x(v)·y(v) ≥ w`` with ``x, y`` affine and
  ``w > 0`` constant, restricted to the branch ``x > 0, y > 0``.  This is the
  constraint family used by the paper's Algorithm 1 (Constraint (8),
  ``λ(w_i)·β'(w_i) ≥ 1``) and is representable as a rotated second-order cone.
* :class:`SecondOrderConeConstraint` — ``‖A·v + b‖₂ ≤ c·v + d``, the general
  SOC form.  Hyperbolic constraints can be converted to this form via
  :meth:`HyperbolicConstraint.to_second_order_cone`.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence, Tuple

from repro.exceptions import FormulationError
from repro.solver.expression import AffineExpression, ExpressionLike, Variable

#: Constraint senses for :class:`LinearConstraint`.
LESS_EQUAL = "<="
GREATER_EQUAL = ">="
EQUAL = "=="

_VALID_SENSES = (LESS_EQUAL, GREATER_EQUAL, EQUAL)


class LinearConstraint:
    """An affine constraint ``lhs <sense> rhs``.

    Internally the constraint is normalised to ``expr <= 0`` (for
    inequalities) or ``expr == 0`` (for equalities) where
    ``expr = lhs - rhs`` for ``<=`` and ``rhs - lhs`` for ``>=``.
    """

    __slots__ = ("name", "expression", "sense", "_original_sense")

    def __init__(
        self,
        lhs: ExpressionLike,
        sense: str,
        rhs: ExpressionLike,
        name: Optional[str] = None,
    ) -> None:
        if sense not in _VALID_SENSES:
            raise FormulationError(
                f"unknown constraint sense {sense!r}; expected one of {_VALID_SENSES}"
            )
        lhs_expr = AffineExpression.coerce(lhs)
        rhs_expr = AffineExpression.coerce(rhs)
        if sense == GREATER_EQUAL:
            normalised = rhs_expr - lhs_expr
        else:
            normalised = lhs_expr - rhs_expr
        self.expression = normalised
        self.sense = EQUAL if sense == EQUAL else LESS_EQUAL
        self._original_sense = sense
        self.name = name or ""

    @property
    def is_equality(self) -> bool:
        return self.sense == EQUAL

    def violation(self, values: Mapping[Variable, float]) -> float:
        """Return the constraint violation at ``values`` (0.0 when satisfied)."""
        value = self.expression.evaluate(values)
        if self.is_equality:
            return abs(value)
        return max(0.0, value)

    def is_satisfied(
        self, values: Mapping[Variable, float], tolerance: float = 1e-8
    ) -> bool:
        return self.violation(values) <= tolerance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        op = "==" if self.is_equality else "<="
        label = f" [{self.name}]" if self.name else ""
        return f"LinearConstraint({self.expression!r} {op} 0{label})"


class HyperbolicConstraint:
    """The bilinear constraint ``x(v) · y(v) ≥ bound`` with ``x, y > 0``.

    The feasible region (restricted to the positive branch) is convex and is
    exactly the rotated second-order cone
    ``‖(2·sqrt(bound), x − y)‖₂ ≤ x + y``.
    """

    __slots__ = ("name", "x", "y", "bound")

    def __init__(
        self,
        x: ExpressionLike,
        y: ExpressionLike,
        bound: float = 1.0,
        name: Optional[str] = None,
    ) -> None:
        bound = float(bound)
        if not math.isfinite(bound) or bound <= 0.0:
            raise FormulationError(
                f"hyperbolic constraint bound must be a positive finite number, got {bound!r}"
            )
        self.x = AffineExpression.coerce(x)
        self.y = AffineExpression.coerce(y)
        if self.x.is_constant() and self.y.is_constant():
            raise FormulationError(
                "hyperbolic constraint between two constants; evaluate it instead"
            )
        self.bound = bound
        self.name = name or ""

    def margin(self, values: Mapping[Variable, float]) -> float:
        """Return ``x·y − bound`` at ``values`` (negative when violated)."""
        return self.x.evaluate(values) * self.y.evaluate(values) - self.bound

    def is_satisfied(
        self, values: Mapping[Variable, float], tolerance: float = 1e-8
    ) -> bool:
        x_val = self.x.evaluate(values)
        y_val = self.y.evaluate(values)
        return x_val > 0.0 and y_val > 0.0 and x_val * y_val >= self.bound - tolerance

    def to_second_order_cone(self) -> "SecondOrderConeConstraint":
        """Rewrite as ``‖(2·sqrt(bound), x − y)‖ ≤ x + y``."""
        rows = (
            AffineExpression({}, 2.0 * math.sqrt(self.bound)),
            self.x - self.y,
        )
        return SecondOrderConeConstraint(rows, self.x + self.y, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" [{self.name}]" if self.name else ""
        return f"HyperbolicConstraint(({self.x!r})*({self.y!r}) >= {self.bound}{label})"


class SecondOrderConeConstraint:
    """A second-order cone constraint ``‖rows(v)‖₂ ≤ rhs(v)``.

    ``rows`` is a sequence of affine expressions forming the vector inside the
    Euclidean norm; ``rhs`` is an affine expression.
    """

    __slots__ = ("name", "rows", "rhs")

    def __init__(
        self,
        rows: Sequence[ExpressionLike],
        rhs: ExpressionLike,
        name: Optional[str] = None,
    ) -> None:
        if not rows:
            raise FormulationError("a second-order cone constraint needs at least one row")
        self.rows: Tuple[AffineExpression, ...] = tuple(
            AffineExpression.coerce(row) for row in rows
        )
        self.rhs = AffineExpression.coerce(rhs)
        self.name = name or ""

    def margin(self, values: Mapping[Variable, float]) -> float:
        """Return ``rhs − ‖rows‖`` at ``values`` (negative when violated)."""
        norm = math.sqrt(sum(row.evaluate(values) ** 2 for row in self.rows))
        return self.rhs.evaluate(values) - norm

    def is_satisfied(
        self, values: Mapping[Variable, float], tolerance: float = 1e-8
    ) -> bool:
        return self.margin(values) >= -tolerance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" [{self.name}]" if self.name else ""
        return f"SecondOrderConeConstraint(dim={len(self.rows)}{label})"
