"""Tests of the task-graph → SRDF construction (Section II-C of the paper)."""

from __future__ import annotations


import pytest

from repro.exceptions import AllocationError
from repro.dataflow.construction import (
    ActorRole,
    QueueKind,
    actor_firing_duration,
    build_srdf_specification,
    finish_actor_name,
    instantiate_from_configuration,
    instantiate_srdf,
    start_actor_name,
)
from repro.dataflow.mcr import is_period_feasible, maximum_cycle_ratio
from repro.baselines.budget_minimization import producer_consumer_minimum_budget


class TestSpecification:
    def test_two_actors_per_task(self, paper_producer_consumer):
        graph = paper_producer_consumer.task_graphs[0]
        spec = build_srdf_specification(graph)
        assert len(spec.actors) == 2 * len(graph.tasks)
        roles = {(a.task, a.role) for a in spec.actors}
        assert ("wa", ActorRole.START) in roles
        assert ("wa", ActorRole.FINISH) in roles

    def test_queue_kinds_and_counts(self, paper_producer_consumer):
        graph = paper_producer_consumer.task_graphs[0]
        spec = build_srdf_specification(graph)
        assert len(spec.queues_of_kind(QueueKind.TASK_INTERNAL)) == 2
        assert len(spec.queues_of_kind(QueueKind.SELF_LOOP)) == 2
        assert len(spec.queues_of_kind(QueueKind.DATA)) == 1
        assert len(spec.queues_of_kind(QueueKind.SPACE)) == 1

    def test_queue_set_partition_matches_paper(self, paper_producer_consumer):
        """E1 holds exactly the outputs of v_i1 actors, E2 those of v_i2 actors."""
        graph = paper_producer_consumer.task_graphs[0]
        spec = build_srdf_specification(graph)
        for queue in spec.queues:
            if queue.kind is QueueKind.TASK_INTERNAL:
                assert queue.in_queue_set_e1 and not queue.in_queue_set_e2
            else:
                assert queue.in_queue_set_e2 and not queue.in_queue_set_e1

    def test_data_and_space_queue_orientation(self, paper_producer_consumer):
        graph = paper_producer_consumer.task_graphs[0]
        spec = build_srdf_specification(graph)
        data = spec.queue_for_buffer("bab", QueueKind.DATA)
        space = spec.queue_for_buffer("bab", QueueKind.SPACE)
        assert data.source == finish_actor_name("wa")
        assert data.target == start_actor_name("wb")
        assert space.source == finish_actor_name("wb")
        assert space.target == start_actor_name("wa")
        assert data.fixed_tokens == 0           # ι(b): initially empty
        assert space.fixed_tokens is None       # γ(b) − ι(b): decided by the optimiser

    def test_self_loop_has_one_token(self, paper_chain3):
        spec = build_srdf_specification(paper_chain3.task_graphs[0])
        for queue in spec.queues_of_kind(QueueKind.SELF_LOOP):
            assert queue.fixed_tokens == 1
            assert queue.source == queue.target


class TestFiringDurations:
    def test_formulas_match_paper(self):
        # ρ(v_i1) = ̺ − β ; ρ(v_i2) = ̺·χ/β
        assert actor_firing_duration(ActorRole.START, 40.0, 1.0, 8.0) == pytest.approx(32.0)
        assert actor_firing_duration(ActorRole.FINISH, 40.0, 1.0, 8.0) == pytest.approx(5.0)

    def test_full_budget_gives_zero_waiting(self):
        assert actor_firing_duration(ActorRole.START, 40.0, 1.0, 40.0) == pytest.approx(0.0)
        assert actor_firing_duration(ActorRole.FINISH, 40.0, 2.0, 40.0) == pytest.approx(2.0)

    def test_invalid_budgets_rejected(self):
        with pytest.raises(AllocationError):
            actor_firing_duration(ActorRole.START, 40.0, 1.0, 0.0)
        with pytest.raises(AllocationError):
            actor_firing_duration(ActorRole.FINISH, 40.0, 1.0, 41.0)


class TestInstantiation:
    def test_instantiated_graph_structure(self, paper_producer_consumer):
        graph = paper_producer_consumer.task_graphs[0]
        spec = build_srdf_specification(graph)
        srdf = instantiate_srdf(
            spec,
            graph,
            paper_producer_consumer.platform,
            budgets={"wa": 10.0, "wb": 10.0},
            capacities={"bab": 4},
        )
        assert len(srdf.actors) == 4
        assert len(srdf.queues) == 6
        assert srdf.tokens("bab.space") == 4
        assert srdf.tokens("bab.data") == 0
        assert srdf.firing_duration(start_actor_name("wa")) == pytest.approx(30.0)
        assert srdf.firing_duration(finish_actor_name("wa")) == pytest.approx(4.0)

    def test_missing_budget_or_capacity_rejected(self, paper_producer_consumer):
        graph = paper_producer_consumer.task_graphs[0]
        spec = build_srdf_specification(graph)
        with pytest.raises(AllocationError):
            instantiate_srdf(
                spec, graph, paper_producer_consumer.platform, {"wa": 10.0}, {"bab": 4}
            )
        with pytest.raises(AllocationError):
            instantiate_srdf(
                spec,
                graph,
                paper_producer_consumer.platform,
                {"wa": 10.0, "wb": 10.0},
                {},
            )

    def test_capacity_below_initial_tokens_rejected(self):
        from repro.taskgraph.generators import ring_configuration

        config = ring_configuration(stages=3, initial_tokens=2)
        graph = config.task_graphs[0]
        spec = build_srdf_specification(graph)
        budgets = {task.name: 10.0 for task in graph.tasks}
        capacities = {buffer.name: 2 for buffer in graph.buffers}
        capacities["b2"] = 1  # buffer b2 carries the 2 initial tokens
        with pytest.raises(AllocationError):
            instantiate_srdf(spec, graph, config.platform, budgets, capacities)

    def test_initial_tokens_split_between_data_and_space(self):
        from repro.taskgraph.generators import ring_configuration

        config = ring_configuration(stages=3, initial_tokens=2)
        graph = config.task_graphs[0]
        spec = build_srdf_specification(graph)
        budgets = {task.name: 10.0 for task in graph.tasks}
        capacities = {buffer.name: 5 for buffer in graph.buffers}
        srdf = instantiate_srdf(spec, graph, config.platform, budgets, capacities)
        # The feedback buffer has ι = 2 data tokens and 5 − 2 = 3 space tokens.
        assert srdf.tokens("b2.data") == 2
        assert srdf.tokens("b2.space") == 3

    def test_instantiate_from_configuration(self, paper_chain3):
        budgets = {task.name: 10.0 for _, task in paper_chain3.all_tasks()}
        capacities = {buffer.name: 5 for _, buffer in paper_chain3.all_buffers()}
        graphs = instantiate_from_configuration(paper_chain3, budgets, capacities)
        assert set(graphs) == {"chain3"}
        assert len(graphs["chain3"].actors) == 6


class TestConstructionSemantics:
    """The instantiated dataflow graph must reflect the known analytic behaviour."""

    def test_throughput_feasibility_matches_closed_form(self, paper_producer_consumer):
        """PAS feasibility of the instantiated graph flips exactly at β_min(d)."""
        graph = paper_producer_consumer.task_graphs[0]
        spec = build_srdf_specification(graph)
        for capacity in (2, 4, 7):
            beta_min = producer_consumer_minimum_budget(capacity)
            for factor, expected in ((1.02, True), (0.9, False)):
                budget = min(beta_min * factor, 40.0)
                srdf = instantiate_srdf(
                    spec,
                    graph,
                    paper_producer_consumer.platform,
                    budgets={"wa": budget, "wb": budget},
                    capacities={"bab": capacity},
                )
                assert is_period_feasible(srdf, graph.period) is expected, (
                    capacity,
                    factor,
                )

    def test_mcr_decreases_with_capacity(self, paper_producer_consumer):
        graph = paper_producer_consumer.task_graphs[0]
        spec = build_srdf_specification(graph)
        budgets = {"wa": 10.0, "wb": 10.0}
        periods = []
        for capacity in (1, 2, 4, 8):
            srdf = instantiate_srdf(
                spec, graph, paper_producer_consumer.platform, budgets, {"bab": capacity}
            )
            periods.append(maximum_cycle_ratio(srdf))
        assert all(earlier >= later - 1e-9 for earlier, later in zip(periods, periods[1:]))

    def test_mcr_decreases_with_budget(self, paper_producer_consumer):
        graph = paper_producer_consumer.task_graphs[0]
        spec = build_srdf_specification(graph)
        periods = []
        for budget in (5.0, 10.0, 20.0, 40.0):
            srdf = instantiate_srdf(
                spec,
                graph,
                paper_producer_consumer.platform,
                {"wa": budget, "wb": budget},
                {"bab": 4},
            )
            periods.append(maximum_cycle_ratio(srdf))
        assert all(earlier >= later - 1e-9 for earlier, later in zip(periods, periods[1:]))
