"""Telemetry exporters: the JSONL event log and the human renderers.

JSONL schema (version 1)
------------------------

Each line of the event log is one self-contained JSON object with a common
envelope::

    {"schema": 1, "kind": "span",    "pid": 123, "ts": 1718000000.0, "span": {...}}
    {"schema": 1, "kind": "metrics", "pid": 123, "ts": 1718000000.0, "metrics": {...}}

* ``schema`` — the format version (:data:`SCHEMA_VERSION`); readers must
  reject newer versions.
* ``kind`` — ``"span"`` (one completed *root* span tree, children nested
  under ``children``) or ``"metrics"`` (one registry snapshot keyed by
  metric name).
* ``pid``/``ts`` — writer process id and wall-clock timestamp, so records
  from concurrent writers interleave attributably.

:class:`JsonlSink` appends one line per record through a single
``os.write`` on an ``O_APPEND`` descriptor, which POSIX keeps atomic for
line-sized writes — N processes (or threads) share one log file without
interleaving partial lines.  :func:`validate_record` is the schema checker
used by the tests and the CI telemetry smoke job.

The human renderers turn captured telemetry into terminal output:
:func:`render_trace_tree` draws the nested span tree behind
``repro-map … --trace`` and :func:`render_profile` the per-span-name
aggregation (calls, total/mean time, share) behind ``--profile``;
:func:`render_metrics` formats a metrics snapshot (quantiles included).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.obs.trace import Span

__all__ = [
    "SCHEMA_VERSION",
    "JsonlSink",
    "read_records",
    "validate_record",
    "render_trace_tree",
    "render_profile",
    "render_metrics",
]

SCHEMA_VERSION = 1

#: Record kinds of schema version 1.
KIND_SPAN = "span"
KIND_METRICS = "metrics"


class JsonlSink:
    """Append-only JSONL event log, safe for concurrent writers.

    Every record becomes exactly one line, written with a single
    ``os.write`` call on a file descriptor opened with ``O_APPEND`` —
    concurrent processes and threads each append whole lines.  The
    descriptor is opened lazily (so a sink can be constructed in a parent
    process and first used inside a forked worker) and guarded by a
    per-process lock.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fd: Optional[int] = None
        self._lock = threading.Lock()

    # -- record emission ----------------------------------------------------
    def emit(self, record: Mapping[str, object]) -> None:
        """Write one already-enveloped record as a single JSONL line."""
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        with self._lock:
            if self._fd is None:
                self._fd = os.open(
                    str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                )
            os.write(self._fd, line)

    def emit_span(self, span_dict: Mapping[str, object]) -> None:
        """Envelope and write one completed root span tree."""
        self.emit(
            {
                "schema": SCHEMA_VERSION,
                "kind": KIND_SPAN,
                "pid": os.getpid(),
                "ts": time.time(),
                "span": dict(span_dict),
            }
        )

    def emit_metrics(self, snapshot: Mapping[str, Mapping[str, object]]) -> None:
        """Envelope and write one metrics-registry snapshot."""
        self.emit(
            {
                "schema": SCHEMA_VERSION,
                "kind": KIND_METRICS,
                "pid": os.getpid(),
                "ts": time.time(),
                "metrics": {name: dict(data) for name, data in snapshot.items()},
            }
        )

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_records(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a JSONL event log back into record dicts (strict: no blank junk)."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _validate_span(span: object, where: str) -> None:
    if not isinstance(span, dict):
        raise ValueError(f"{where}: span payload must be an object")
    if not isinstance(span.get("name"), str) or not span["name"]:
        raise ValueError(f"{where}: span needs a non-empty string 'name'")
    seconds = span.get("seconds")
    if not isinstance(seconds, (int, float)) or seconds < 0:
        raise ValueError(f"{where}: span 'seconds' must be a non-negative number")
    if span.get("status") not in ("ok", "error"):
        raise ValueError(f"{where}: span 'status' must be 'ok' or 'error'")
    if span["status"] == "error" and not isinstance(span.get("error"), str):
        raise ValueError(f"{where}: an error span needs a string 'error'")
    attributes = span.get("attributes", {})
    if not isinstance(attributes, dict):
        raise ValueError(f"{where}: span 'attributes' must be an object")
    children = span.get("children", [])
    if not isinstance(children, list):
        raise ValueError(f"{where}: span 'children' must be an array")
    for index, child in enumerate(children):
        _validate_span(child, f"{where}.children[{index}]")


def validate_record(record: Mapping[str, object]) -> None:
    """Raise :class:`ValueError` unless ``record`` is a valid v1 JSONL record."""
    schema = record.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported telemetry schema {schema!r} (supported: {SCHEMA_VERSION})"
        )
    kind = record.get("kind")
    if kind == KIND_SPAN:
        _validate_span(record.get("span"), "span")
    elif kind == KIND_METRICS:
        metrics = record.get("metrics")
        if not isinstance(metrics, dict):
            raise ValueError("metrics record needs a 'metrics' object")
        for name, data in metrics.items():
            if not isinstance(data, dict) or data.get("type") not in (
                "counter",
                "gauge",
                "histogram",
            ):
                raise ValueError(
                    f"metric {name!r} needs a 'type' of counter/gauge/histogram"
                )
    else:
        raise ValueError(f"unknown record kind {kind!r}")
    if not isinstance(record.get("pid"), int):
        raise ValueError("record needs an integer 'pid'")
    if not isinstance(record.get("ts"), (int, float)):
        raise ValueError("record needs a numeric 'ts'")


# -- human renderers ----------------------------------------------------------------
def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s "
    return f"{seconds * 1e3:8.3f} ms"


def _format_attributes(attributes: Mapping[str, object]) -> str:
    parts = []
    for key, value in sorted(attributes.items()):
        if isinstance(value, float):
            value = f"{value:.6g}"
        parts.append(f"{key}={value}")
    return "  ".join(parts)


def _span_like(span: Union[Span, Mapping[str, object]]) -> Dict[str, object]:
    return span.as_dict() if isinstance(span, Span) else dict(span)


def render_trace_tree(
    spans: Sequence[Union[Span, Mapping[str, object]]]
) -> str:
    """Draw completed span trees as an indented tree with durations."""
    lines: List[str] = []

    def walk(span: Mapping[str, object], prefix: str, is_last: bool, root: bool):
        connector = "" if root else ("└─ " if is_last else "├─ ")
        label = str(span["name"])
        if span.get("status") == "error":
            label += " [error]"
        detail = _format_attributes(span.get("attributes", {}))
        if span.get("error"):
            detail = (detail + "  " if detail else "") + str(span["error"])
        lines.append(
            f"{_format_seconds(float(span.get('seconds', 0.0)))}  "
            f"{prefix}{connector}{label}"
            + (f"  ({detail})" if detail else "")
        )
        children = list(span.get("children", []))
        child_prefix = prefix if root else prefix + ("   " if is_last else "│  ")
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1, root=False)

    roots = [_span_like(span) for span in spans]
    if not roots:
        return "trace: no spans recorded"
    for root in roots:
        walk(root, "", True, root=True)
    return "\n".join(lines)


def _accumulate_profile(
    span: Mapping[str, object], rows: Dict[str, Dict[str, float]]
) -> None:
    seconds = float(span.get("seconds", 0.0))
    children = list(span.get("children", []))
    child_seconds = sum(float(child.get("seconds", 0.0)) for child in children)
    row = rows.setdefault(
        str(span["name"]), {"calls": 0.0, "total": 0.0, "self": 0.0, "errors": 0.0}
    )
    row["calls"] += 1
    row["total"] += seconds
    # Self time: this span's duration minus its direct children's.
    row["self"] += max(0.0, seconds - child_seconds)
    if span.get("status") == "error":
        row["errors"] += 1
    for child in children:
        _accumulate_profile(child, rows)


def render_profile(spans: Sequence[Union[Span, Mapping[str, object]]]) -> str:
    """Aggregate span trees per span name: calls, total/self time, share."""
    rows: Dict[str, Dict[str, float]] = {}
    for span in spans:
        _accumulate_profile(_span_like(span), rows)
    if not rows:
        return "profile: no spans recorded"
    wall = sum(
        float(_span_like(span).get("seconds", 0.0)) for span in spans
    ) or 1.0
    lines = [
        f"{'span':<24} {'calls':>7} {'total':>12} {'self':>12} {'share':>7}"
    ]
    for name, row in sorted(rows.items(), key=lambda item: -item[1]["total"]):
        label = name + (f" [{int(row['errors'])} err]" if row["errors"] else "")
        lines.append(
            f"{label:<24} {int(row['calls']):>7} "
            f"{_format_seconds(row['total']):>12} "
            f"{_format_seconds(row['self']):>12} "
            f"{100.0 * row['total'] / wall:>6.1f}%"
        )
    return "\n".join(lines)


def render_metrics(snapshot: Mapping[str, Mapping[str, object]]) -> str:
    """Format a metrics snapshot: counters/gauges as values, histograms with quantiles."""
    if not snapshot:
        return "metrics: none recorded"
    lines = ["metrics:"]
    for name, data in sorted(snapshot.items()):
        kind = data.get("type")
        if kind == "histogram":
            count = int(data.get("count", 0))
            if count == 0:
                continue
            mean = float(data.get("sum", 0.0)) / count

            def fmt(value: object) -> str:
                return "-" if value is None else f"{float(value):.6g}"

            lines.append(
                f"  {name:<36} count={count} mean={mean:.6g} "
                f"p50={fmt(data.get('p50'))} p90={fmt(data.get('p90'))} "
                f"p99={fmt(data.get('p99'))} max={fmt(data.get('max'))}"
            )
        else:
            value = data.get("value")
            if isinstance(value, float):
                value = f"{value:.6g}"
            lines.append(f"  {name:<36} {value}")
    return "\n".join(lines)
