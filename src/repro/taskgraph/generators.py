"""Synthetic configuration generators.

These generators produce the workloads used by the examples, the test-suite
and the scalability benchmarks:

* :func:`producer_consumer_configuration` — the two-task graph of the paper's
  first experiment (Figure 1 / Figure 2).
* :func:`chain_configuration` — an ``n``-stage pipeline; ``n = 3`` is the
  paper's second experiment (Figure 3).
* :func:`fork_join_configuration` — a split/merge graph exercising tasks whose
  budget interacts with several buffers at once.
* :func:`ring_configuration` — a cyclic graph with initial tokens (functional
  pipelining / feedback loops).
* :func:`random_dag_configuration` — pseudo-random layered DAGs for
  scalability studies (seeded, deterministic).
* :func:`multi_job_configuration` — several independent jobs sharing the same
  processors, the multi-job scenario motivating the paper's introduction.
* :func:`csdf_chain_configuration` — a pipeline of cyclo-static tasks with
  per-phase execution times and token rates.
* :func:`heterogeneous_random_configuration` — seeded random DAGs on a
  big/little platform with per-type cycle costs (and optional DVFS levels).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.exceptions import ModelError
from repro.taskgraph.buffer import Buffer
from repro.taskgraph.configuration import Configuration
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.platform import heterogeneous_platform, homogeneous_platform
from repro.taskgraph.task import Task

#: Parameter values of the paper's experiments (all in Mcycles).
PAPER_REPLENISHMENT_INTERVAL = 40.0
PAPER_WCET = 1.0
PAPER_PERIOD = 10.0


def producer_consumer_configuration(
    replenishment_interval: float = PAPER_REPLENISHMENT_INTERVAL,
    wcet: float = PAPER_WCET,
    period: float = PAPER_PERIOD,
    max_capacity: Optional[int] = None,
    memory_capacity: Optional[float] = None,
    granularity: float = 1.0,
    budget_weight: float = 1.0,
    capacity_weight: float = 1e-3,
) -> Configuration:
    """The producer-consumer task graph ``T1`` of the paper (Figure 1).

    Two tasks ``wa`` and ``wb`` on separate processors, connected by a single
    buffer ``bab`` whose containers are all initially empty.  The default
    weights prefer budget minimisation over buffer minimisation, as in the
    paper's first experiment.
    """
    platform = homogeneous_platform(
        processor_count=2,
        replenishment_interval=replenishment_interval,
        memory_capacity=memory_capacity,
    )
    graph = TaskGraph(name="T1", period=period)
    graph.add_task(Task(name="wa", wcet=wcet, processor="p1", budget_weight=budget_weight))
    graph.add_task(Task(name="wb", wcet=wcet, processor="p2", budget_weight=budget_weight))
    graph.add_buffer(
        Buffer(
            name="bab",
            source="wa",
            target="wb",
            memory="m1",
            container_size=1.0,
            initial_tokens=0,
            capacity_weight=capacity_weight,
            max_capacity=max_capacity,
        )
    )
    return Configuration(
        platform=platform,
        task_graphs=[graph],
        granularity=granularity,
        name="producer-consumer",
    )


def chain_configuration(
    stages: int = 3,
    replenishment_interval: float = PAPER_REPLENISHMENT_INTERVAL,
    wcet: float = PAPER_WCET,
    period: float = PAPER_PERIOD,
    max_capacity: Optional[int] = None,
    memory_capacity: Optional[float] = None,
    granularity: float = 1.0,
    budget_weight: float = 1.0,
    capacity_weight: float = 1e-3,
) -> Configuration:
    """An ``n``-stage pipeline; ``stages=3`` reproduces the paper's graph ``T2``.

    Every stage runs on its own processor, so budgets only interact through
    the throughput constraint and the buffer capacities.
    """
    if stages < 2:
        raise ModelError("a chain needs at least two stages")
    platform = homogeneous_platform(
        processor_count=stages,
        replenishment_interval=replenishment_interval,
        memory_capacity=memory_capacity,
    )
    graph = TaskGraph(name=f"chain{stages}", period=period)
    names = [f"w{chr(ord('a') + i)}" if i < 26 else f"w{i}" for i in range(stages)]
    for i, task_name in enumerate(names):
        graph.add_task(
            Task(
                name=task_name,
                wcet=wcet,
                processor=f"p{i + 1}",
                budget_weight=budget_weight,
            )
        )
    for i in range(stages - 1):
        graph.add_buffer(
            Buffer(
                name=f"b{names[i][1:]}{names[i + 1][1:]}",
                source=names[i],
                target=names[i + 1],
                memory="m1",
                capacity_weight=capacity_weight,
                max_capacity=max_capacity,
            )
        )
    return Configuration(
        platform=platform,
        task_graphs=[graph],
        granularity=granularity,
        name=f"chain-{stages}",
    )


def fork_join_configuration(
    branches: int = 2,
    replenishment_interval: float = PAPER_REPLENISHMENT_INTERVAL,
    wcet: float = PAPER_WCET,
    period: float = PAPER_PERIOD,
    max_capacity: Optional[int] = None,
    granularity: float = 1.0,
    capacity_weight: float = 1e-3,
) -> Configuration:
    """A fork-join (split/merge) graph: source → ``branches`` workers → sink."""
    if branches < 1:
        raise ModelError("a fork-join graph needs at least one branch")
    processor_count = branches + 2
    platform = homogeneous_platform(
        processor_count=processor_count,
        replenishment_interval=replenishment_interval,
    )
    graph = TaskGraph(name=f"forkjoin{branches}", period=period)
    graph.add_task(Task(name="split", wcet=wcet, processor="p1"))
    graph.add_task(Task(name="merge", wcet=wcet, processor=f"p{processor_count}"))
    for i in range(branches):
        worker = f"worker{i + 1}"
        graph.add_task(Task(name=worker, wcet=wcet, processor=f"p{i + 2}"))
        graph.add_buffer(
            Buffer(
                name=f"b_split_{worker}",
                source="split",
                target=worker,
                memory="m1",
                capacity_weight=capacity_weight,
                max_capacity=max_capacity,
            )
        )
        graph.add_buffer(
            Buffer(
                name=f"b_{worker}_merge",
                source=worker,
                target="merge",
                memory="m1",
                capacity_weight=capacity_weight,
                max_capacity=max_capacity,
            )
        )
    return Configuration(
        platform=platform,
        task_graphs=[graph],
        granularity=granularity,
        name=f"fork-join-{branches}",
    )


def ring_configuration(
    stages: int = 3,
    initial_tokens: int = 2,
    replenishment_interval: float = PAPER_REPLENISHMENT_INTERVAL,
    wcet: float = PAPER_WCET,
    period: float = PAPER_PERIOD,
    max_capacity: Optional[int] = None,
    granularity: float = 1.0,
    capacity_weight: float = 1e-3,
) -> Configuration:
    """A cyclic pipeline with a feedback buffer carrying initial tokens.

    The feedback edge makes the task graph itself cyclic (not just the derived
    dataflow graph), which exercises the handling of initially filled
    containers ``ι(b) > 0``.
    """
    if stages < 2:
        raise ModelError("a ring needs at least two stages")
    if initial_tokens < 1:
        raise ModelError("a ring needs at least one initial token to be deadlock-free")
    platform = homogeneous_platform(
        processor_count=stages, replenishment_interval=replenishment_interval
    )
    graph = TaskGraph(name=f"ring{stages}", period=period)
    names = [f"t{i}" for i in range(stages)]
    for i, task_name in enumerate(names):
        graph.add_task(Task(name=task_name, wcet=wcet, processor=f"p{i + 1}"))
    for i in range(stages):
        source = names[i]
        target = names[(i + 1) % stages]
        is_feedback = i == stages - 1
        graph.add_buffer(
            Buffer(
                name=f"b{i}",
                source=source,
                target=target,
                memory="m1",
                initial_tokens=initial_tokens if is_feedback else 0,
                capacity_weight=capacity_weight,
                max_capacity=max_capacity,
            )
        )
    return Configuration(
        platform=platform,
        task_graphs=[graph],
        granularity=granularity,
        name=f"ring-{stages}",
    )


def random_dag_configuration(
    task_count: int,
    processor_count: int,
    seed: int = 0,
    edge_probability: float = 0.3,
    replenishment_interval: float = PAPER_REPLENISHMENT_INTERVAL,
    period: float = PAPER_PERIOD,
    wcet_range: Sequence[float] = (0.5, 2.0),
    max_capacity: Optional[int] = None,
    granularity: float = 1.0,
    capacity_weight: float = 1e-3,
) -> Configuration:
    """A seeded pseudo-random layered DAG used for scalability benchmarks.

    Tasks are ordered ``t0 .. t{n-1}``; an edge can only go from a lower to a
    higher index, which guarantees acyclicity.  A spine of edges
    ``t_i → t_{i+1}`` guarantees weak connectivity.  Task WCETs are drawn
    uniformly from ``wcet_range`` but capped so that the configuration remains
    feasible for the given period.
    """
    if task_count < 2:
        raise ModelError("random DAGs need at least two tasks")
    if processor_count < 1:
        raise ModelError("random DAGs need at least one processor")
    rng = random.Random(seed)
    platform = homogeneous_platform(
        processor_count=processor_count, replenishment_interval=replenishment_interval
    )
    graph = TaskGraph(name=f"random{task_count}", period=period)

    # Keep per-processor load feasible: the minimum budget of a task is
    # replenishment_interval * wcet / period, and per processor the budgets
    # (plus one granule each) must fit in the replenishment interval.
    per_processor = -(-task_count // processor_count)  # ceil division
    max_total_wcet = period * (1.0 - 0.05) - per_processor * granularity * period / replenishment_interval
    wcet_cap = max(1e-3, max_total_wcet / per_processor)

    low, high = float(wcet_range[0]), float(wcet_range[1])
    for i in range(task_count):
        wcet = min(rng.uniform(low, high), wcet_cap, period)
        graph.add_task(
            Task(name=f"t{i}", wcet=wcet, processor=f"p{(i % processor_count) + 1}")
        )
    edge_id = 0
    for i in range(task_count - 1):
        graph.add_buffer(
            Buffer(
                name=f"e{edge_id}",
                source=f"t{i}",
                target=f"t{i + 1}",
                memory="m1",
                capacity_weight=capacity_weight,
                max_capacity=max_capacity,
            )
        )
        edge_id += 1
        for j in range(i + 2, task_count):
            if rng.random() < edge_probability:
                graph.add_buffer(
                    Buffer(
                        name=f"e{edge_id}",
                        source=f"t{i}",
                        target=f"t{j}",
                        memory="m1",
                        capacity_weight=capacity_weight,
                        max_capacity=max_capacity,
                    )
                )
                edge_id += 1
    return Configuration(
        platform=platform,
        task_graphs=[graph],
        granularity=granularity,
        name=f"random-dag-{task_count}-{seed}",
    )


def multi_job_configuration(
    job_count: int = 2,
    stages_per_job: int = 2,
    replenishment_interval: float = PAPER_REPLENISHMENT_INTERVAL,
    wcet: float = PAPER_WCET,
    period: float = PAPER_PERIOD,
    max_capacity: Optional[int] = None,
    granularity: float = 1.0,
    capacity_weight: float = 1e-3,
) -> Configuration:
    """Several independent pipeline jobs sharing the same processors.

    Stage ``i`` of every job is bound to processor ``p{i+1}``, so the jobs
    compete for budget on each processor — the multi-job resource sharing
    scenario that motivates budget schedulers in the paper's introduction.
    """
    if job_count < 1:
        raise ModelError("need at least one job")
    if stages_per_job < 2:
        raise ModelError("each job needs at least two stages")
    platform = homogeneous_platform(
        processor_count=stages_per_job, replenishment_interval=replenishment_interval
    )
    graphs: List[TaskGraph] = []
    for j in range(job_count):
        graph = TaskGraph(name=f"job{j}", period=period)
        names = [f"job{j}_s{i}" for i in range(stages_per_job)]
        for i, task_name in enumerate(names):
            graph.add_task(Task(name=task_name, wcet=wcet, processor=f"p{i + 1}"))
        for i in range(stages_per_job - 1):
            graph.add_buffer(
                Buffer(
                    name=f"job{j}_b{i}",
                    source=names[i],
                    target=names[i + 1],
                    memory="m1",
                    capacity_weight=capacity_weight,
                    max_capacity=max_capacity,
                )
            )
        graphs.append(graph)
    return Configuration(
        platform=platform,
        task_graphs=graphs,
        granularity=granularity,
        name=f"multi-job-{job_count}x{stages_per_job}",
    )


def csdf_chain_configuration(
    stages: int = 3,
    phases_per_task: int = 2,
    replenishment_interval: float = PAPER_REPLENISHMENT_INTERVAL,
    wcet: float = PAPER_WCET,
    period: float = PAPER_PERIOD,
    max_capacity: Optional[int] = None,
    granularity: float = 1.0,
    budget_weight: float = 1.0,
    capacity_weight: float = 1e-3,
) -> Configuration:
    """A pipeline of cyclo-static tasks, each cycling through several phases.

    The phase execution times of every task sum to ``wcet`` (so the per-
    iteration processor load matches :func:`chain_configuration`) but are
    skewed towards the later phases, and every phase produces/consumes one
    token, which makes each task fire ``phases_per_task`` times per graph
    iteration.
    """
    if stages < 2:
        raise ModelError("a chain needs at least two stages")
    if phases_per_task < 1:
        raise ModelError("tasks need at least one phase")
    platform = homogeneous_platform(
        processor_count=stages,
        replenishment_interval=replenishment_interval,
    )
    graph = TaskGraph(name=f"csdf-chain{stages}", period=period)
    names = [f"w{chr(ord('a') + i)}" if i < 26 else f"w{i}" for i in range(stages)]
    weight_total = phases_per_task * (phases_per_task + 1) / 2
    phases = tuple(wcet * (j + 1) / weight_total for j in range(phases_per_task))
    unit_rates = (1,) * phases_per_task
    for i, task_name in enumerate(names):
        graph.add_task(
            Task(
                name=task_name,
                wcet=0.0,  # derived from the phases
                phases=phases,
                processor=f"p{i + 1}",
                budget_weight=budget_weight,
            )
        )
    for i in range(stages - 1):
        graph.add_buffer(
            Buffer(
                name=f"b{names[i][1:]}{names[i + 1][1:]}",
                source=names[i],
                target=names[i + 1],
                memory="m1",
                capacity_weight=capacity_weight,
                max_capacity=max_capacity,
                production_rates=unit_rates,
                consumption_rates=unit_rates,
            )
        )
    return Configuration(
        platform=platform,
        task_graphs=[graph],
        granularity=granularity,
        name=f"csdf-chain-{stages}x{phases_per_task}",
    )


def heterogeneous_random_configuration(
    task_count: int = 6,
    seed: int = 0,
    big_count: int = 2,
    little_count: int = 2,
    big_speed: float = 2.0,
    dvfs_levels: Optional[Sequence[float]] = None,
    edge_probability: float = 0.2,
    replenishment_interval: float = PAPER_REPLENISHMENT_INTERVAL,
    period: float = PAPER_PERIOD,
    cycle_range: Sequence[float] = (0.5, 2.0),
    max_capacity: Optional[int] = None,
    granularity: float = 1.0,
    capacity_weight: float = 1e-3,
) -> Configuration:
    """A seeded random DAG bound round-robin onto a big/little platform.

    The "big" processors run at ``big_speed`` (optionally with discrete DVFS
    levels, which must include ``big_speed``); every task carries a
    ``cycles_by_type`` table whose "little" entry is 20–60 % more expensive
    than the "big" entry, modelling an ISA/micro-architecture mismatch on top
    of the clock-speed difference.
    """
    if task_count < 2:
        raise ModelError("random DAGs need at least two tasks")
    if big_count < 1 or little_count < 1:
        raise ModelError("the big/little platform needs at least one of each type")
    rng = random.Random(seed)
    platform = heterogeneous_platform(
        {
            "big": {
                "count": big_count,
                "speed": big_speed,
                "dvfs_levels": tuple(dvfs_levels) if dvfs_levels is not None else None,
            },
            "little": {"count": little_count},
        },
        replenishment_interval=replenishment_interval,
    )
    processor_names = list(platform.processors)
    processor_count = len(processor_names)
    graph = TaskGraph(name=f"hetero{task_count}", period=period)

    # Keep the load screen feasible even on a unit-speed "little" processor:
    # the worst effective cycle count of a task is its "little" entry, which
    # is at most 1.6x the drawn base cost.
    per_processor = -(-task_count // processor_count)  # ceil division
    max_total_wcet = period * (1.0 - 0.05) - per_processor * granularity * period / replenishment_interval
    wcet_cap = max(1e-3, max_total_wcet / per_processor / 1.6)

    low, high = float(cycle_range[0]), float(cycle_range[1])
    for i in range(task_count):
        base = min(rng.uniform(low, high), wcet_cap, period / 1.6)
        little_factor = rng.uniform(1.2, 1.6)
        graph.add_task(
            Task(
                name=f"t{i}",
                wcet=base,
                processor=processor_names[i % processor_count],
                cycles_by_type={"big": base, "little": base * little_factor},
            )
        )
    edge_id = 0
    for i in range(task_count - 1):
        graph.add_buffer(
            Buffer(
                name=f"e{edge_id}",
                source=f"t{i}",
                target=f"t{i + 1}",
                memory="m1",
                capacity_weight=capacity_weight,
                max_capacity=max_capacity,
            )
        )
        edge_id += 1
        for j in range(i + 2, task_count):
            if rng.random() < edge_probability:
                graph.add_buffer(
                    Buffer(
                        name=f"e{edge_id}",
                        source=f"t{i}",
                        target=f"t{j}",
                        memory="m1",
                        capacity_weight=capacity_weight,
                        max_capacity=max_capacity,
                    )
                )
                edge_id += 1
    return Configuration(
        platform=platform,
        task_graphs=[graph],
        granularity=granularity,
        name=f"hetero-{task_count}-{seed}",
    )
