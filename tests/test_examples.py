"""Smoke tests that keep every example script runnable.

The examples double as documentation; running them here guarantees they stay
in sync with the public API.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda path: path.stem)
def test_example_runs_and_produces_output(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"


def test_expected_examples_are_present():
    names = {path.stem for path in EXAMPLE_SCRIPTS}
    assert {
        "quickstart",
        "producer_consumer_tradeoff",
        "three_stage_chain",
        "multi_job_mapping",
        "binding_and_latency",
        "heterogeneous_csdf",
    } <= names


def test_quickstart_mentions_budgets_and_buffers(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "budget" in output.lower()
    assert "TDM wheel" in output


def test_tradeoff_example_reports_the_non_linear_tradeoff(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "producer_consumer_tradeoff.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "Figure 2(a)" in output
    assert "non-linear" in output


def test_heterogeneous_csdf_example_covers_both_generalisations(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "heterogeneous_csdf.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "repetition vector" in output
    assert "DVFS sweep" in output
    assert "best operating point" in output
