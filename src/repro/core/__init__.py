"""Core contribution of the paper: simultaneous budget and buffer-size computation.

* :class:`~repro.core.formulation.SocpFormulation` — Algorithm 1 as a cone program.
* :class:`~repro.core.allocator.JointAllocator` / :func:`~repro.core.allocator.allocate`
  — solve, round conservatively, verify, and return a mapped configuration.
* :class:`~repro.core.allocator.AllocationSession` /
  :class:`~repro.core.formulation.ParametricSocpFormulation` — compile-once,
  warm-started re-solve for families of allocations (trade-off sweeps).
* :class:`~repro.core.formulation.FormulationBlock` /
  :class:`~repro.core.formulation.WorkloadSocpFormulation` — per-application
  formulation blocks joined by shared capacity rows;
  :meth:`~repro.core.allocator.JointAllocator.allocate_workload` and
  :class:`~repro.core.allocator.WorkloadSession` solve whole multi-application
  workloads on one shared platform.
* :mod:`~repro.core.admission` — run-time admission control: incremental
  session editing (:meth:`~repro.core.allocator.WorkloadSession.add_application`
  / ``remove_application``), :class:`~repro.core.admission.AdmissionController`
  with structured admit/reject verdicts, and replayable
  :class:`~repro.core.admission.AdmissionTrace` event sequences.
* :class:`~repro.core.tradeoff.TradeoffExplorer` — budget/buffer trade-off sweeps.
* :class:`~repro.core.objective.ObjectiveWeights` — objective weighting presets.
* :mod:`~repro.core.rounding` — conservative rounding rules.
* :mod:`~repro.core.validation` — independent verification of mappings.
"""

from repro.core.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionTrace,
    TraceEvent,
    TraceRecord,
    TraceResult,
    apply_trace_event,
    load_trace,
    random_trace,
    replay_trace,
    save_trace,
    trace_from_dict,
    trace_from_json,
    trace_to_dict,
    trace_to_json,
)
from repro.core.allocator import (
    AllocationSession,
    AllocatorOptions,
    JointAllocator,
    WorkloadSession,
    allocate,
    allocate_workload,
)
from repro.core.formulation import (
    FormulationBlock,
    FormulationVariables,
    ParametricSocpFormulation,
    ParametricWorkloadFormulation,
    SocpFormulation,
    WorkloadSocpFormulation,
)
from repro.core.objective import ObjectiveWeights
from repro.core.rounding import (
    round_budget,
    round_budgets,
    round_capacities,
    round_capacity,
    rounding_overhead,
)
from repro.core.tradeoff import (
    DvfsPoint,
    DvfsSweep,
    TradeoffCurve,
    TradeoffExplorer,
    TradeoffPoint,
)
from repro.core.validation import VerificationReport, verify_mapping

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionTrace",
    "AllocationSession",
    "AllocatorOptions",
    "DvfsPoint",
    "DvfsSweep",
    "FormulationBlock",
    "FormulationVariables",
    "JointAllocator",
    "ObjectiveWeights",
    "ParametricSocpFormulation",
    "ParametricWorkloadFormulation",
    "SocpFormulation",
    "TraceEvent",
    "TraceRecord",
    "TraceResult",
    "TradeoffCurve",
    "TradeoffExplorer",
    "TradeoffPoint",
    "VerificationReport",
    "WorkloadSession",
    "WorkloadSocpFormulation",
    "allocate",
    "allocate_workload",
    "apply_trace_event",
    "load_trace",
    "random_trace",
    "replay_trace",
    "round_budget",
    "save_trace",
    "trace_from_dict",
    "trace_from_json",
    "trace_to_dict",
    "trace_to_json",
    "round_budgets",
    "round_capacities",
    "round_capacity",
    "rounding_overhead",
    "verify_mapping",
]
