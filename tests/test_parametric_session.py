"""Tests of the parametric/warm-start solve stack.

Covers all four layers of the compile-once pipeline:

* solver — :class:`~repro.solver.parametric.ParametricProblem` /
  :class:`~repro.solver.parametric.SolveSession`;
* core — :class:`~repro.core.formulation.ParametricSocpFormulation` and
  :meth:`~repro.core.allocator.JointAllocator.session`;
* trade-off — session-backed sweeps equivalent to rebuild-per-point sweeps,
  and the solver-failure propagation contract;
* batch — sweep families through :meth:`~repro.batch.executor.BatchExecutor.
  run_sweep`.
"""

from __future__ import annotations

import pytest

from repro.core import AllocatorOptions, JointAllocator, TradeoffExplorer
from repro.core.formulation import ParametricSocpFormulation
from repro.exceptions import (
    FormulationError,
    InfeasibleProblemError,
    NumericalError,
)
from repro.solver import ConeProgram, SolverStatus
from repro.taskgraph.generators import (
    chain_configuration,
    producer_consumer_configuration,
    random_dag_configuration,
)


# -- solver layer -------------------------------------------------------------
class TestParametricProblem:
    def _program(self):
        program = ConeProgram("parametric-demo")
        x = program.add_variable("x", lower=0.0, upper=10.0)
        y = program.add_variable("y", lower=0.5, upper=10.0)
        program.add_hyperbolic(x, y, bound=4.0)
        program.add_less_equal(x + y, 12.0, name="sum")
        program.minimize(x + 2.0 * y)
        return program, x, y

    def test_register_and_set_rhs(self):
        program, x, _ = self._program()
        parametric = program.parametric()
        parametric.register_rhs("total", "sum")
        parametric.register_upper_bound("xmax", x)
        parametric.set("total", 8.0)
        parametric.set("xmax", 5.0)
        assert parametric.parameters == {"total": 8.0, "xmax": 5.0}
        assert parametric.value("total") == pytest.approx(8.0)

    def test_unknown_rows_and_parameters_are_rejected(self):
        program, x, _ = self._program()
        parametric = program.parametric()
        with pytest.raises(FormulationError, match="no inequality row"):
            parametric.register_rhs("nope", "missing-row")
        parametric.register_upper_bound("xmax", x)
        with pytest.raises(FormulationError, match="duplicate parameter"):
            parametric.register_upper_bound("xmax", x)
        with pytest.raises(FormulationError, match="unknown parameter"):
            parametric.set("nope", 1.0)

    def test_session_matches_fresh_solves(self):
        """Re-solving after parameter updates must match cold rebuilds."""
        program, x, _ = self._program()
        session = program.session(backend="barrier")
        session.parametric.register_upper_bound("xmax", x)
        for limit in (10.0, 6.0, 2.5):
            solution = session.solve(parameters={"xmax": limit})
            fresh = ConeProgram("fresh")
            fx = fresh.add_variable("x", lower=0.0, upper=limit)
            fy = fresh.add_variable("y", lower=0.5, upper=10.0)
            fresh.add_hyperbolic(fx, fy, bound=4.0)
            fresh.add_less_equal(fx + fy, 12.0, name="sum")
            fresh.minimize(fx + 2.0 * fy)
            reference = fresh.solve(backend="barrier")
            assert solution.is_optimal and reference.is_optimal
            assert solution.objective == pytest.approx(reference.objective, abs=1e-6)
        assert session.stats.compiles == 1
        assert session.stats.solves == 3
        assert session.stats.warm_started == 2

    def test_warm_start_skips_phase_one(self):
        program, x, _ = self._program()
        session = program.session(backend="barrier")
        session.parametric.register_upper_bound("xmax", x)
        session.solve(parameters={"xmax": 10.0})
        relaxed = session.solve(parameters={"xmax": 9.0})
        assert relaxed.stats["phase1_skipped"] is True
        assert relaxed.stats["warm_started"] is True
        assert session.stats.phase1_skipped >= 1

    def test_reset_forces_cold_solve(self):
        program, x, _ = self._program()
        session = program.session(backend="barrier")
        session.parametric.register_upper_bound("xmax", x)
        session.solve(parameters={"xmax": 10.0})
        session.reset()
        solution = session.solve(parameters={"xmax": 9.0})
        assert solution.stats["warm_started"] is False

    def test_infeasible_point_keeps_session_usable(self):
        program, x, _ = self._program()
        session = program.session(backend="barrier")
        session.parametric.register_upper_bound("xmax", x)
        assert session.solve(parameters={"xmax": 10.0}).is_optimal
        # x·y ≥ 4 with x ≤ 0.3, y ≤ 10 is infeasible (0.3·10 < 4).
        infeasible = session.solve(parameters={"xmax": 0.3})
        assert infeasible.status is SolverStatus.INFEASIBLE
        recovered = session.solve(parameters={"xmax": 10.0})
        assert recovered.is_optimal


# -- core layer ----------------------------------------------------------------
class TestParametricSocpFormulation:
    def test_limits_raise_like_the_rebuild_path(self):
        configuration = producer_consumer_configuration()
        parametric = ParametricSocpFormulation(configuration)
        with pytest.raises(InfeasibleProblemError, match="budget upper bound"):
            parametric.apply_limits(budget_limits={"wa": 0.5})
        with pytest.raises(InfeasibleProblemError, match="smallest feasible"):
            parametric.apply_limits(capacity_limits={"bab": 0})

    def test_pinned_limits_are_reported(self):
        configuration = producer_consumer_configuration()
        parametric = ParametricSocpFormulation(configuration)
        # Capacity 1 equals the buffer's smallest feasible capacity: the
        # rebuild path represents that as an equality, so the parametric
        # path must flag it instead of silently mis-modelling it.
        pinned = parametric.apply_limits(capacity_limits={"bab": 1})
        assert pinned == ["capacity[bab]"]
        assert parametric.apply_limits(capacity_limits={"bab": 4}) == []


class TestAllocationSession:
    def test_session_matches_one_shot_allocate(self):
        configuration = producer_consumer_configuration()
        allocator = JointAllocator(options=AllocatorOptions(run_simulation=False))
        session = allocator.session(configuration)
        for limit in (5, 3, 8):
            mapped = session.allocate(capacity_limits={"bab": limit})
            reference = allocator.allocate(
                configuration, capacity_limits={"bab": limit}
            )
            assert mapped.budgets == reference.budgets
            assert mapped.buffer_capacities == reference.buffer_capacities
            for task in reference.relaxed_budgets:
                assert mapped.relaxed_budgets[task] == pytest.approx(
                    reference.relaxed_budgets[task], abs=1e-6
                )
        assert session.stats.compiles == 1
        assert session.stats.solves == 3

    def test_solver_info_carries_solve_stats(self):
        configuration = producer_consumer_configuration()
        allocator = JointAllocator(options=AllocatorOptions(run_simulation=False))
        session = allocator.session(configuration)
        mapped = session.allocate(capacity_limits={"bab": 5})
        stats = mapped.solver_info["solve_stats"]
        assert "phase1_skipped" in stats
        assert "newton_iterations" in stats

    def test_pinned_point_falls_back_to_rebuild(self):
        configuration = producer_consumer_configuration()
        allocator = JointAllocator(options=AllocatorOptions(run_simulation=False))
        session = allocator.session(configuration)
        mapped = session.allocate(capacity_limits={"bab": 1})
        assert mapped.solver_info["solve_stats"].get("rebuild") is True
        # The rebuilt point's work is folded into the session aggregates: the
        # extra compilation and solve must not be under-reported.
        assert session.stats.rebuilds == 1
        assert session.stats.compiles == 2
        assert session.stats.solves == 1
        assert session.stats.newton_iterations > 0
        reference = allocator.allocate(configuration, capacity_limits={"bab": 1})
        assert mapped.budgets == reference.budgets


class TestWarmStartEquivalence:
    """Property-style equivalence: session sweeps vs rebuild-per-point."""

    CONFIGURATIONS = [
        ("chain-4", lambda: chain_configuration(stages=4), range(1, 9)),
        (
            "dag-seed1",
            lambda: random_dag_configuration(
                task_count=5, processor_count=5, seed=1
            ),
            range(2, 12),
        ),
        (
            "dag-seed7",
            lambda: random_dag_configuration(
                task_count=7, processor_count=7, seed=7
            ),
            range(2, 12),
        ),
        # A tight period makes the smallest capacity bounds infeasible, so
        # the verdict equivalence is exercised too.
        (
            "pc-tight",
            lambda: producer_consumer_configuration(period=3.5),
            range(1, 8),
        ),
    ]

    @pytest.mark.parametrize(
        "name,build,sweep", CONFIGURATIONS, ids=[c[0] for c in CONFIGURATIONS]
    )
    def test_session_sweep_equals_rebuild_sweep(self, name, build, sweep):
        configuration = build()
        options = AllocatorOptions(run_simulation=False, verify=False)
        explorer = TradeoffExplorer(allocator_options=options)
        curve = explorer.sweep_capacity_limit(configuration, sweep)

        allocator = JointAllocator(options=options)
        buffer_names = [
            buffer.name for _, buffer in configuration.all_buffers()
        ]
        for limit, point in zip(sweep, curve.points):
            limits = {buffer: int(limit) for buffer in buffer_names}
            try:
                reference = allocator.allocate(configuration, capacity_limits=limits)
            except InfeasibleProblemError:
                assert point.feasible is False, (
                    f"{name}@{limit}: session feasible, rebuild infeasible"
                )
                continue
            assert point.feasible is True, (
                f"{name}@{limit}: session infeasible, rebuild feasible"
            )
            for task, budget in reference.relaxed_budgets.items():
                assert point.relaxed_budgets[task] == pytest.approx(
                    budget, abs=1e-6
                ), f"{name}@{limit}: budget[{task}]"
            assert point.budgets == reference.budgets
            assert point.capacities == reference.buffer_capacities

    def test_compile_happens_exactly_once_per_sweep(self):
        configuration = random_dag_configuration(
            task_count=5, processor_count=5, seed=1
        )
        explorer = TradeoffExplorer(
            allocator_options=AllocatorOptions(run_simulation=False, verify=False)
        )
        curve = explorer.sweep_capacity_limit(configuration, range(2, 12))
        assert curve.solver_stats["compiles"] == 1
        assert curve.solver_stats["solves"] == len(curve.feasible_points())

    def test_phase_one_skipped_on_most_points(self):
        configuration = random_dag_configuration(
            task_count=6, processor_count=6, seed=3
        )
        explorer = TradeoffExplorer(
            allocator_options=AllocatorOptions(run_simulation=False, verify=False)
        )
        curve = explorer.sweep_capacity_limit(configuration, range(3, 23))
        stats = curve.solver_stats
        assert stats["solves"] == 20
        assert stats["phase1_skipped"] >= stats["solves"] // 2


def _statically_infeasible_configuration():
    """A configuration whose *unlimited* SOCP is already contradictory.

    ``wa``'s max_budget (2) lies below the throughput-implied budget floor
    ``ρ·χ/µ = 40·1/10 = 4``, so building the formulation raises
    :class:`InfeasibleProblemError` before any capacity limit is applied.
    """
    from repro.taskgraph.buffer import Buffer
    from repro.taskgraph.configuration import Configuration
    from repro.taskgraph.graph import TaskGraph
    from repro.taskgraph.platform import homogeneous_platform
    from repro.taskgraph.task import Task

    platform = homogeneous_platform(processor_count=2, replenishment_interval=40.0)
    graph = TaskGraph(name="T1", period=10.0)
    graph.add_task(Task(name="wa", wcet=1.0, processor="p1", max_budget=2.0))
    graph.add_task(Task(name="wb", wcet=1.0, processor="p2"))
    graph.add_buffer(Buffer(name="bab", source="wa", target="wb", memory="m1"))
    return Configuration(
        platform=platform, task_graphs=[graph], name="static-infeasible"
    )


class TestStaticallyInfeasibleConfigurations:
    """Session construction failures must not change the sweep contracts."""

    def test_sweep_yields_all_infeasible_points(self):
        explorer = TradeoffExplorer(
            allocator_options=AllocatorOptions(run_simulation=False)
        )
        curve = explorer.sweep_capacity_limit(
            _statically_infeasible_configuration(), [5, 10]
        )
        assert [point.feasible for point in curve.points] == [False, False]
        assert curve.capacity_limits() == [5, 10]

    def test_minimal_capacity_returns_none(self):
        explorer = TradeoffExplorer(
            allocator_options=AllocatorOptions(run_simulation=False)
        )
        assert (
            explorer.minimal_capacity_for_budget(
                _statically_infeasible_configuration(),
                budget_limit=10.0,
                capacity_limits=[5, 10],
            )
            is None
        )


class TestSolverFailurePropagation:
    """The satellite bugfix: only genuine infeasibility is swallowed."""

    def _explorer_with_failing_session(self, monkeypatch, error):
        explorer = TradeoffExplorer(
            allocator_options=AllocatorOptions(run_simulation=False)
        )

        class FailingSession:
            stats = None

            def allocate(self, **kwargs):
                raise error

        monkeypatch.setattr(
            type(explorer.allocator), "session", lambda self, cfg: FailingSession()
        )
        return explorer

    def test_minimal_capacity_propagates_numerical_errors(self, monkeypatch):
        explorer = self._explorer_with_failing_session(
            monkeypatch, NumericalError("solver diverged")
        )
        with pytest.raises(NumericalError, match="solver diverged"):
            explorer.minimal_capacity_for_budget(
                producer_consumer_configuration(),
                budget_limit=10.0,
                capacity_limits=[1, 2, 3],
            )

    def test_minimal_capacity_continues_past_infeasibility(self, monkeypatch):
        explorer = self._explorer_with_failing_session(
            monkeypatch, InfeasibleProblemError("genuinely impossible")
        )
        result = explorer.minimal_capacity_for_budget(
            producer_consumer_configuration(),
            budget_limit=10.0,
            capacity_limits=[1, 2],
        )
        assert result is None

    def test_sweep_propagates_numerical_errors(self, monkeypatch):
        explorer = self._explorer_with_failing_session(
            monkeypatch, NumericalError("solver diverged")
        )
        with pytest.raises(NumericalError):
            explorer.sweep_capacity_limit(
                producer_consumer_configuration(), [1, 2]
            )


# -- batch layer ---------------------------------------------------------------
class TestBatchSweepFamilies:
    def test_run_sweep_returns_points_and_stats(self):
        from repro.batch import BatchExecutor, ExecutorConfig

        executor = BatchExecutor(
            config=ExecutorConfig(fallback_backends=())
        )
        result = executor.run_sweep(
            producer_consumer_configuration(), range(1, 6)
        )
        assert result.status == "ok"
        assert [point["capacity_limit"] for point in result.points] == [1, 2, 3, 4, 5]
        # Limit 1 pins the buffer's capacity onto its lower bound, which is a
        # rebuild-fallback point — honestly counted as a second compilation.
        assert result.solver_stats["rebuilds"] == 1
        assert result.solver_stats["compiles"] == 2
        assert all(point["feasible"] for point in result.points)

    def test_run_sweep_family_is_cached_as_one_unit(self, tmp_path):
        from repro.batch import BatchExecutor, ResultCache

        cache = ResultCache(tmp_path / "cache")
        configuration = producer_consumer_configuration()
        cold = BatchExecutor(cache=cache).run_sweep(configuration, range(1, 6))
        assert cold.from_cache is False
        assert len(cache) == 1
        warm = BatchExecutor(cache=cache).run_sweep(configuration, range(1, 6))
        assert warm.from_cache is True
        assert warm.points == cold.points
        # A different sweep over the same configuration is a different family.
        other = BatchExecutor(cache=cache).run_sweep(configuration, range(1, 4))
        assert other.from_cache is False

    def test_family_cache_key_ignores_fallback_backends(self, tmp_path):
        """Families never apply fallback, so the fallback list must not
        fragment the family cache."""
        from repro.batch import BatchExecutor, ExecutorConfig, ResultCache

        cache = ResultCache(tmp_path / "cache")
        configuration = producer_consumer_configuration()
        cold = BatchExecutor(
            config=ExecutorConfig(fallback_backends=("scipy",)), cache=cache
        ).run_sweep(configuration, range(1, 4))
        warm = BatchExecutor(
            config=ExecutorConfig(fallback_backends=()), cache=cache
        ).run_sweep(configuration, range(1, 4))
        assert cold.from_cache is False
        assert warm.from_cache is True
        assert warm.points == cold.points

    def test_item_result_stats_round_trip(self):
        from repro.batch.executor import ItemResult, STATUS_OK

        result = ItemResult(
            label="x",
            key="k",
            status=STATUS_OK,
            budgets={"wa": 18.0},
            stats={"phase1_skipped": True, "newton_iterations": 42},
        )
        clone = ItemResult.from_dict(result.to_dict())
        assert clone.stats == result.stats
        assert clone.deterministic_dict() == result.deterministic_dict()
