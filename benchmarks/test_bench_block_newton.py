"""Benchmark: block-structured Newton solves vs dense solves on N-app workloads.

The barrier solver's structured path factorises each application's diagonal
Hessian block independently and folds the shared capacity rows in through a
Schur complement, so one Newton step costs the sum of per-application cubes
instead of the cube of the whole variable count.  This benchmark pins the
scaling win on workloads of 1, 2, 4 and 8 applications sharing one platform:

* the structured and dense backends must return **identical optima** (every
  variable within 1e-8) — the structure is a pure performance change;
* the structured backend must be **strictly faster** than the dense one on
  the 4- and 8-application workloads (best-of-``REPEATS`` wall time over the
  same compiled problem, elimination cache primed for both);
* the structured path must engage automatically (no options) for workloads
  of two or more applications.

The per-size timings ride along in ``benchmark.extra_info`` so that
``--benchmark-json`` artifacts record the dense/structured trajectory.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.formulation import WorkloadSocpFormulation
from repro.solver.backends import solve_compiled
from repro.taskgraph import Workload
from repro.taskgraph.generators import random_dag_configuration

#: Workload sizes of the scaling series; the strict speedup assertion applies
#: from ASSERT_FASTER_FROM applications on (small systems are dominated by
#: Python overhead, where the dense path is competitive).
SIZES = (1, 2, 4, 8)
ASSERT_FASTER_FROM = 4
#: Best-of-REPEATS wall times: three repetitions absorb one-off noise spikes
#: (the 4-app margin is ~2x, the 8-app one ~6x).
REPEATS = 3
#: The strict structured-faster-than-dense assertion holds comfortably on a
#: quiet machine but is a wall-clock race on shared CI runners, whose smoke
#: job collects timings for trend inspection, not gating — skip it there.
STRICT_TIMING = not os.environ.get("CI")


def _workload(app_count: int) -> Workload:
    applications = [
        random_dag_configuration(
            task_count=6,
            processor_count=6,
            seed=3 + index,
            wcet_range=(0.2, 0.8),
        )
        for index in range(app_count)
    ]
    workload = Workload(applications[0].platform, name=f"bench-{app_count}-apps")
    for index, application in enumerate(applications):
        workload.add_application(f"app{index}", application)
    return workload


def _compiled(app_count: int):
    formulation = WorkloadSocpFormulation(_workload(app_count))
    program = formulation.build()
    compiled = program.compile()
    initial = compiled.vector_from_mapping(formulation.initial_point())
    return compiled, initial


def _solve(compiled, initial, structured):
    options = {} if structured is None else {"structured": structured}
    return solve_compiled(
        compiled, backend="barrier", initial_point=initial, options=options
    )


def _best_time(compiled, initial, structured):
    """Best-of-REPEATS wall time and the last solution."""
    best = float("inf")
    solution = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        solution = _solve(compiled, initial, structured)
        best = min(best, time.perf_counter() - start)
    return best, solution


def _newton_total(solution):
    return int(solution.stats.get("newton_iterations", 0)) + int(
        solution.stats.get("phase1_newton_iterations", 0)
    )


@pytest.mark.parametrize("app_count", SIZES)
def test_bench_block_newton_scaling(app_count, benchmark, record_series):
    compiled, initial = _compiled(app_count)
    # Prime the (shared) equality-elimination cache so both backends time the
    # Newton work, not the one-off SVDs.
    _solve(compiled, initial, structured=False)

    dense_time, dense = _best_time(compiled, initial, structured=False)
    structured_time, structured = _best_time(compiled, initial, structured=None)

    assert dense.is_optimal and structured.is_optimal
    assert dense.stats["structured"] is False
    # Auto engagement: the structured path switches on from 2 applications.
    assert structured.stats["structured"] is (app_count >= 2)

    # Identical optima: the structure only changes how the Newton systems are
    # solved, never what they converge to.
    point_s, point_d = structured.by_name(), dense.by_name()
    assert structured.objective == pytest.approx(dense.objective, abs=1e-8)
    for name, value in point_s.items():
        assert value == pytest.approx(point_d[name], abs=1e-8), name

    if STRICT_TIMING and app_count >= ASSERT_FASTER_FROM:
        assert structured_time < dense_time, (
            f"{app_count}-app workload: structured backend took "
            f"{structured_time * 1e3:.1f} ms vs {dense_time * 1e3:.1f} ms dense"
        )

    record_series(benchmark, "variables", compiled.num_variables)
    record_series(benchmark, "dense_seconds", dense_time)
    record_series(benchmark, "structured_seconds", structured_time)
    record_series(benchmark, "speedup", dense_time / max(structured_time, 1e-12))
    record_series(benchmark, "newton_iterations_dense", _newton_total(dense))
    record_series(
        benchmark, "newton_iterations_structured", _newton_total(structured)
    )
    benchmark(lambda: _solve(compiled, initial, structured=None))
