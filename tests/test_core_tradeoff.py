"""Tests of the trade-off explorer (the machinery behind Figures 2 and 3)."""

from __future__ import annotations

import pytest

from repro.core import AllocatorOptions, TradeoffExplorer
from repro.baselines.budget_minimization import producer_consumer_minimum_budget
from repro.exceptions import ModelError
from repro.taskgraph.generators import (
    chain_configuration,
    heterogeneous_random_configuration,
    producer_consumer_configuration,
)


@pytest.fixture(scope="module")
def producer_consumer_curve():
    explorer = TradeoffExplorer(
        allocator_options=AllocatorOptions(run_simulation=False)
    )
    config = producer_consumer_configuration()
    return explorer.sweep_capacity_limit(config, range(1, 11))


class TestSweep:
    def test_all_points_feasible(self, producer_consumer_curve):
        assert len(producer_consumer_curve.points) == 10
        assert len(producer_consumer_curve.feasible_points()) == 10
        assert producer_consumer_curve.capacity_limits() == list(range(1, 11))

    def test_budgets_match_closed_form(self, producer_consumer_curve):
        budgets = producer_consumer_curve.budgets_of("wa", relaxed=True)
        for capacity, budget in zip(range(1, 11), budgets):
            assert budget == pytest.approx(
                producer_consumer_minimum_budget(capacity), rel=1e-3
            )

    def test_budgets_are_non_increasing(self, producer_consumer_curve):
        budgets = producer_consumer_curve.budgets_of("wa")
        assert all(b1 >= b2 - 1e-9 for b1, b2 in zip(budgets, budgets[1:]))

    def test_total_budget_is_twice_single_budget(self, producer_consumer_curve):
        totals = producer_consumer_curve.total_budgets(relaxed=True)
        singles = producer_consumer_curve.budgets_of("wa", relaxed=True)
        for total, single in zip(totals, singles):
            assert total == pytest.approx(2.0 * single, rel=1e-3)

    def test_budget_reductions_are_positive_and_diminishing(self, producer_consumer_curve):
        reductions = producer_consumer_curve.budget_reductions(task_name="wa")
        assert len(reductions) == 9
        assert all(r >= -1e-6 for r in reductions)
        # Diminishing returns: each extra container buys less than the previous.
        assert all(r1 >= r2 - 1e-6 for r1, r2 in zip(reductions, reductions[1:]))

    def test_as_table_rows(self, producer_consumer_curve):
        rows = producer_consumer_curve.as_table()
        assert len(rows) == 10
        assert rows[0]["capacity_limit"] == 1
        assert "budget[wa]" in rows[0]
        assert "capacity[bab]" in rows[0]

    def test_infeasible_points_are_recorded(self):
        explorer = TradeoffExplorer(
            allocator_options=AllocatorOptions(run_simulation=False)
        )
        config = producer_consumer_configuration(period=3.5)
        # With a 3.5-Mcycle period a single container is not enough (the
        # cycle needs at least ≈ 4.05 Mcycles even with a full budget).
        curve = explorer.sweep_capacity_limit(config, [1, 2, 8])
        flags = {point.capacity_limit: point.feasible for point in curve.points}
        assert flags[1] is False
        assert flags[2] is True
        assert flags[8] is True
        assert len(curve.feasible_points()) < len(curve.points)


class TestMinimalCapacityForBudget:
    def test_finds_smallest_feasible_bound(self):
        explorer = TradeoffExplorer(
            allocator_options=AllocatorOptions(run_simulation=False)
        )
        config = producer_consumer_configuration()
        mapped = explorer.minimal_capacity_for_budget(
            config, budget_limit=10.0, capacity_limits=range(1, 12)
        )
        assert mapped is not None
        # β ≤ 10 needs at least 7 containers (β_min(7) ≈ 6.3 ≤ 10 < β_min(6)).
        assert mapped.buffer_capacities["bab"] == 7
        assert all(b <= 10.0 + 1e-9 for b in mapped.budgets.values())

    def test_returns_none_when_hopeless(self):
        explorer = TradeoffExplorer(
            allocator_options=AllocatorOptions(run_simulation=False)
        )
        config = producer_consumer_configuration()
        assert (
            explorer.minimal_capacity_for_budget(
                config, budget_limit=3.0, capacity_limits=[1, 2, 3]
            )
            is None
        )


class TestChainTopology:
    def test_middle_task_keeps_larger_budget(self):
        """The paper's Figure-3 claim: w_b's budget is reduced last."""
        explorer = TradeoffExplorer(
            allocator_options=AllocatorOptions(run_simulation=False)
        )
        config = chain_configuration(stages=3)
        curve = explorer.sweep_capacity_limit(config, [2, 4, 6, 8])
        for point in curve.feasible_points():
            assert point.relaxed_budgets["wb"] >= point.relaxed_budgets["wa"] - 1e-6
            assert point.relaxed_budgets["wb"] >= point.relaxed_budgets["wc"] - 1e-6
            # The two outer tasks are symmetric.
            assert point.relaxed_budgets["wa"] == pytest.approx(
                point.relaxed_budgets["wc"], rel=1e-2, abs=1e-2
            )


class TestDvfsSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        explorer = TradeoffExplorer(
            allocator_options=AllocatorOptions(run_simulation=False)
        )
        config = heterogeneous_random_configuration(
            task_count=4, seed=0, dvfs_levels=(1.0, 2.0)
        )
        return explorer.sweep_dvfs(config)

    def test_enumerates_the_cartesian_product(self, sweep):
        assert len(sweep.points) == 4  # two big processors with two levels each
        assignments = {tuple(sorted(point.speeds.items())) for point in sweep.points}
        assert len(assignments) == 4
        assert all(set(point.speeds) == {"big1", "big2"} for point in sweep.points)

    def test_slower_clocks_never_need_less_budget(self, sweep):
        by_speeds = {
            tuple(sorted(point.speeds.items())): point
            for point in sweep.feasible_points()
        }
        fast = by_speeds[(("big1", 2.0), ("big2", 2.0))]
        slow = by_speeds.get((("big1", 1.0), ("big2", 1.0)))
        if slow is not None:
            assert slow.total_budget >= fast.total_budget - 1e-9

    def test_best_is_the_lowest_objective(self, sweep):
        best = sweep.best()
        assert best is not None
        assert all(
            best.objective_value <= point.objective_value + 1e-12
            for point in sweep.feasible_points()
        )

    def test_infeasible_operating_points_become_points(self):
        # Tasks sized for the speed-2 big processors: forcing every clock
        # down must yield infeasible sweep points, not errors.
        explorer = TradeoffExplorer(
            allocator_options=AllocatorOptions(run_simulation=False)
        )
        config = heterogeneous_random_configuration(
            task_count=4,
            seed=0,
            little_count=1,
            cycle_range=(8.0, 8.0),
            dvfs_levels=(0.25, 2.0),
        )
        sweep = explorer.sweep_dvfs(config)
        assert len(sweep.points) == 4
        assert any(not point.feasible for point in sweep.points)

    def test_requires_dvfs_levels(self):
        explorer = TradeoffExplorer()
        config = chain_configuration()
        with pytest.raises(ModelError, match="DVFS"):
            explorer.sweep_dvfs(config)
        hetero = heterogeneous_random_configuration(
            task_count=4, seed=0, dvfs_levels=(1.0, 2.0)
        )
        with pytest.raises(ModelError, match="DVFS"):
            explorer.sweep_dvfs(hetero, processors=["little1"])
