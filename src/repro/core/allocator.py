"""Joint budget and buffer-size allocation.

:class:`JointAllocator` is the top-level entry point of the library: it takes
a :class:`~repro.taskgraph.configuration.Configuration`, builds and solves the
SOCP of Algorithm 1, rounds the relaxed solution conservatively, verifies the
result with independent dataflow analyses, and returns a
:class:`~repro.taskgraph.configuration.MappedConfiguration`.

For families of allocations over one configuration — trade-off sweeps that
vary only capacity/budget limits — :meth:`JointAllocator.session` returns an
:class:`AllocationSession` that compiles the cone program once and re-solves
it per point with warm starts, instead of rebuilding everything from Python
objects for every point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.exceptions import (
    AllocationError,
    InfeasibleProblemError,
    NumericalError,
    UnboundedProblemError,
)
from repro.core.formulation import ParametricSocpFormulation, SocpFormulation
from repro.core.objective import ObjectiveWeights
from repro.core.rounding import round_budgets, round_capacities
from repro.core.validation import VerificationReport, verify_mapping
from repro.solver.parametric import SessionStats, SolveSession
from repro.solver.result import Solution, SolverStatus
from repro.taskgraph.configuration import Configuration, MappedConfiguration


@dataclass
class AllocatorOptions:
    """Options of the joint allocator."""

    backend: str = "auto"              #: solver backend passed to the cone program
    verify: bool = True                #: run independent verification after rounding
    run_simulation: bool = True        #: include self-timed simulation in verification
    simulate_iterations: int = 60      #: iterations of the validation simulation
    raise_on_verification_failure: bool = True


class JointAllocator:
    """Simultaneous computation of budgets and buffer capacities."""

    def __init__(
        self,
        weights: Optional[ObjectiveWeights] = None,
        options: Optional[AllocatorOptions] = None,
    ) -> None:
        self.weights = weights or ObjectiveWeights.prefer_budgets()
        self.options = options or AllocatorOptions()

    def allocate(
        self,
        configuration: Configuration,
        capacity_limits: Optional[Mapping[str, int]] = None,
        budget_limits: Optional[Mapping[str, float]] = None,
        weights: Optional[ObjectiveWeights] = None,
    ) -> MappedConfiguration:
        """Compute a mapped configuration that satisfies every throughput constraint.

        Parameters
        ----------
        configuration:
            The input configuration (validated before solving).
        capacity_limits, budget_limits:
            Optional additional upper bounds (per buffer / per task) used by
            trade-off sweeps.
        weights:
            Objective weighting; overrides the allocator-level default.

        Raises
        ------
        InfeasibleProblemError
            When no budgets/capacities satisfy the constraints.
        AllocationError
            When the rounded mapping unexpectedly fails verification.
        """
        configuration.validate()
        formulation = SocpFormulation(
            configuration,
            weights=weights or self.weights,
            capacity_limits=capacity_limits,
            budget_limits=budget_limits,
        )
        solution = formulation.solve(backend=self.options.backend)
        self._check_status(solution, configuration)
        return self._finalize(
            configuration,
            solution,
            formulation.extract_budgets(solution),
            formulation.extract_capacities(solution),
        )

    def session(self, configuration: Configuration) -> "AllocationSession":
        """Open a compile-once allocation session over ``configuration``.

        The session validates and compiles the configuration once; each
        :meth:`AllocationSession.allocate` call then only rewrites the
        capacity/budget limit parameters and re-solves, warm-starting from
        the previous point's optimum.  Use it for trade-off sweeps and any
        other family of allocations that differ only in their limits.
        """
        return AllocationSession(self, configuration)

    def _finalize(
        self,
        configuration: Configuration,
        solution: Solution,
        relaxed_budgets: Dict[str, float],
        relaxed_capacities: Dict[str, float],
    ) -> MappedConfiguration:
        """Round, package and (optionally) verify one optimal solution."""
        budgets = round_budgets(relaxed_budgets, configuration.granularity)
        capacities = round_capacities(relaxed_capacities)

        mapped = MappedConfiguration(
            configuration=configuration,
            budgets=budgets,
            buffer_capacities=capacities,
            relaxed_budgets=relaxed_budgets,
            relaxed_capacities=relaxed_capacities,
            objective_value=solution.objective,
            solver_info={
                "backend": solution.backend,
                "status": solution.status.value,
                "iterations": solution.iterations,
                "solve_time": solution.solve_time,
                "solve_stats": dict(solution.stats),
            },
        )

        if self.options.verify:
            report = self.verify(mapped)
            mapped.solver_info["verification"] = report.summary()
            if not report.is_valid and self.options.raise_on_verification_failure:
                raise AllocationError(
                    "the rounded mapping failed verification:\n" + report.summary()
                )
        return mapped

    def verify(self, mapped: MappedConfiguration) -> VerificationReport:
        """Verify a mapped configuration with independent dataflow analyses."""
        return verify_mapping(
            mapped,
            simulate_iterations=self.options.simulate_iterations,
            run_simulation=self.options.run_simulation,
        )

    @staticmethod
    def _check_status(solution: Solution, configuration: Configuration) -> None:
        if solution.status is SolverStatus.OPTIMAL:
            return
        if solution.status is SolverStatus.INFEASIBLE:
            raise InfeasibleProblemError(
                f"no budgets and buffer capacities satisfy the throughput "
                f"requirements of configuration {configuration.name!r} within its "
                f"processor and memory capacities"
            )
        if solution.status is SolverStatus.UNBOUNDED:
            raise UnboundedProblemError(
                f"the optimisation problem for configuration {configuration.name!r} "
                f"is unbounded; check the objective weights"
            )
        raise NumericalError(
            f"the solver failed on configuration {configuration.name!r}: "
            f"{solution.status.value} ({solution.message})"
        )


class AllocationSession:
    """Warm-started allocation over one configuration, compiled exactly once.

    Created through :meth:`JointAllocator.session`.  The session builds and
    compiles the SOCP a single time with the capacity/budget limits exposed
    as parameters; every :meth:`allocate` call rewrites only those parameters
    and re-solves, seeding the barrier method with the previous optimum so
    that phase I is skipped whenever that point is still strictly feasible.

    One structural case falls back to a per-point rebuild: a limit that lands
    exactly on a variable's lower bound, which the formulation represents as
    an equality row (counted in :attr:`stats` as a rebuild; the rebuilt
    optimum still seeds the warm start of subsequent points).
    """

    def __init__(self, allocator: JointAllocator, configuration: Configuration) -> None:
        configuration.validate()
        self.allocator = allocator
        self.configuration = configuration
        self._parametric = ParametricSocpFormulation(
            configuration, weights=allocator.weights
        )
        self._session = SolveSession(
            self._parametric.parametric, backend=allocator.options.backend
        )
        self._initial = self._parametric.initial_point()

    @property
    def stats(self) -> SessionStats:
        """Aggregate solve statistics across every point of the session."""
        return self._session.stats

    def allocate(
        self,
        capacity_limits: Optional[Mapping[str, int]] = None,
        budget_limits: Optional[Mapping[str, float]] = None,
        warm_start: bool = True,
    ) -> MappedConfiguration:
        """Re-solve for one set of limits; same contract as
        :meth:`JointAllocator.allocate` for this session's configuration.

        ``warm_start=False`` ignores the previous optimum for this point
        (used by benchmarks to isolate the warm-start gain); the compiled
        problem is still reused.
        """
        pinned = self._parametric.apply_limits(capacity_limits, budget_limits)
        if pinned:
            return self._rebuild_point(capacity_limits, budget_limits)
        solution = self._session.solve(
            initial_point=self._initial, warm_start=warm_start
        )
        self.allocator._check_status(solution, self.configuration)
        formulation = self._parametric.formulation
        return self.allocator._finalize(
            self.configuration,
            solution,
            formulation.extract_budgets(solution),
            formulation.extract_capacities(solution),
        )

    def _rebuild_point(
        self,
        capacity_limits: Optional[Mapping[str, int]],
        budget_limits: Optional[Mapping[str, float]],
    ) -> MappedConfiguration:
        """Solve one point the rebuild way (limits baked into fresh bounds)."""
        stats = self._session.stats
        stats.rebuilds += 1
        stats.compiles += 1
        formulation = SocpFormulation(
            self.configuration,
            weights=self.allocator.weights,
            capacity_limits=capacity_limits,
            budget_limits=budget_limits,
        )
        solution = formulation.solve(backend=self.allocator.options.backend)
        # Fold the rebuilt point's work into the session aggregates so that
        # the reported statistics cover every point of the sweep.
        stats.record_solution(solution)
        self.allocator._check_status(solution, self.configuration)
        mapped = self.allocator._finalize(
            self.configuration,
            solution,
            formulation.extract_budgets(solution),
            formulation.extract_capacities(solution),
        )
        mapped.solver_info["solve_stats"] = {
            **mapped.solver_info.get("solve_stats", {}),
            "rebuild": True,
        }
        # The rebuilt optimum is a valid (usually near-boundary) point of the
        # parametric program too; let it seed the next point's warm start.
        self._session.seed(solution.by_name())
        return mapped


def allocate(
    configuration: Configuration,
    weights: Optional[ObjectiveWeights] = None,
    backend: str = "auto",
    verify: bool = True,
) -> MappedConfiguration:
    """Functional convenience wrapper around :class:`JointAllocator`."""
    options = AllocatorOptions(backend=backend, verify=verify)
    allocator = JointAllocator(weights=weights, options=options)
    return allocator.allocate(configuration)
