"""Self-timed execution of SRDF graphs.

In a self-timed execution every actor fires as soon as each of its input
queues holds a token.  For (worst-case) constant firing durations the start
times satisfy the max-plus recursion

    start(v, k) = max over input queues e = (u → v) with k > δ(e) of
                  start(u, k − δ(e)) + ρ(u)

(and 0 when no such queue exists).  Because every zero-token cycle would
deadlock, the recursion is well-founded for deadlock-free graphs.

The simulator is used to *validate* mapped configurations end-to-end: after
the joint budget/buffer computation, the instantiated dataflow graph is
simulated and the measured steady-state period must not exceed the required
period.  By the temporal monotonicity of SRDF graphs this self-timed,
worst-case simulation upper-bounds the behaviour of the real budget-scheduled
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import SimulationError
from repro.dataflow.graph import SRDFGraph


@dataclass
class SimulationTrace:
    """Start times of the first ``iterations`` firings of every actor."""

    graph_name: str
    iterations: int
    start_times: Dict[str, List[float]] = field(default_factory=dict)

    def start_time(self, actor_name: str, firing: int) -> float:
        """Start time of the ``firing``-th firing (1-based)."""
        if firing < 1 or firing > self.iterations:
            raise SimulationError(
                f"firing {firing} outside the simulated range 1..{self.iterations}"
            )
        return self.start_times[actor_name][firing - 1]

    def actor_names(self) -> Tuple[str, ...]:
        return tuple(self.start_times.keys())

    def measured_period(self, actor_name: Optional[str] = None, settle_fraction: float = 0.5) -> float:
        """Average inter-firing distance over the tail of the simulation.

        The first ``settle_fraction`` of the firings are discarded as the
        transient phase; the period is estimated from the remaining firings of
        the slowest actor (or the requested actor).
        """
        if self.iterations < 2:
            raise SimulationError("need at least two firings to measure a period")
        names = [actor_name] if actor_name else list(self.start_times)
        worst = 0.0
        for name in names:
            times = self.start_times[name]
            first = min(int(len(times) * settle_fraction), len(times) - 2)
            span = times[-1] - times[first]
            count = (len(times) - 1) - first
            worst = max(worst, span / count)
        return worst

    def is_no_later_than(self, other: "SimulationTrace", tolerance: float = 1e-9) -> bool:
        """True when every firing in this trace starts no later than in ``other``.

        This is the comparison used to check temporal monotonicity.
        """
        if set(self.start_times) != set(other.start_times):
            return False
        iterations = min(self.iterations, other.iterations)
        for name, times in self.start_times.items():
            other_times = other.start_times[name]
            for k in range(iterations):
                if times[k] > other_times[k] + tolerance:
                    return False
        return True


def simulate(graph: SRDFGraph, iterations: int = 50) -> SimulationTrace:
    """Simulate the self-timed execution for a number of graph iterations.

    Raises
    ------
    SimulationError
        If the graph deadlocks (a cycle without initial tokens).
    """
    if iterations < 1:
        raise SimulationError("iterations must be at least 1")
    fractional = [q.name for q in graph.queues if not q.has_integral_tokens]
    if fractional:
        raise SimulationError(
            f"graph {graph.name!r} has fractional token counts on "
            f"{fractional}; the self-timed simulation needs integral tokens "
            f"(use the MCR/potential analyses instead)"
        )
    if not graph.is_deadlock_free():
        raise SimulationError(
            f"graph {graph.name!r} deadlocks: a cycle without initial tokens exists"
        )

    # Within one iteration index k, a firing can only depend on same-k firings
    # through zero-token queues; those form a DAG for deadlock-free graphs, so
    # processing actors in a topological order of the zero-token subgraph makes
    # the computation purely iterative (no recursion).
    import networkx as nx

    zero_token_dag = nx.DiGraph()
    zero_token_dag.add_nodes_from(graph.actor_names)
    for queue in graph.queues:
        if queue.tokens == 0 and not queue.is_self_loop:
            zero_token_dag.add_edge(queue.source, queue.target)
    actor_order = list(nx.topological_sort(zero_token_dag))

    start: Dict[str, List[float]] = {name: [] for name in graph.actor_names}
    durations = {actor.name: actor.firing_duration for actor in graph.actors}
    inputs = {name: graph.input_queues(name) for name in graph.actor_names}

    for k in range(1, iterations + 1):
        for actor_name in actor_order:
            value = 0.0
            for queue in inputs[actor_name]:
                needed_firing = k - int(queue.tokens)
                if needed_firing >= 1:
                    producer_finish = (
                        start[queue.source][needed_firing - 1] + durations[queue.source]
                    )
                    value = max(value, producer_finish)
            start[actor_name].append(value)

    trace = SimulationTrace(graph_name=graph.name, iterations=iterations)
    for actor in graph.actors:
        trace.start_times[actor.name] = start[actor.name]
    return trace


def measured_period(graph: SRDFGraph, iterations: int = 100) -> float:
    """Steady-state period of the self-timed execution."""
    return simulate(graph, iterations=iterations).measured_period()


def meets_period(
    graph: SRDFGraph, required_period: float, iterations: int = 100, tolerance: float = 1e-6
) -> bool:
    """True when the self-timed execution sustains the required period.

    The check compares every simulated start time against the periodic
    admissible schedule with the required period: self-timed execution is the
    as-soon-as-possible execution, so ``start(v, k) ≤ s(v) + (k − 1)·µ`` must
    hold for all firings whenever such a schedule exists.  (A plain average of
    inter-firing distances over a finite horizon would systematically
    over-estimate the period on graphs with a long transient, making the
    validation flaky.)
    """
    from repro.dataflow.mcr import longest_path_potentials

    potentials = longest_path_potentials(graph, required_period)
    if potentials is None:
        return False
    try:
        trace = simulate(graph, iterations=iterations)
    except SimulationError:
        return False
    slack = tolerance * max(1.0, required_period)
    for actor_name, times in trace.start_times.items():
        bound = potentials[actor_name]
        for k, start in enumerate(times):
            if start > bound + k * required_period + slack:
                return False
    return True
