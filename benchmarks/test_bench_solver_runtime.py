"""Solver runtime (paper, Section V): "The run-time is milliseconds".

The paper solved its two experiments with CPLEX in milliseconds per instance.
These benchmarks time a single joint budget/buffer computation on exactly
those instances with the from-scratch barrier solver; the assertion only
requires sub-second runtimes (leaving two orders of magnitude of slack for
slow machines), while the benchmark report records the actual figure for
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.core import AllocatorOptions, JointAllocator, ObjectiveWeights
from repro.experiments.figure2 import build_configuration as producer_consumer
from repro.experiments.figure3 import build_configuration as three_stage_chain


def _allocator() -> JointAllocator:
    return JointAllocator(
        weights=ObjectiveWeights.prefer_budgets(),
        options=AllocatorOptions(verify=False, run_simulation=False),
    )


@pytest.mark.benchmark(group="solver-runtime")
def test_single_instance_runtime_producer_consumer(benchmark):
    allocator = _allocator()
    config = producer_consumer(max_capacity=5)
    mapped = benchmark(lambda: allocator.allocate(config, capacity_limits={"bab": 5}))
    assert mapped.budgets["wa"] == pytest.approx(18.0, abs=1.0)
    assert benchmark.stats["mean"] < 1.0


@pytest.mark.benchmark(group="solver-runtime")
def test_single_instance_runtime_three_stage_chain(benchmark):
    allocator = _allocator()
    config = three_stage_chain()
    limits = {"bab": 5, "bbc": 5}
    mapped = benchmark(lambda: allocator.allocate(config, capacity_limits=limits))
    assert sum(mapped.budgets.values()) > 0.0
    assert benchmark.stats["mean"] < 1.0


@pytest.mark.benchmark(group="solver-runtime")
def test_socp_solve_only_runtime(benchmark):
    """Time of the cone-program solve alone (excluding rounding/verification)."""
    from repro.core.formulation import SocpFormulation

    config = producer_consumer(max_capacity=5)

    def solve():
        formulation = SocpFormulation(config, weights=ObjectiveWeights.prefer_budgets())
        return formulation.solve(backend="barrier")

    solution = benchmark(solve)
    assert solution.is_optimal
    assert benchmark.stats["mean"] < 0.5
