"""Shared fixtures for the test-suite.

The fixtures centre on the two workloads of the paper's evaluation section
(the producer-consumer graph of Figure 1 / experiment 1 and the three-stage
chain of experiment 2) plus a handful of small dataflow graphs with known
analytic properties.
"""

from __future__ import annotations

import pytest

from repro.dataflow.graph import Actor, Queue, SRDFGraph
from repro.taskgraph.generators import (
    chain_configuration,
    producer_consumer_configuration,
)


@pytest.fixture
def paper_producer_consumer():
    """The paper's experiment-1 configuration (no capacity bound)."""
    return producer_consumer_configuration()


@pytest.fixture
def paper_chain3():
    """The paper's experiment-2 configuration (three-stage chain)."""
    return chain_configuration(stages=3)


@pytest.fixture
def two_actor_cycle() -> SRDFGraph:
    """A two-actor cycle with durations 2 and 3 and tokens 1 + 1.

    Its maximum cycle ratio is (2 + 3) / 2 = 2.5.
    """
    graph = SRDFGraph(name="two-cycle")
    graph.add_actor(Actor("a", 2.0))
    graph.add_actor(Actor("b", 3.0))
    graph.add_queue(Queue("ab", "a", "b", tokens=1))
    graph.add_queue(Queue("ba", "b", "a", tokens=1))
    return graph


@pytest.fixture
def self_loop_actor() -> SRDFGraph:
    """A single actor with a one-token self-loop: MCR equals its duration."""
    graph = SRDFGraph(name="selfloop")
    graph.add_actor(Actor("a", 4.0))
    graph.add_queue(Queue("aa", "a", "a", tokens=1))
    return graph


@pytest.fixture
def pipeline_srdf() -> SRDFGraph:
    """A three-actor pipeline with a feedback queue carrying 2 tokens.

    Cycle: a → b → c → a with durations 1 + 2 + 1 = 4 and 2 tokens, so the
    MCR is 2.0.
    """
    graph = SRDFGraph(name="pipeline")
    graph.add_actor(Actor("a", 1.0))
    graph.add_actor(Actor("b", 2.0))
    graph.add_actor(Actor("c", 1.0))
    graph.add_queue(Queue("ab", "a", "b", tokens=0))
    graph.add_queue(Queue("bc", "b", "c", tokens=0))
    graph.add_queue(Queue("ca", "c", "a", tokens=2))
    return graph


@pytest.fixture
def deadlocked_srdf() -> SRDFGraph:
    """A token-free cycle: deadlocks, MCR is infinite."""
    graph = SRDFGraph(name="deadlock")
    graph.add_actor(Actor("a", 1.0))
    graph.add_actor(Actor("b", 1.0))
    graph.add_queue(Queue("ab", "a", "b", tokens=0))
    graph.add_queue(Queue("ba", "b", "a", tokens=0))
    return graph
