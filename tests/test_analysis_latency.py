"""Tests of the end-to-end latency analysis."""

from __future__ import annotations

import pytest

from repro.exceptions import AnalysisError
from repro.analysis import analyse_latency, latency_lower_bound
from repro.core import ObjectiveWeights, allocate
from repro.taskgraph import MappedConfiguration
from repro.taskgraph.generators import chain_configuration, producer_consumer_configuration


class TestAnalyseLatency:
    def test_latency_of_a_valid_mapping(self):
        config = producer_consumer_configuration(max_capacity=5)
        mapped = allocate(config, weights=ObjectiveWeights.prefer_budgets())
        report = analyse_latency(mapped)["T1"]
        # One iteration: both tasks execute in sequence, each taking
        # (̺ − β) waiting plus ̺·χ/β execution in the worst case.
        budget = mapped.budgets["wa"]
        per_task_worst = (40.0 - budget) + 40.0 / budget
        assert report.schedule_latency <= 2 * per_task_worst + 1e-6
        assert report.self_timed_latency <= report.schedule_latency + 1e-6
        assert report.periods_of_latency == pytest.approx(
            report.schedule_latency / 10.0
        )

    def test_latency_at_least_the_dependency_chain(self):
        config = chain_configuration(stages=4, max_capacity=6)
        mapped = allocate(config, weights=ObjectiveWeights.prefer_budgets())
        graph_name = config.task_graphs[0].name
        reports = analyse_latency(mapped)
        lower = latency_lower_bound(mapped, graph_name)
        assert reports[graph_name].self_timed_latency >= lower - 1e-6
        assert reports[graph_name].schedule_latency >= lower - 1e-6

    def test_larger_budgets_reduce_latency(self):
        config = producer_consumer_configuration()
        small_budget = MappedConfiguration(
            configuration=config,
            budgets={"wa": 5.0, "wb": 5.0},
            buffer_capacities={"bab": 10},
        )
        large_budget = MappedConfiguration(
            configuration=config,
            budgets={"wa": 20.0, "wb": 20.0},
            buffer_capacities={"bab": 10},
        )
        small = analyse_latency(small_budget)["T1"]
        large = analyse_latency(large_budget)["T1"]
        assert large.schedule_latency < small.schedule_latency
        assert large.self_timed_latency < small.self_timed_latency

    def test_infeasible_mapping_rejected(self):
        config = producer_consumer_configuration()
        bad = MappedConfiguration(
            configuration=config,
            budgets={"wa": 4.0, "wb": 4.0},
            buffer_capacities={"bab": 1},
        )
        with pytest.raises(AnalysisError):
            analyse_latency(bad)

    def test_lower_bound_matches_manual_chain_sum(self):
        config = chain_configuration(stages=3, max_capacity=8)
        mapped = MappedConfiguration(
            configuration=config,
            budgets={"wa": 10.0, "wb": 20.0, "wc": 40.0},
            buffer_capacities={"bab": 8, "bbc": 8},
        )
        expected = 40.0 / 10.0 + 40.0 / 20.0 + 40.0 / 40.0  # 4 + 2 + 1
        assert latency_lower_bound(mapped, "chain3") == pytest.approx(expected)
