"""Maximum cycle ratio (MCR) analysis of SRDF graphs.

The smallest period for which a periodic admissible schedule exists equals the
*maximum cycle ratio*

    MCR(G) = max over directed cycles c of  Σ_{v ∈ c} ρ(v) / Σ_{e ∈ c} δ(e)

(Reiter 1968).  A cycle without initial tokens has an infinite ratio: the
graph deadlocks and no finite period exists.

Two algorithms are provided:

* :func:`maximum_cycle_ratio` with ``method="lawler"`` — binary search on the
  period combined with a Bellman–Ford positive-cycle test
  (:func:`is_period_feasible`), which is robust and polynomial.
* ``method="enumerate"`` — exact enumeration of simple cycles, exponential in
  the worst case but convenient for the small graphs of the paper and as an
  independent oracle in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.exceptions import AnalysisError
from repro.dataflow.graph import Queue, SRDFGraph

#: Default relative tolerance of the binary search.
DEFAULT_TOLERANCE = 1e-9


@dataclass(frozen=True)
class CycleRatio:
    """Ratio of one directed cycle: total firing duration over total tokens."""

    duration: float
    tokens: float
    queues: Tuple[Queue, ...]

    @property
    def ratio(self) -> float:
        if self.tokens == 0:
            return math.inf
        return self.duration / self.tokens


def cycle_ratios(graph: SRDFGraph) -> List[CycleRatio]:
    """Compute the ratio of every simple cycle (small graphs only)."""
    ratios: List[CycleRatio] = []
    for cycle in graph.simple_cycles():
        duration = sum(graph.firing_duration(queue.source) for queue in cycle)
        tokens = sum(queue.tokens for queue in cycle)
        ratios.append(CycleRatio(duration=duration, tokens=tokens, queues=tuple(cycle)))
    return ratios


def _constraint_edges(graph: SRDFGraph, period: float) -> List[Tuple[str, str, float]]:
    """Edges of the start-time constraint graph for a candidate period.

    Constraint (1) of the paper, ``s(v_j) ≥ s(v_i) + ρ(v_i) − δ(e_ij)·period``,
    is a system of difference constraints; it is feasible iff the graph with
    edge weights ``ρ(v_i) − δ(e_ij)·period`` has no positive-weight cycle.
    """
    return [
        (
            queue.source,
            queue.target,
            graph.firing_duration(queue.source) - queue.tokens * period,
        )
        for queue in graph.queues
    ]


def longest_path_potentials(
    graph: SRDFGraph, period: float
) -> Optional[Dict[str, float]]:
    """Bellman–Ford longest-path potentials, or ``None`` if a positive cycle exists.

    When feasible, the returned potentials are valid periodic start times
    ``s(v)`` for the given period (shifted so that the smallest is 0).
    """
    nodes = list(graph.actor_names)
    if not nodes:
        return {}
    edges = _constraint_edges(graph, period)
    # Longest-path Bellman-Ford from a virtual source connected to all nodes
    # with weight 0 (equivalently: initialise all potentials to 0).
    potential = {node: 0.0 for node in nodes}
    for _ in range(len(nodes) + 1):
        changed = False
        for source, target, weight in edges:
            candidate = potential[source] + weight
            if candidate > potential[target] + 1e-12:
                potential[target] = candidate
                changed = True
        if not changed:
            shift = min(potential.values())
            return {node: value - shift for node, value in potential.items()}
    return None


def is_period_feasible(graph: SRDFGraph, period: float) -> bool:
    """True when a periodic admissible schedule with the given period exists."""
    if period <= 0.0:
        return False
    return longest_path_potentials(graph, period) is not None


def _has_positive_duration_cycle(graph: SRDFGraph) -> bool:
    """True when some directed cycle contains an actor with positive duration.

    Exactly the condition for ``MCR > 0``: a cycle's ratio is its total
    firing duration over its (positive, or the graph deadlocks) token count.
    Every cycle lies inside a strongly connected component, and inside an
    SCC that contains at least one edge *every* node lies on a cycle, so the
    check reduces to: does any edge-carrying SCC contain a positive-duration
    actor?
    """
    digraph = nx.DiGraph()
    digraph.add_nodes_from(graph.actor_names)
    digraph.add_edges_from((queue.source, queue.target) for queue in graph.queues)
    component_of = {}
    for index, component in enumerate(nx.strongly_connected_components(digraph)):
        for node in component:
            component_of[node] = index
    cyclic = {
        component_of[queue.source]
        for queue in graph.queues
        if component_of[queue.source] == component_of[queue.target]
    }
    return any(
        graph.firing_duration(name) > 0.0 and component_of[name] in cyclic
        for name in graph.actor_names
    )


def _upper_bound_period(graph: SRDFGraph) -> float:
    """A period that is always feasible for a deadlock-free graph.

    Every simple cycle's duration is at most the total duration, and its
    token count is at least the smallest positive token count of any queue
    (deadlock-freedom puts at least one such queue on every cycle).  For
    integer-token graphs that smallest count is ≥ 1 and the bound is the
    classic total duration; queues lowered from true CSDF buffers can carry
    fractional token counts below one, which scale the bound up.
    """
    total = sum(actor.firing_duration for actor in graph.actors)
    positive = [queue.tokens for queue in graph.queues if queue.tokens > 0]
    smallest = min(positive) if positive else 1.0
    if smallest < 1.0:
        total /= smallest
    return max(total, 1e-12)


def maximum_cycle_ratio(
    graph: SRDFGraph,
    method: str = "lawler",
    tolerance: float = DEFAULT_TOLERANCE,
) -> float:
    """Return the maximum cycle ratio (minimum feasible period) of the graph.

    Returns ``0.0`` for acyclic graphs (any positive period is feasible) and
    ``math.inf`` when the graph deadlocks (a cycle without tokens).
    """
    if not graph.queues:
        return 0.0
    if not graph.is_deadlock_free():
        return math.inf

    if method == "enumerate":
        ratios = cycle_ratios(graph)
        if not ratios:
            return 0.0
        return max(ratio.ratio for ratio in ratios)
    if method != "lawler":
        raise AnalysisError(f"unknown MCR method {method!r}")

    # Exact trivial-cycle classification: MCR == 0 iff no cycle carries a
    # positive firing duration.  Probing feasibility at an epsilon period —
    # absolute or duration-scaled — cannot get this right at every scale (a
    # genuinely positive MCR near the epsilon, of either sign of error), so
    # the structure is checked directly instead.
    if not _has_positive_duration_cycle(graph):
        # Only zero-duration cycles; any positive period works.
        return 0.0
    high = _upper_bound_period(graph)
    low = 0.0
    if not is_period_feasible(graph, high):
        raise AnalysisError(
            "no feasible period found below the total-duration upper bound; "
            "the graph structure is inconsistent"
        )
    # Binary search for the smallest feasible period.  Convergence is
    # relative to the *current* upper bound: when the true MCR is orders of
    # magnitude below the total-duration starting bound (tiny cycles next to
    # large acyclic actors), the target shrinks with the interval and the
    # result stays accurate to ``tolerance`` relative at every scale.
    while high - low > tolerance * high:
        mid = 0.5 * (low + high)
        if is_period_feasible(graph, mid):
            high = mid
        else:
            low = mid
    return high


def minimum_feasible_period(graph: SRDFGraph, tolerance: float = DEFAULT_TOLERANCE) -> float:
    """Alias of :func:`maximum_cycle_ratio` with the Lawler method."""
    return maximum_cycle_ratio(graph, method="lawler", tolerance=tolerance)


def critical_cycles(graph: SRDFGraph, tolerance: float = 1e-6) -> List[CycleRatio]:
    """Cycles whose ratio is within ``tolerance`` (relative) of the MCR.

    Uses cycle enumeration, so it is intended for small graphs and reporting.
    """
    ratios = cycle_ratios(graph)
    if not ratios:
        return []
    best = max(r.ratio for r in ratios)
    if math.isinf(best):
        return [r for r in ratios if math.isinf(r.ratio)]
    return [r for r in ratios if r.ratio >= best * (1.0 - tolerance)]


def throughput(graph: SRDFGraph) -> float:
    """Maximum sustainable throughput in iterations per time unit (1 / MCR)."""
    mcr = maximum_cycle_ratio(graph)
    if mcr == 0.0:
        return math.inf
    if math.isinf(mcr):
        return 0.0
    return 1.0 / mcr
