"""Buffer sizing for *fixed* budgets (one phase of the classical two-phase flow).

When the budgets are already decided, the actor firing durations of the
dataflow model are constants and the throughput-constrained buffer-sizing
problem becomes a linear program (the formulation the paper builds on, cf. its
reference [9]): minimise the weighted capacities subject to the start-time
constraints (1) and the memory capacity constraints.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import networkx as nx

from repro.exceptions import (
    AllocationError,
    InfeasibleProblemError,
    NumericalError,
)
from repro.core.objective import ObjectiveWeights
from repro.core.rounding import round_capacities
from repro.dataflow.construction import (
    ActorRole,
    build_srdf_specification,
)
from repro.solver.expression import AffineExpression, Variable, linear_sum
from repro.solver.problem import ConeProgram
from repro.solver.result import SolverStatus
from repro.taskgraph.configuration import Configuration


def minimal_buffer_capacities(
    configuration: Configuration,
    budgets: Mapping[str, float],
    weights: Optional[ObjectiveWeights] = None,
    capacity_limits: Optional[Mapping[str, int]] = None,
    backend: str = "auto",
) -> Dict[str, int]:
    """Smallest (weighted) buffer capacities that meet the throughput requirements.

    Parameters
    ----------
    configuration:
        The configuration whose buffers are to be sized.
    budgets:
        Fixed budget per task (time units per replenishment interval).
    capacity_limits:
        Optional per-buffer upper bounds (containers).

    Returns
    -------
    dict
        Conservatively rounded capacity per buffer name.

    Raises
    ------
    InfeasibleProblemError
        When no finite capacities satisfy the throughput requirement with the
        given budgets (or the memory / capacity bounds are too tight).
    """
    weights = weights or ObjectiveWeights()
    capacity_limits = dict(capacity_limits or {})
    program = ConeProgram(name=f"buffer-sizing[{configuration.name}]")

    capacity_vars: Dict[str, Variable] = {}
    start_exprs: Dict[str, AffineExpression] = {}
    objective_terms = []

    for graph in configuration.task_graphs:
        spec = build_srdf_specification(graph)

        # Start-time variables, pinning one actor per weakly connected component.
        component_graph = nx.Graph()
        component_graph.add_nodes_from(spec.actor_names())
        for queue in spec.queues:
            component_graph.add_edge(queue.source, queue.target)
        for component in nx.connected_components(component_graph):
            reference = sorted(component)[0]
            start_exprs[reference] = AffineExpression({}, 0.0)
            for actor_name in sorted(component):
                if actor_name != reference:
                    var = program.add_variable(f"s[{actor_name}]")
                    start_exprs[actor_name] = AffineExpression({var: 1.0})

        for buffer in graph.buffers:
            lower = float(buffer.smallest_feasible_capacity)
            upper: Optional[float] = None
            if buffer.max_capacity is not None:
                upper = float(buffer.max_capacity)
            if buffer.name in capacity_limits:
                limit = float(capacity_limits[buffer.name])
                upper = limit if upper is None else min(upper, limit)
            var = program.add_variable(f"capacity[{buffer.name}]", lower=lower, upper=upper)
            capacity_vars[buffer.name] = var
            coefficient = weights.capacity_coefficient(buffer)
            objective_terms.append(var * (coefficient if coefficient else 1.0))

        for queue in spec.queues:
            task = graph.task(queue.source_task)
            processor = configuration.platform.processor(task.processor)
            if task.name not in budgets:
                raise AllocationError(f"no budget provided for task {task.name!r}")
            budget = float(budgets[task.name])
            if budget <= 0.0 or budget > processor.replenishment_interval + 1e-9:
                raise AllocationError(
                    f"budget {budget} of task {task.name!r} is outside "
                    f"(0, {processor.replenishment_interval}]"
                )
            if queue.source_role is ActorRole.START:
                duration = processor.replenishment_interval - budget
            else:
                duration = processor.replenishment_interval * task.wcet / budget
            if queue.fixed_tokens is not None:
                tokens: AffineExpression = AffineExpression({}, float(queue.fixed_tokens))
            else:
                buffer = graph.buffer(queue.buffer)  # type: ignore[arg-type]
                tokens = AffineExpression(
                    {capacity_vars[buffer.name]: 1.0}, -float(buffer.initial_tokens)
                )
            lhs = start_exprs[queue.target]
            rhs = start_exprs[queue.source] + duration - tokens * graph.period
            program.add_greater_equal(lhs, rhs, name=f"pas[{queue.name}]")

    # Memory constraints (Constraint (10) with fixed +1 rounding slack).
    for memory_name, memory in configuration.platform.memories.items():
        if not memory.is_bounded:
            continue
        buffers = configuration.buffers_in_memory(memory_name)
        if not buffers:
            continue
        usage = linear_sum(
            [
                (capacity_vars[buffer.name] + 1.0) * buffer.container_size
                for buffer in buffers
            ]
        )
        program.add_less_equal(usage, memory.capacity, name=f"memory[{memory_name}]")

    program.minimize(linear_sum(objective_terms))
    solution = program.solve(backend=backend)
    if solution.status is SolverStatus.INFEASIBLE:
        raise InfeasibleProblemError(
            f"no buffer capacities satisfy the throughput requirements of "
            f"{configuration.name!r} for the given budgets"
        )
    if not solution.is_optimal:
        raise NumericalError(
            f"buffer sizing failed: {solution.status.value} ({solution.message})"
        )
    relaxed = {name: solution.value(var) for name, var in capacity_vars.items()}
    return round_capacities(relaxed)
