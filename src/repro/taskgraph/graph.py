"""Task graph model.

A task graph ``T = (W, B, π, χ, ν, ζ, ι)`` is a directed multigraph whose
vertices are tasks and whose edges are FIFO buffers, together with a
throughput requirement expressed as a period ``µ(T)``: in steady state, every
task must complete one execution every ``µ(T)`` time units.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from repro.exceptions import GraphStructureError, ModelError
from repro.taskgraph.buffer import Buffer
from repro.taskgraph.task import Task


class TaskGraph:
    """A throughput-constrained task graph.

    Parameters
    ----------
    name:
        Unique identifier of the task graph (the paper calls these *jobs*).
    period:
        The throughput requirement ``µ(T)`` as the maximum allowed steady-state
        period between successive executions of each task.
    tasks, buffers:
        Optional initial content; tasks referenced by buffers must be added
        first (or in the same call).
    """

    def __init__(
        self,
        name: str,
        period: float,
        tasks: Iterable[Task] = (),
        buffers: Iterable[Buffer] = (),
    ) -> None:
        if not name:
            raise ModelError("task graph name must be non-empty")
        if period <= 0.0:
            raise ModelError(
                f"task graph {name!r} needs a positive throughput period, got {period!r}"
            )
        self.name = name
        self.period = float(period)
        self._tasks: Dict[str, Task] = {}
        self._buffers: Dict[str, Buffer] = {}
        self._repetitions: Optional[Dict[str, int]] = None
        for task in tasks:
            self.add_task(task)
        for buffer in buffers:
            self.add_buffer(buffer)

    # -- construction ---------------------------------------------------------
    def add_task(self, task: Task) -> Task:
        if task.name in self._tasks:
            raise ModelError(
                f"task graph {self.name!r} already contains a task named {task.name!r}"
            )
        self._tasks[task.name] = task
        self._repetitions = None
        return task

    def add_buffer(self, buffer: Buffer) -> Buffer:
        if buffer.name in self._buffers:
            raise ModelError(
                f"task graph {self.name!r} already contains a buffer named {buffer.name!r}"
            )
        for endpoint in (buffer.source, buffer.target):
            if endpoint not in self._tasks:
                raise GraphStructureError(
                    f"buffer {buffer.name!r} references task {endpoint!r} which is "
                    f"not part of task graph {self.name!r}"
                )
        self._buffers[buffer.name] = buffer
        self._repetitions = None
        return buffer

    # -- lookup ---------------------------------------------------------------
    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise GraphStructureError(
                f"task graph {self.name!r} has no task named {name!r}"
            ) from None

    def buffer(self, name: str) -> Buffer:
        try:
            return self._buffers[name]
        except KeyError:
            raise GraphStructureError(
                f"task graph {self.name!r} has no buffer named {name!r}"
            ) from None

    def has_task(self, name: str) -> bool:
        return name in self._tasks

    def has_buffer(self, name: str) -> bool:
        return name in self._buffers

    @property
    def tasks(self) -> Tuple[Task, ...]:
        return tuple(self._tasks.values())

    @property
    def buffers(self) -> Tuple[Buffer, ...]:
        return tuple(self._buffers.values())

    @property
    def task_names(self) -> Tuple[str, ...]:
        return tuple(self._tasks.keys())

    @property
    def buffer_names(self) -> Tuple[str, ...]:
        return tuple(self._buffers.keys())

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    # -- topology ----------------------------------------------------------------
    def output_buffers(self, task_name: str) -> List[Buffer]:
        """Buffers produced into by ``task_name``."""
        self.task(task_name)
        return [b for b in self._buffers.values() if b.source == task_name]

    def input_buffers(self, task_name: str) -> List[Buffer]:
        """Buffers consumed from by ``task_name``."""
        self.task(task_name)
        return [b for b in self._buffers.values() if b.target == task_name]

    def successors(self, task_name: str) -> List[str]:
        """Names of tasks that consume data produced by ``task_name``."""
        return sorted({b.target for b in self.output_buffers(task_name)})

    def predecessors(self, task_name: str) -> List[str]:
        """Names of tasks whose data ``task_name`` consumes."""
        return sorted({b.source for b in self.input_buffers(task_name)})

    def to_networkx(self) -> nx.MultiDiGraph:
        """Export the task graph as a :class:`networkx.MultiDiGraph`.

        Node attributes carry the :class:`Task`, edge attributes the
        :class:`Buffer`.
        """
        graph = nx.MultiDiGraph(name=self.name, period=self.period)
        for task in self._tasks.values():
            graph.add_node(task.name, task=task)
        for buffer in self._buffers.values():
            graph.add_edge(buffer.source, buffer.target, key=buffer.name, buffer=buffer)
        return graph

    def is_connected(self) -> bool:
        """True when the task graph is weakly connected (or has a single task)."""
        if len(self._tasks) <= 1:
            return True
        return nx.is_weakly_connected(self.to_networkx())

    def undirected_cycles_exist(self) -> bool:
        """True when the graph (ignoring direction) contains a cycle.

        Self-loops and parallel buffers between the same pair of tasks count
        as cycles; beyond those, the simple undirected graph is inspected.
        """
        if any(b.source == b.target for b in self._buffers.values()):
            return True
        pair_counts: Dict[Tuple[str, str], int] = {}
        for buffer in self._buffers.values():
            key = tuple(sorted((buffer.source, buffer.target)))
            pair_counts[key] = pair_counts.get(key, 0) + 1
        if any(count > 1 for count in pair_counts.values()):
            return True
        graph = nx.Graph()
        graph.add_nodes_from(self._tasks)
        graph.add_edges_from(pair_counts.keys())
        return bool(nx.cycle_basis(graph))

    # -- cyclo-static structure ---------------------------------------------------
    @property
    def is_cyclo_static(self) -> bool:
        """Whether any task has multiple phases or any buffer non-unit rates.

        Single-phase, one-token-per-firing graphs — including ones built
        through the CSDF fields with trivial values — take the legacy
        single-rate lowering path unchanged.
        """
        if any(task.phase_count > 1 for task in self._tasks.values()):
            return True
        return any(buffer.is_multi_rate for buffer in self._buffers.values())

    def repetitions(self) -> Dict[str, int]:
        """The repetition vector ``q``: phase-cycle iterations per task per graph
        iteration.

        Solved from the balance equations
        ``q(src) * Σ production = q(dst) * Σ consumption`` per buffer, with
        exact :class:`~fractions.Fraction` arithmetic, normalised to the
        smallest positive integers per weakly-connected component.  For a
        single-rate graph every entry is 1.  Raises :class:`ModelError` when
        the rates are inconsistent (the graph has no periodic schedule).

        The throughput period ``µ(T)`` is interpreted *per graph iteration*:
        task ``w`` completes ``q(w)`` full phase cycles (``q(w) * P(w)``
        firings) every ``µ`` time units.  For single-rate graphs this is
        exactly the paper's "one execution per period".
        """
        if self._repetitions is not None:
            return dict(self._repetitions)
        ratios: Dict[str, Optional[Fraction]] = {name: None for name in self._tasks}
        for root in self._tasks:
            if ratios[root] is not None:
                continue
            ratios[root] = Fraction(1)
            frontier = [root]
            while frontier:
                current = frontier.pop()
                for buffer in self._buffers.values():
                    if current not in (buffer.source, buffer.target):
                        continue
                    produced = buffer.total_production
                    consumed = buffer.total_consumption
                    src_ratio = ratios[buffer.source]
                    dst_ratio = ratios[buffer.target]
                    if src_ratio is not None and dst_ratio is not None:
                        if src_ratio * produced != dst_ratio * consumed:
                            raise ModelError(
                                f"task graph {self.name!r}: inconsistent "
                                f"cyclo-static rates on buffer "
                                f"{buffer.name!r} ({buffer.source!r} -> "
                                f"{buffer.target!r}); no repetition vector "
                                f"exists"
                            )
                        continue
                    if src_ratio is not None:
                        ratios[buffer.target] = src_ratio * produced / consumed
                        frontier.append(buffer.target)
                    elif dst_ratio is not None:
                        ratios[buffer.source] = dst_ratio * consumed / produced
                        frontier.append(buffer.source)
        # Normalise each weakly-connected component to smallest integers.
        components: List[List[str]] = []
        if self._tasks:
            undirected = nx.Graph()
            undirected.add_nodes_from(self._tasks)
            for buffer in self._buffers.values():
                undirected.add_edge(buffer.source, buffer.target)
            components = [sorted(c) for c in nx.connected_components(undirected)]
        repetitions: Dict[str, int] = {}
        for component in components:
            fractions = [ratios[name] for name in component]
            denominator_lcm = 1
            for fraction in fractions:
                denominator_lcm = (
                    denominator_lcm
                    * fraction.denominator
                    // gcd(denominator_lcm, fraction.denominator)
                )
            integers = [
                int(fraction * denominator_lcm) for fraction in fractions
            ]
            common = 0
            for value in integers:
                common = gcd(common, value)
            for name, value in zip(component, integers):
                repetitions[name] = value // common
        self._repetitions = {name: repetitions[name] for name in self._tasks}
        return dict(self._repetitions)

    def period_cycles(self, task_name: str, processor: object) -> float:
        """Effective execution time a task needs per throughput period.

        One full set of firings per period: ``q(w)`` phase cycles for a
        cyclo-static graph, a single ``wcet`` otherwise — resolved against
        the processor's type/speed.  For a plain task on a unit-speed
        processor this returns exactly ``task.wcet``.
        """
        from repro.taskgraph.task import effective_iteration_cycles

        task = self.task(task_name)
        reps = self.repetitions()[task_name] if self.is_cyclo_static else 1
        return effective_iteration_cycles(task, processor, reps)

    def processors_used(self) -> Tuple[str, ...]:
        """Sorted names of the processors this graph's tasks are bound to."""
        return tuple(sorted({task.processor for task in self._tasks.values()}))

    def memories_used(self) -> Tuple[str, ...]:
        """Sorted names of the memories this graph's buffers are placed in."""
        return tuple(sorted({buffer.memory for buffer in self._buffers.values()}))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskGraph({self.name!r}, period={self.period}, "
            f"tasks={len(self._tasks)}, buffers={len(self._buffers)})"
        )
