"""Benchmark: disabled-telemetry overhead of the unified observability layer.

Every hot path in the solver, the allocator, admission control and the batch
executor now runs inside :mod:`repro.obs` spans.  The design contract is that
with telemetry *disabled* (the default), a span costs exactly what the code it
replaced cost — two ``perf_counter`` calls — so instrumenting the stack is
free.  This benchmark pins that contract on the heaviest tier-1 workload, the
8-application block-Newton solve:

* solve the 8-app workload with telemetry disabled and count, via one enabled
  capture, how many spans the solve actually opens;
* micro-benchmark the per-span cost of a *disabled* span (enter + exit + a
  ``set()`` call, all no-ops beyond the timing reads);
* assert spans-opened x per-span-cost stays under ``OVERHEAD_BUDGET`` (2%) of
  the solve's wall time.

The product bound is used instead of an A/B wall-time race because the
uninstrumented baseline no longer exists in the tree, and because a direct
race of two multi-millisecond solves cannot resolve a sub-percent delta above
run-to-run noise.  Counting ops and bounding each is both stricter and stable.
"""

from __future__ import annotations

import os
import time

from repro import obs
from repro.core.formulation import WorkloadSocpFormulation
from repro.obs.trace import span, span_tree_size
from repro.solver.backends import solve_compiled
from repro.taskgraph import Workload
from repro.taskgraph.generators import random_dag_configuration

#: Disabled telemetry must cost less than this fraction of solve wall time.
OVERHEAD_BUDGET = 0.02
#: The workload mirrors the block-Newton scaling benchmark's largest point.
APP_COUNT = 8
#: Best-of-REPEATS wall times absorb one-off noise spikes.
REPEATS = 3
#: Iterations of the disabled-span micro-benchmark; enough that the
#: per-iteration cost estimate is stable to well under a microsecond.
MICRO_ITERATIONS = 20_000
#: The assertion holds by two orders of magnitude on a quiet machine but is
#: still a wall-clock measurement — on shared CI runners it reports only.
STRICT_TIMING = not os.environ.get("CI")


def _compiled():
    applications = [
        random_dag_configuration(
            task_count=6,
            processor_count=6,
            seed=3 + index,
            wcet_range=(0.2, 0.8),
        )
        for index in range(APP_COUNT)
    ]
    workload = Workload(applications[0].platform, name="obs-overhead")
    for index, application in enumerate(applications):
        workload.add_application(f"app{index}", application)
    formulation = WorkloadSocpFormulation(workload)
    compiled = formulation.build().compile()
    initial = compiled.vector_from_mapping(formulation.initial_point())
    return compiled, initial


def _solve(compiled, initial):
    return solve_compiled(compiled, backend="barrier", initial_point=initial)


def _disabled_span_seconds():
    """Per-iteration cost of one disabled span, enter to exit."""
    start = time.perf_counter()
    for _ in range(MICRO_ITERATIONS):
        with span("bench", static=1) as bench_span:
            bench_span.set(dynamic=2)
    return (time.perf_counter() - start) / MICRO_ITERATIONS


def test_bench_disabled_telemetry_overhead(benchmark, record_series):
    compiled, initial = _compiled()
    _solve(compiled, initial)  # prime the elimination cache

    assert not obs.enabled()
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        solution = _solve(compiled, initial)
        best = min(best, time.perf_counter() - start)
    assert solution.is_optimal

    # Count the spans a solve opens by running one capture; the captured tree
    # is exactly the set of spans the disabled run also entered and exited.
    with obs.capture() as captured:
        _solve(compiled, initial)
    spans_opened = sum(span_tree_size(root) for root in captured.spans)
    assert spans_opened >= 3, "solve must open compile/solve/rung spans"

    per_span = _disabled_span_seconds()
    overhead = spans_opened * per_span
    ratio = overhead / best

    record_series(benchmark, "solve_seconds", best)
    record_series(benchmark, "spans_opened", spans_opened)
    record_series(benchmark, "disabled_span_seconds", per_span)
    record_series(benchmark, "overhead_ratio", ratio)

    if STRICT_TIMING:
        assert ratio < OVERHEAD_BUDGET, (
            f"disabled telemetry costs {ratio * 100:.3f}% of the "
            f"{APP_COUNT}-app solve ({spans_opened} spans x "
            f"{per_span * 1e9:.0f} ns), over the {OVERHEAD_BUDGET * 100:.0f}% "
            "budget"
        )

    benchmark(_disabled_span_seconds)
