"""Run-time admission control: applications arriving at and leaving a platform.

The DATE 2010 setting is a run-time one: applications start and stop on a
shared MPSoC, and budgets and buffer capacities must be re-allocated on the
fly.  This example streams an evening of events at a set-top box — the video
decoder starts, audio joins, a picture-in-picture decoder asks to join (and
is admitted), a heavyweight transcode job asks to join (and is *rejected*
with a structured reason), the main video stops, after which the transcode
fits — through an :class:`~repro.core.admission.AdmissionController`.

Every event is an incremental edit of one compile-once session: the
applications that keep running keep their formulation blocks, their
per-block equality eliminations and their share of the previous optimum, so
an admission decision costs one new block plus a warm-started re-solve, not
a from-scratch rebuild of the whole platform.
"""

from __future__ import annotations

from repro.core import AdmissionController
from repro.taskgraph import ConfigurationBuilder


def pipeline(name: str, stages: int, wcet: float, period: float, pin: float = None):
    """A chain of ``stages`` tasks over the two shared processors.

    ``pin`` fixes the first task's budget exactly (a firm contract), which
    compiles to an equality row — the case where each application's block
    needs an equality elimination the session can then reuse across events.
    """
    builder = (
        ConfigurationBuilder(name=name, granularity=1.0)
        .processor("p1", replenishment_interval=40.0)
        .processor("p2", replenishment_interval=40.0)
        .memory("m1")
        .task_graph(name, period=period)
    )
    for index in range(stages):
        bound = pin if index == 0 else None
        builder.task(
            f"{name}_t{index}",
            wcet=wcet,
            processor=f"p{index % 2 + 1}",
            min_budget=bound,
            max_budget=bound,
        )
    for index in range(stages - 1):
        builder.buffer(
            f"{name}_b{index}",
            source=f"{name}_t{index}",
            target=f"{name}_t{index + 1}",
            memory="m1",
        )
    return builder.build()


def describe(decision) -> str:
    if decision.admitted:
        return "admitted"
    return f"REJECTED at the {decision.stage} stage: {decision.reason.splitlines()[0]}"


def main() -> None:
    video = pipeline("video", stages=3, wcet=2.0, period=10.0, pin=10.0)
    controller = AdmissionController(video.platform, name="set-top-box")

    print("Run-time admission control on a shared two-processor platform")
    print("=" * 62)

    events = [
        ("arrive", "video", video),
        ("arrive", "audio", pipeline("audio", stages=2, wcet=1.0, period=20.0, pin=3.0)),
        ("arrive", "pip", pipeline("pip", stages=2, wcet=1.5, period=10.0, pin=7.0)),
        ("arrive", "transcode", pipeline("transcode", stages=3, wcet=2.0, period=8.0, pin=12.0)),
        ("depart", "video", None),
        ("arrive", "transcode", pipeline("transcode", stages=3, wcet=2.0, period=8.0, pin=12.0)),
    ]
    for action, name, configuration in events:
        if action == "arrive":
            decision = controller.admit(name, configuration)
            print(f"\narrive {name!r}: {describe(decision)}")
        else:
            controller.depart(name)
            print(f"\ndepart {name!r}")
        print(f"  running: {sorted(controller.running)}")
        if controller.mapped is not None:
            for row in controller.mapped.budget_split_rows():
                shares = ", ".join(
                    f"{app}={row[f'budget[{app}]']:.0f}"
                    for app in controller.running
                )
                print(
                    f"  {row['processor']}: {shares}  "
                    f"(utilisation {row['utilisation']:.0%})"
                )

    stats = controller.session_stats
    print(
        f"\n{stats.solves} joint solves across the evening: "
        f"{stats.warm_started} warm-started, phase I skipped "
        f"{stats.phase1_skipped}x, {stats.elimination_blocks_reused} per-app "
        f"eliminations reused across session edits"
    )


if __name__ == "__main__":
    main()
