"""Property-based tests of temporal monotonicity (Section II-B.2 of the paper).

Monotonicity is the property the paper's conservative approximations rest on,
so it gets its own property-based test battery: for randomly generated live
SRDF graphs, making any actor faster or adding tokens to any queue never
delays any firing of the self-timed execution.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import AnalysisError
from repro.dataflow.graph import Actor, Queue, SRDFGraph
from repro.dataflow.monotonicity import check_monotonicity, compare_traces, speedup_graph
from repro.dataflow.simulation import simulate


def _random_live_graph(durations, extra_edges, feedback_tokens) -> SRDFGraph:
    """A ring of |durations| actors plus optional forward chords (always live)."""
    graph = SRDFGraph("random")
    n = len(durations)
    for i, duration in enumerate(durations):
        graph.add_actor(Actor(f"a{i}", duration))
    for i in range(n):
        graph.add_queue(
            Queue(
                f"ring{i}",
                f"a{i}",
                f"a{(i + 1) % n}",
                tokens=feedback_tokens if i == n - 1 else 0,
            )
        )
    for j, (src, dst) in enumerate(extra_edges):
        source, target = src % n, dst % n
        if source == target:
            continue
        # Forward chords (low index to high index) cannot create token-free cycles.
        lo, hi = min(source, target), max(source, target)
        graph.add_queue(Queue(f"chord{j}", f"a{lo}", f"a{hi}", tokens=0))
    return graph


durations_strategy = st.lists(
    st.floats(min_value=0.1, max_value=10.0, allow_nan=False), min_size=2, max_size=5
)
edges_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=4)),
    max_size=3,
)


class TestSpeedupGraph:
    def test_scaling_durations(self, pipeline_srdf):
        faster = speedup_graph(pipeline_srdf, duration_scale=0.5)
        assert faster.firing_duration("b") == pytest.approx(1.0)

    def test_rejects_bad_scale(self, pipeline_srdf):
        with pytest.raises(AnalysisError):
            speedup_graph(pipeline_srdf, duration_scale=1.5)
        with pytest.raises(AnalysisError):
            speedup_graph(pipeline_srdf, duration_scale=0.0)

    def test_rejects_slower_override(self, pipeline_srdf):
        with pytest.raises(AnalysisError):
            speedup_graph(pipeline_srdf, duration_overrides={"b": 99.0})

    def test_rejects_negative_extra_tokens(self, pipeline_srdf):
        with pytest.raises(AnalysisError):
            speedup_graph(pipeline_srdf, extra_tokens={"ca": -1})


class TestCheckMonotonicity:
    def test_mismatched_graphs_rejected(self, pipeline_srdf, two_actor_cycle):
        with pytest.raises(AnalysisError):
            check_monotonicity(pipeline_srdf, two_actor_cycle)

    def test_faster_durations_never_delay(self, pipeline_srdf):
        faster = speedup_graph(pipeline_srdf, duration_scale=0.7)
        assert check_monotonicity(pipeline_srdf, faster)

    def test_extra_tokens_never_delay(self, pipeline_srdf):
        faster = speedup_graph(pipeline_srdf, extra_tokens={"ca": 2})
        assert check_monotonicity(pipeline_srdf, faster)

    def test_compare_traces_reports_nonnegative_advance(self, pipeline_srdf):
        slow = simulate(pipeline_srdf, iterations=20)
        fast = simulate(speedup_graph(pipeline_srdf, duration_scale=0.5), iterations=20)
        advances = compare_traces(fast, slow)
        assert all(value >= -1e-9 for value in advances.values())
        assert max(advances.values()) > 0.0


@settings(max_examples=40, deadline=None)
@given(
    durations=durations_strategy,
    extra_edges=edges_strategy,
    feedback_tokens=st.integers(min_value=1, max_value=3),
    scale=st.floats(min_value=0.2, max_value=1.0, allow_nan=False),
)
def test_reducing_durations_is_monotonic(durations, extra_edges, feedback_tokens, scale):
    graph = _random_live_graph(durations, extra_edges, feedback_tokens)
    faster = speedup_graph(graph, duration_scale=scale)
    assert check_monotonicity(graph, faster, iterations=15)


@settings(max_examples=40, deadline=None)
@given(
    durations=durations_strategy,
    extra_edges=edges_strategy,
    feedback_tokens=st.integers(min_value=1, max_value=3),
    extra=st.integers(min_value=0, max_value=4),
)
def test_adding_tokens_is_monotonic(durations, extra_edges, feedback_tokens, extra):
    graph = _random_live_graph(durations, extra_edges, feedback_tokens)
    n = len(durations)
    faster = speedup_graph(graph, extra_tokens={f"ring{n - 1}": extra})
    assert check_monotonicity(graph, faster, iterations=15)


@settings(max_examples=25, deadline=None)
@given(
    durations=durations_strategy,
    feedback_tokens=st.integers(min_value=1, max_value=3),
    scale=st.floats(min_value=0.3, max_value=0.95, allow_nan=False),
    extra=st.integers(min_value=1, max_value=3),
)
def test_combined_speedup_is_monotonic(durations, feedback_tokens, scale, extra):
    """Speeding up durations *and* adding tokens together is still monotonic."""
    graph = _random_live_graph(durations, [], feedback_tokens)
    n = len(durations)
    faster = speedup_graph(
        graph, duration_scale=scale, extra_tokens={f"ring{n - 1}": extra}
    )
    assert check_monotonicity(graph, faster, iterations=15)
