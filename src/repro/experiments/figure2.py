"""Experiment 1 of the paper: the producer-consumer budget/buffer trade-off.

Reproduces Figures 2(a) and 2(b):

* a producer-consumer task graph (two tasks on two processors, replenishment
  interval 40 Mcycles, worst-case execution time 1 Mcycle, required period
  10 Mcycles, unit containers);
* the objective prefers budget minimisation over buffer minimisation;
* the trade-off is explored by sweeping the maximum buffer capacity from 1 to
  10 containers and recording the minimal budget (Figure 2(a)) and the budget
  reduction per extra container (Figure 2(b)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.sensitivity import BudgetReductionStep, budget_reduction_curve
from repro.baselines.budget_minimization import producer_consumer_minimum_budget
from repro.core.allocator import AllocatorOptions
from repro.core.objective import ObjectiveWeights
from repro.core.tradeoff import TradeoffCurve, TradeoffExplorer
from repro.taskgraph.configuration import Configuration
from repro.taskgraph.generators import (
    PAPER_PERIOD,
    PAPER_REPLENISHMENT_INTERVAL,
    PAPER_WCET,
    producer_consumer_configuration,
)

#: Capacity sweep of the paper's Figure 2 (containers).
DEFAULT_CAPACITY_SWEEP = tuple(range(1, 11))


@dataclass
class Figure2Result:
    """Data behind Figures 2(a) and 2(b)."""

    capacity_limits: List[int] = field(default_factory=list)
    budget_wa: List[float] = field(default_factory=list)
    budget_wb: List[float] = field(default_factory=list)
    relaxed_budget_wa: List[float] = field(default_factory=list)
    analytic_budget: List[float] = field(default_factory=list)
    reductions: List[BudgetReductionStep] = field(default_factory=list)
    curve: Optional[TradeoffCurve] = None

    def rows(self) -> List[Dict[str, object]]:
        """Figure 2(a) as table rows (one per buffer capacity)."""
        rows: List[Dict[str, object]] = []
        for i, limit in enumerate(self.capacity_limits):
            rows.append(
                {
                    "buffer_capacity": limit,
                    "budget_wa_mcycles": self.budget_wa[i],
                    "budget_wb_mcycles": self.budget_wb[i],
                    "relaxed_budget_mcycles": self.relaxed_budget_wa[i],
                    "analytic_budget_mcycles": self.analytic_budget[i],
                }
            )
        return rows

    def reduction_rows(self) -> List[Dict[str, object]]:
        """Figure 2(b) as table rows (one per additional container)."""
        return [
            {
                "buffer_capacity": step.capacity_limit,
                "delta_budget_mcycles": step.reduction,
            }
            for step in self.reductions
        ]


def build_configuration(max_capacity: Optional[int] = None) -> Configuration:
    """The producer-consumer configuration with the paper's parameters."""
    return producer_consumer_configuration(
        replenishment_interval=PAPER_REPLENISHMENT_INTERVAL,
        wcet=PAPER_WCET,
        period=PAPER_PERIOD,
        max_capacity=max_capacity,
    )


def run_figure2(
    capacity_sweep: Sequence[int] = DEFAULT_CAPACITY_SWEEP,
    backend: str = "auto",
    run_simulation: bool = False,
) -> Figure2Result:
    """Run the full sweep and return the data of Figures 2(a) and 2(b)."""
    configuration = build_configuration()
    explorer = TradeoffExplorer(
        weights=ObjectiveWeights.prefer_budgets(),
        allocator_options=AllocatorOptions(
            backend=backend, run_simulation=run_simulation
        ),
    )
    curve = explorer.sweep_capacity_limit(configuration, capacity_sweep)
    return figure2_from_curve(curve)


def figure2_from_curve(curve: TradeoffCurve) -> Figure2Result:
    """Build the figure data from an already-computed trade-off curve.

    This is the seam the batch engine uses: the sweep itself can come from
    :class:`~repro.core.tradeoff.TradeoffExplorer` or from
    :class:`~repro.batch.executor.BatchExecutor` — the derived figure data is
    identical.
    """
    result = Figure2Result(curve=curve)
    for point in curve.feasible_points():
        result.capacity_limits.append(point.capacity_limit)
        result.budget_wa.append(point.budgets["wa"])
        result.budget_wb.append(point.budgets["wb"])
        result.relaxed_budget_wa.append(point.relaxed_budgets["wa"])
        result.analytic_budget.append(
            producer_consumer_minimum_budget(
                point.capacity_limit,
                replenishment_interval=PAPER_REPLENISHMENT_INTERVAL,
                wcet=PAPER_WCET,
                period=PAPER_PERIOD,
            )
        )
    # Figure 2(b): reduction of the per-task budget per extra container,
    # computed from the relaxed (continuous) budgets as in the paper's plot.
    result.reductions = budget_reduction_curve(curve, task_name="wa", relaxed=True)
    return result
