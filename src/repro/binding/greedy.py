"""Greedy task-to-processor and buffer-to-memory binding.

The paper's conclusion names the computation of bindings (which processor
runs which task, which memory holds which buffer) as the next step of an
automated mapping flow.  This module implements that step with the standard
greedy heuristics used by practical flows:

* tasks are bound longest-processing-time-first to the processor with the
  lowest accumulated *minimum-budget* load, where the minimum budget of a
  task is the throughput-implied lower bound ``̺(p)·χ(w)/µ(T)`` (plus one
  allocation granule of rounding slack, mirroring Constraint (9));
* buffers are bound largest-first to the memory with the most remaining
  capacity (bounded memories) or the least accumulated storage (unbounded
  memories), using the smallest feasible capacity plus one container as the
  storage estimate (mirroring Constraint (10)).

The result is a new :class:`~repro.taskgraph.configuration.Configuration`
with every task and buffer re-bound; the joint budget/buffer computation of
:mod:`repro.core` then runs on it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import BindingError, ModelError
from repro.taskgraph.buffer import Buffer
from repro.taskgraph.configuration import Configuration
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.platform import Platform
from repro.taskgraph.task import Task


@dataclass
class BindingResult:
    """Outcome of a greedy binding pass."""

    configuration: Configuration
    task_bindings: Dict[str, str] = field(default_factory=dict)
    buffer_bindings: Dict[str, str] = field(default_factory=dict)
    processor_load: Dict[str, float] = field(default_factory=dict)
    memory_load: Dict[str, float] = field(default_factory=dict)

    @property
    def max_processor_load(self) -> float:
        return max(self.processor_load.values(), default=0.0)

    @property
    def load_imbalance(self) -> float:
        """Difference between the most and least loaded processor (fractions)."""
        if not self.processor_load:
            return 0.0
        return self.max_processor_load - min(self.processor_load.values())


def _minimum_budget_demand(
    task: Task, graph: TaskGraph, platform: Platform, processor_name: str, granularity: float
) -> float:
    """Throughput-implied minimum budget of ``task`` on one *candidate* processor.

    Uses the type/speed-resolved effective cycles on that processor, so a
    fast or well-matched processor type advertises a smaller demand and the
    greedy pass can exploit heterogeneity.  Raises
    :class:`~repro.exceptions.ModelError` when the task has no cycle cost
    for the processor's type (the caller skips such candidates).
    """
    processor = platform.processor(processor_name)
    minimum = (
        processor.replenishment_interval
        * graph.period_cycles(task.name, processor)
        / graph.period
    )
    if task.min_budget is not None:
        minimum = max(minimum, task.min_budget)
    return minimum + granularity


def bind_greedy(configuration: Configuration) -> BindingResult:
    """Re-bind every task and buffer of a configuration with greedy heuristics.

    The input configuration's existing bindings are ignored (they only serve
    as the source of the task and buffer parameters).  Raises
    :class:`~repro.exceptions.BindingError` when even the greedy heuristic
    cannot fit the minimum demands, which is a sound early "no" because the
    greedy load bound is a lower bound on any binding's load only per choice —
    callers wanting certainty should run the joint allocator afterwards.
    """
    platform = configuration.platform
    if not len(platform):
        raise BindingError("the platform has no processors to bind tasks to")
    if not platform.memories:
        raise BindingError("the platform has no memories to bind buffers to")

    granularity = configuration.granularity
    # Accumulated minimum-budget demand per processor, as a fraction of its
    # replenishment interval.
    demand: Dict[str, float] = {name: p.scheduling_overhead for name, p in platform.processors.items()}
    storage: Dict[str, float] = {name: 0.0 for name in platform.memories}

    task_bindings: Dict[str, str] = {}
    buffer_bindings: Dict[str, str] = {}
    new_graphs: List[TaskGraph] = []

    # Bind tasks: largest minimum demand first, to the least-loaded processor.
    all_tasks = sorted(
        configuration.all_tasks(),
        key=lambda pair: pair[1].iteration_cycles / pair[0].period,
        reverse=True,
    )
    for graph, task in all_tasks:
        best_name: Optional[str] = None
        best_load = float("inf")
        for processor_name, processor in platform.processors.items():
            try:
                needed = _minimum_budget_demand(
                    task, graph, platform, processor_name, granularity
                )
            except ModelError:
                continue  # no cycle cost for this processor type
            load = (demand[processor_name] + needed) / processor.replenishment_interval
            if load < best_load - 1e-12:
                best_load = load
                best_name = processor_name
        if best_name is None:
            raise BindingError(
                f"task {task.name!r} cannot be bound anywhere: no processor "
                f"type matches its cycle-cost table"
            )
        if best_load > 1.0 + 1e-9:
            raise BindingError(
                f"task {task.name!r} cannot be bound anywhere: every processor would "
                f"exceed its replenishment interval with the minimum budgets alone"
            )
        demand[best_name] += _minimum_budget_demand(task, graph, platform, best_name, granularity)
        task_bindings[task.name] = best_name

    # Bind buffers: largest minimal storage first, to the memory with the most
    # remaining room (bounded) or the least usage (unbounded).
    all_buffers = sorted(
        configuration.all_buffers(),
        key=lambda pair: pair[1].storage_for(pair[1].smallest_feasible_capacity + 1),
        reverse=True,
    )
    for _, buffer in all_buffers:
        needed = buffer.storage_for(buffer.smallest_feasible_capacity + 1)
        best_name = None
        best_metric = float("-inf")
        for memory_name, memory in platform.memories.items():
            if memory.is_bounded:
                remaining = memory.capacity - storage[memory_name] - needed
                if remaining < -1e-9:
                    continue
                metric = remaining
            else:
                metric = -storage[memory_name]
            if metric > best_metric:
                best_metric = metric
                best_name = memory_name
        if best_name is None:
            raise BindingError(
                f"buffer {buffer.name!r} does not fit in any memory even at its "
                f"smallest feasible capacity"
            )
        storage[best_name] += needed
        buffer_bindings[buffer.name] = best_name

    # Materialise the re-bound configuration.
    for graph in configuration.task_graphs:
        new_graph = TaskGraph(name=graph.name, period=graph.period)
        for task in graph.tasks:
            new_graph.add_task(task.with_processor(task_bindings[task.name]))
        for buffer in graph.buffers:
            new_graph.add_buffer(
                Buffer(
                    name=buffer.name,
                    source=buffer.source,
                    target=buffer.target,
                    memory=buffer_bindings[buffer.name],
                    container_size=buffer.container_size,
                    initial_tokens=buffer.initial_tokens,
                    capacity_weight=buffer.capacity_weight,
                    min_capacity=buffer.min_capacity,
                    max_capacity=buffer.max_capacity,
                    production_rates=buffer.production_rates,
                    consumption_rates=buffer.consumption_rates,
                )
            )
        new_graphs.append(new_graph)

    bound = Configuration(
        platform=platform,
        task_graphs=new_graphs,
        granularity=granularity,
        name=f"{configuration.name}-bound",
    )
    result = BindingResult(
        configuration=bound,
        task_bindings=task_bindings,
        buffer_bindings=buffer_bindings,
        processor_load={
            name: demand[name] / platform.processor(name).replenishment_interval
            for name in platform.processors
        },
        memory_load={
            name: (storage[name] / memory.capacity if memory.is_bounded else storage[name])
            for name, memory in platform.memories.items()
        },
    )
    return result


def bind_and_allocate(configuration: Configuration, **allocator_kwargs):
    """Convenience: greedy binding followed by the joint budget/buffer computation."""
    from repro.core.allocator import allocate

    result = bind_greedy(configuration)
    mapped = allocate(result.configuration, **allocator_kwargs)
    return result, mapped
