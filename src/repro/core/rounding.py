"""Conservative rounding of the relaxed optimiser outputs.

The SOCP of Algorithm 1 works with real-valued budgets ``β'`` and capacities
``γ'``; the implementable quantities are an integral number of budget granules
and an integral number of containers.  Rounding is done *conservatively*
(Section IV of the paper):

* budgets are rounded **up** to the next multiple of the granularity ``g`` —
  a larger budget shortens both actor firing durations, so the schedule
  remains admissible; the extra ``≤ g`` per task was pre-charged in the
  processor-capacity constraint (Constraint (9));
* capacities are rounded **up** to the next integer — more space tokens can
  only make token arrivals earlier (monotonicity); the extra ``≤ 1`` container
  per buffer was pre-charged in the memory constraint (Constraint (10)).

A tiny snapping tolerance absorbs solver round-off (e.g. a relaxed capacity of
``3.0000000004`` becomes 3 containers, not 4); the allocator verifies the
rounded mapping afterwards, so the tolerance cannot silently produce an
infeasible result.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping

from repro.exceptions import AllocationError

#: Absolute slack (in granules) absorbed when snapping nearly-integral values.
SNAP_TOLERANCE = 1e-6
#: Relative round-off scale of the granule count: double arithmetic on a
#: count of ``g`` granules carries error proportional to ``g`` (a few
#: thousand ulp of headroom here), so the snap window must grow with the
#: count or large budgets on fine granularities get charged a spurious
#: extra granule.
RELATIVE_SNAP = 1e-11


def round_budget(relaxed_budget: float, granularity: float, tolerance: float = SNAP_TOLERANCE) -> float:
    """Round a relaxed budget up to the next multiple of the granularity.

    The snapping window absorbs numerical round-off only, never genuine
    fractional requirements: it is the larger of the absolute ``tolerance``
    (the historical behaviour at small granule counts) and a term *relative
    to the granule count* (:data:`RELATIVE_SNAP`), because double round-off
    on a count of ~10⁶ granules dwarfs any absolute epsilon — with a purely
    absolute window such a budget silently gains a whole extra granule on an
    ordinary representation error.  The window stays far below half a
    granule across every representable count, so a genuinely fractional
    budget always rounds **up** (the conservative contract of Section IV);
    the capped window merely guards the degenerate extreme.
    """
    if relaxed_budget <= 0.0:
        raise AllocationError(f"relaxed budget must be positive, got {relaxed_budget!r}")
    if granularity <= 0.0:
        raise AllocationError(f"granularity must be positive, got {granularity!r}")
    granules = relaxed_budget / granularity
    snap_window = min(max(tolerance, RELATIVE_SNAP * granules), 0.49)
    snapped = math.ceil(granules - snap_window)
    return max(1, snapped) * granularity


def round_capacity(relaxed_capacity: float, tolerance: float = SNAP_TOLERANCE) -> int:
    """Round a relaxed capacity up to the next whole number of containers."""
    if relaxed_capacity <= 0.0:
        raise AllocationError(
            f"relaxed capacity must be positive, got {relaxed_capacity!r}"
        )
    return max(1, math.ceil(relaxed_capacity - tolerance))


def round_budgets(
    relaxed_budgets: Mapping[str, float], granularity: float
) -> Dict[str, float]:
    """Apply :func:`round_budget` to every task."""
    return {
        task: round_budget(value, granularity) for task, value in relaxed_budgets.items()
    }


def round_capacities(relaxed_capacities: Mapping[str, float]) -> Dict[str, int]:
    """Apply :func:`round_capacity` to every buffer."""
    return {name: round_capacity(value) for name, value in relaxed_capacities.items()}


def rounding_overhead(
    relaxed_budgets: Mapping[str, float],
    rounded_budgets: Mapping[str, float],
) -> Dict[str, float]:
    """Per-task budget added by rounding (always in ``[0, g]``)."""
    return {
        task: rounded_budgets[task] - relaxed_budgets[task] for task in relaxed_budgets
    }
