"""Deterministic, seeded fault injection for chaos tests.

A :class:`FaultPlan` arms *named injection sites* — fixed points in the
production code (``executor.worker``, ``decomposed.worker``,
``newton.linalg``, ``cache.corrupt``, ``item.timeout``, ``journal.write``,
``admission.solve``, ``replay.event``) that call :func:`maybe_fail` on every
pass.  With no plan armed the call is one module-attribute read and a
``None`` check, so production runs pay nothing.  With a plan armed, each
site counts its hits and fires the configured action on the configured hit
— the *nth* pass, optionally filtered by a label substring — which makes a
chaos scenario a deterministic, replayable CI citizen instead of a race.

Plans serialise to plain dicts (:meth:`FaultPlan.to_dict` /
:meth:`FaultPlan.from_dict`) so they can cross process boundaries: the
batch executor ships the armed plan to its pool workers inside the item
payload, and the decomposed process team forwards it through the per-block
solver options.

Actions
-------

``raise``
    Raise :class:`repro.exceptions.FaultInjected`.
``numerical-error``
    Raise :class:`repro.exceptions.NumericalError` (a solver blow-up).
``linalg-error``
    Raise :class:`numpy.linalg.LinAlgError` (a factorisation failure inside
    a structured Newton iteration).
``oserror``
    Raise :class:`OSError` (a failed journal/cache write).
``exit``
    Terminate the process immediately with ``os._exit`` — a worker crash or
    a kill mid-replay.  Bypasses ``finally`` blocks on purpose: that is what
    a real ``SIGKILL`` does.
``sleep``
    Stall for ``seconds`` (per-item timeout scenarios).
``corrupt``
    No exception; :func:`maybe_fail` returns the firing spec and the call
    site performs its own corruption (e.g. the result cache writing torn
    bytes).  Sites that do not understand ``corrupt`` ignore the return.

This module deliberately imports nothing heavy (numpy only inside the
``linalg-error`` action) so arming a site in :mod:`repro.solver.barrier` or
:mod:`repro.batch.cache` cannot create an import cycle.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional

from repro.exceptions import FaultInjected, NumericalError

__all__ = [
    "ACTIONS",
    "FaultSpec",
    "FaultPlan",
    "armed",
    "active_plan",
    "install",
    "uninstall",
    "maybe_fail",
]

#: Exit status used by the ``exit`` action, distinctive enough to assert on.
EXIT_STATUS = 23

ACTIONS = (
    "raise",
    "numerical-error",
    "linalg-error",
    "oserror",
    "exit",
    "sleep",
    "corrupt",
)


@dataclass
class FaultSpec:
    """One armed injection: fire ``action`` on the ``nth`` hit of ``site``."""

    site: str
    action: str
    nth: int = 1            #: 1-based hit index at which the spec starts firing
    times: int = 1          #: how many consecutive hits fire from ``nth`` on
    match: Optional[str] = None   #: only hits whose label contains this fire
    seconds: float = 0.0    #: stall duration for the ``sleep`` action
    message: str = "injected fault"
    hits: int = 0           #: matching passes seen so far (mutated at run time)
    fired: int = 0          #: times this spec actually fired

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {ACTIONS}"
            )
        if self.nth < 1:
            raise ValueError(f"nth must be >= 1, got {self.nth}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "action": self.action,
            "nth": self.nth,
            "times": self.times,
            "match": self.match,
            "seconds": self.seconds,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultSpec":
        return cls(
            site=str(data["site"]),
            action=str(data["action"]),
            nth=int(data.get("nth", 1)),
            times=int(data.get("times", 1)),
            match=None if data.get("match") is None else str(data["match"]),
            seconds=float(data.get("seconds", 0.0)),
            message=str(data.get("message", "injected fault")),
        )


@dataclass
class FaultPlan:
    """A named, seeded set of armed injection specs.

    The ``seed`` does not drive randomness — every firing decision is a
    deterministic hit count — it *names* the scenario, so a failing chaos
    run can be reproduced exactly from its logged plan.
    """

    seed: int = 0
    specs: List[FaultSpec] = field(default_factory=list)

    def arm(
        self,
        site: str,
        action: str,
        nth: int = 1,
        times: int = 1,
        match: Optional[str] = None,
        seconds: float = 0.0,
        message: Optional[str] = None,
    ) -> "FaultPlan":
        self.specs.append(
            FaultSpec(
                site=site,
                action=action,
                nth=nth,
                times=times,
                match=match,
                seconds=seconds,
                message=message or f"injected {action} at {site} (seed {self.seed})",
            )
        )
        return self

    def fired(self, site: Optional[str] = None) -> int:
        """Total firings, optionally restricted to one site."""
        return sum(
            spec.fired
            for spec in self.specs
            if site is None or spec.site == site
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultPlan":
        return cls(
            seed=int(data.get("seed", 0)),
            specs=[FaultSpec.from_dict(spec) for spec in data.get("specs", [])],
        )


#: The process-global armed plan; ``None`` keeps every site inert.
_ACTIVE: Optional[FaultPlan] = None
_LOCK = threading.Lock()


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


def install(plan: Optional[FaultPlan]) -> None:
    """Arm ``plan`` process-wide (``None`` disarms)."""
    global _ACTIVE
    _ACTIVE = plan


def uninstall() -> None:
    install(None)


@contextmanager
def armed(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Arm ``plan`` for the duration of the block, then restore what was armed.

    ``None`` is a no-op (the surrounding plan, if any, stays armed) so call
    sites can wrap unconditionally: ``with armed(maybe_plan): ...``.
    """
    if plan is None:
        yield None
        return
    previous = _ACTIVE
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


def _record_fired(spec: FaultSpec) -> None:
    spec.fired += 1
    # Injected-fault counters surface in the obs metrics snapshot so a chaos
    # run can assert every armed fault actually fired.  Imported lazily: the
    # inert path (no plan armed) never touches the metrics module.
    from repro.obs.metrics import get_registry

    registry = get_registry()
    if registry.enabled:
        registry.counter("reliability.faults.injected").inc()
        registry.counter(f"reliability.faults.{spec.site}").inc()


def maybe_fail(site: str, label: Optional[str] = None) -> Optional[FaultSpec]:
    """The injection-site hook: fire any armed spec that matches this pass.

    Returns the firing spec for the cooperative ``corrupt`` action (the call
    site performs the corruption) and ``None`` otherwise.  With no plan
    armed this is a single attribute read.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    with _LOCK:
        firing: Optional[FaultSpec] = None
        for spec in plan.specs:
            if spec.site != site:
                continue
            if spec.match is not None and (label is None or spec.match not in label):
                continue
            spec.hits += 1
            if firing is None and spec.nth <= spec.hits < spec.nth + spec.times:
                firing = spec
        if firing is None:
            return None
        _record_fired(firing)
    return _execute(firing)


def _execute(spec: FaultSpec) -> Optional[FaultSpec]:
    if spec.action == "raise":
        raise FaultInjected(spec.message)
    if spec.action == "numerical-error":
        raise NumericalError(spec.message)
    if spec.action == "linalg-error":
        import numpy as np

        raise np.linalg.LinAlgError(spec.message)
    if spec.action == "oserror":
        raise OSError(spec.message)
    if spec.action == "exit":
        os._exit(EXIT_STATUS)
    if spec.action == "sleep":
        time.sleep(spec.seconds)
        return None
    # "corrupt": cooperative — the call site corrupts its own write.
    return spec
