"""Command-line interface.

The CLI makes the library usable from a shell or a build system without
writing Python:

* ``repro-map allocate <config.json>`` — run the joint budget/buffer
  computation on a configuration stored as JSON and print (or write) the
  mapped configuration.
* ``repro-map allocate-workload <workload.json>`` — jointly allocate a
  multi-application workload on its shared platform and print the per-
  application mappings plus the per-processor budget split.
* ``repro-map admit <workload.json> <candidate.json>`` — run-time admission
  control: decide whether one more application can run alongside a workload
  (exit 0 = admitted with the new joint allocation, 1 = rejected with a
  structured reason); ``repro-map admit --trace <trace.json>`` replays a
  whole arrival/departure event trace through the incremental session.
* ``repro-map sweep <config.json> --capacities 1:10`` — reproduce a
  budget-vs-buffer trade-off sweep for an arbitrary configuration.
* ``repro-map experiments`` — regenerate the paper's figures.
* ``repro-map validate <config.json>`` — structural validation plus the
  closed-form feasibility screen, without invoking the solver.
* ``repro-map batch <campaign.json>`` — run a whole campaign of allocation
  problems through the parallel batch engine with a persistent result cache.

All sub-commands exit with status 0 on success, 1 on infeasibility or
validation failure, and 2 on usage errors.

Batch campaigns
---------------

``repro-map batch`` takes a declarative JSON campaign (see
:mod:`repro.batch.campaign` for the full schema).  A campaign names the
solver backend and objective preset once, and lists *entries*: generator
sweeps (cartesian products over the parameters of the synthetic generators
in :mod:`repro.taskgraph.generators`), seeded instance families (``count``),
and explicit configurations, optionally swept over a common per-buffer
capacity bound.  A worked example::

    {
      "name": "nightly",
      "seed": 7,
      "backend": "auto",
      "weights": "prefer-budgets",
      "entries": [
        {"generator": "chain", "sweep": {"stages": [2, 3, 4, 5]}},
        {"generator": "random_dag",
         "params": {"task_count": 8, "processor_count": 8, "max_capacity": 8},
         "count": 100},
        {"configuration_path": "decoder.json", "capacity_sweep": "1:10"}
      ]
    }

Running ``repro-map batch nightly.json --workers 4`` expands the campaign
into its instances, skips every instance already present in the result cache
(``--cache-dir``, disable with ``--no-cache``), fans the rest out over four
worker processes, and prints the per-campaign summary (feasibility rate,
budget/capacity percentiles, allocations/sec).  ``--per-item`` additionally
prints one row per instance and ``--output results.json`` writes the full
structured results.  The exit status is 0 when at least one instance is
feasible and 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis import render_table, screen_configuration
from repro.core import AllocatorOptions, JointAllocator, ObjectiveWeights, TradeoffExplorer
from repro.exceptions import InfeasibleProblemError, ReproError
from repro.taskgraph import serialization

#: Exit codes used by every sub-command.
EXIT_OK = 0
EXIT_INFEASIBLE = 1
EXIT_USAGE = 2


def _load_configuration(path: str):
    return serialization.load_configuration(path)


def _weights(name: str) -> ObjectiveWeights:
    from repro.batch.executor import resolve_weights

    return resolve_weights(name)


def _parse_capacity_range(text: str) -> List[int]:
    """Parse ``"1:10"`` or ``"2,4,8"`` into a list of capacities.

    Delegates to the shared :func:`repro.batch.campaign.parse_capacity_values`
    (the parser behind campaign ``capacity_sweep`` fields, so both surfaces
    accept the same syntax).  Used as an ``argparse`` type: malformed input
    (reversed ranges, empty segments, non-integers, non-positive capacities)
    raises :class:`argparse.ArgumentTypeError` and surfaces as a clean usage
    error (exit code 2) instead of a traceback.
    """
    from repro.batch.campaign import parse_capacity_values

    try:
        return parse_capacity_values(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(
            f"malformed capacity range {text!r}: {error}"
        ) from None


# -- telemetry ---------------------------------------------------------------------
class _CliTelemetry:
    """Scoped telemetry capture behind the ``--trace``/``--profile``/
    ``--telemetry-log`` flags.

    :meth:`scope` wraps the command's solve in :func:`repro.obs.capture` when
    any telemetry flag is set (and is a no-op otherwise); :meth:`render`
    prints the requested views afterwards.  Keeping capture and rendering
    separate lets the command print its normal output between the two.
    """

    def __init__(self, arguments: argparse.Namespace) -> None:
        self.show_trace = bool(getattr(arguments, "show_trace", False))
        self.profile = bool(getattr(arguments, "profile", False))
        self.log = getattr(arguments, "telemetry_log", None)
        self.active = self.show_trace or self.profile or bool(self.log)
        self.capture = None

    @contextmanager
    def scope(self):
        if not self.active:
            yield None
            return
        from repro import obs

        with obs.capture(sink=self.log) as captured:
            self.capture = captured
            yield captured

    def render(self) -> None:
        if self.capture is None:
            return
        from repro.obs.export import render_profile, render_trace_tree

        if self.show_trace:
            print()
            print(render_trace_tree(self.capture.spans))
        if self.profile:
            print()
            print(render_profile(self.capture.spans))
        if self.log:
            print(f"\ntelemetry written to {self.log}")


def _add_telemetry_flags(
    sub: argparse.ArgumentParser, include_trace: bool = True
) -> None:
    if include_trace:
        sub.add_argument(
            "--trace",
            dest="show_trace",
            action="store_true",
            help="render the nested span tree of this run (phases with timings)",
        )
    sub.add_argument(
        "--profile",
        action="store_true",
        help="render per-span aggregate timings (calls, total/self time, share)",
    )
    sub.add_argument(
        "--telemetry-log",
        metavar="PATH",
        help="append schema-versioned JSONL telemetry records to PATH",
    )


# -- sub-commands ----------------------------------------------------------------
def _single_solve_stats(solver_info: dict) -> dict:
    """The ``--stats`` totals for one solve, from a mapping's solver_info."""
    stats = dict(solver_info.get("solve_stats", {}))
    totals = {
        "solves": 1,
        "warm_started": 1 if stats.get("warm_started") else 0,
        "phase1_skipped": 1 if stats.get("phase1_skipped") else 0,
        "newton_iterations": int(stats.get("newton_iterations", 0)),
        "phase1_newton_iterations": int(stats.get("phase1_newton_iterations", 0)),
        "solve_time": float(solver_info.get("solve_time", 0.0) or 0.0),
    }
    if "structured" in stats:
        totals["structured"] = bool(stats["structured"])
    for key in (
        "sparse_nnz",
        "factorization_time",
        "schur_time",
        "block_factorizations",
        # decomposed (price-coordination) mode
        "decomposed_blocks",
        "decomposed_workers",
        "decomposed_fanout",
        "price_iterations",
        "price_rungs",
        "coordination_skipped",
        "parallel_speedup",
        "parallel_time",
        "subproblem_solves",
        "joint_polish",
    ):
        if key in stats:
            totals[key] = stats[key]
    timings = solver_info.get("timings")
    if timings:
        totals["timings"] = dict(timings)
    return totals


def _add_mode_flags(sub: argparse.ArgumentParser) -> None:
    """Workload solve-mode flags shared by allocate-workload and admit."""
    sub.add_argument(
        "--mode",
        choices=("joint", "decomposed"),
        default="joint",
        help="workload solve mode: one joint block-structured solve, or "
        "per-application subproblems coordinated through shared-capacity "
        "prices (default: joint)",
    )
    sub.add_argument(
        "--workers",
        type=int,
        default=0,
        help="decomposed mode: worker count (0 = one per application)",
    )
    sub.add_argument(
        "--fanout",
        choices=("thread", "process"),
        default="thread",
        help="decomposed mode: in-process threads or worker processes",
    )


def _mode_options(arguments: argparse.Namespace, **extra: object) -> AllocatorOptions:
    return AllocatorOptions(
        backend=arguments.backend,
        mode=getattr(arguments, "mode", "joint"),
        workers=getattr(arguments, "workers", 0),
        fanout=getattr(arguments, "fanout", "thread"),
        **extra,
    )


def _cmd_allocate(arguments: argparse.Namespace) -> int:
    configuration = _load_configuration(arguments.configuration)
    allocator = JointAllocator(
        weights=_weights(arguments.weights),
        options=AllocatorOptions(backend=arguments.backend),
    )
    telemetry = _CliTelemetry(arguments)
    try:
        with telemetry.scope():
            mapped = allocator.allocate(configuration)
    except InfeasibleProblemError as error:
        print(f"infeasible: {error}", file=sys.stderr)
        telemetry.render()
        return EXIT_INFEASIBLE

    payload = serialization.mapped_configuration_to_dict(mapped)
    if arguments.output:
        Path(arguments.output).write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"mapped configuration written to {arguments.output}")
    else:
        print(render_table(
            [{"task": name, "budget": budget} for name, budget in sorted(mapped.budgets.items())]
        ))
        print()
        print(render_table(
            [
                {"buffer": name, "capacity": capacity}
                for name, capacity in sorted(mapped.buffer_capacities.items())
            ]
        ))
    if arguments.stats:
        print()
        print(_render_solve_stats(_single_solve_stats(mapped.solver_info)))
    telemetry.render()
    return EXIT_OK


def _cmd_allocate_workload(arguments: argparse.Namespace) -> int:
    from repro.taskgraph.workload import load_workload, mapped_workload_to_dict

    workload = load_workload(arguments.workload)
    allocator = JointAllocator(
        weights=_weights(arguments.weights),
        options=_mode_options(arguments),
    )
    telemetry = _CliTelemetry(arguments)
    try:
        with telemetry.scope():
            mapped = allocator.allocate_workload(workload)
    except InfeasibleProblemError as error:
        print(f"infeasible: {error}", file=sys.stderr)
        telemetry.render()
        return EXIT_INFEASIBLE

    if arguments.output:
        payload = mapped_workload_to_dict(mapped)
        Path(arguments.output).write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"mapped workload written to {arguments.output}")
    else:
        budget_rows = [
            {"application": app_name, "task": task_name, "budget": budget}
            for app_name, app_mapped in mapped.applications.items()
            for task_name, budget in sorted(app_mapped.budgets.items())
        ]
        capacity_rows = [
            {"application": app_name, "buffer": buffer_name, "capacity": capacity}
            for app_name, app_mapped in mapped.applications.items()
            for buffer_name, capacity in sorted(app_mapped.buffer_capacities.items())
        ]
        print(render_table(budget_rows))
        print()
        print(render_table(capacity_rows))
        print()
        print("budget split per shared processor:")
        print(render_table(mapped.budget_split_rows()))
    if arguments.stats:
        print()
        print(_render_solve_stats(_single_solve_stats(mapped.solver_info)))
    telemetry.render()
    return EXIT_OK


def _cmd_validate(arguments: argparse.Namespace) -> int:
    try:
        configuration = _load_configuration(arguments.configuration)
        configuration.validate()
    except ReproError as error:
        print(f"invalid configuration: {error}", file=sys.stderr)
        return EXIT_INFEASIBLE
    screen = screen_configuration(configuration)
    rows = [
        {"resource": name, "minimum load": round(load, 4)}
        for name, load in {**screen.processor_load, **screen.memory_load}.items()
    ]
    print(render_table(rows))
    if not screen.may_be_feasible:
        for violation in screen.violations:
            print(f"violation: {violation}", file=sys.stderr)
        return EXIT_INFEASIBLE
    print("configuration is structurally valid and passes the feasibility screen")
    return EXIT_OK


def _render_solve_stats(stats: dict) -> str:
    """Human-readable solver statistics block for ``--stats`` output.

    Only values the caller actually measured are rendered: the session-backed
    sweep reports compilations and rebuild fallbacks, the per-item batch path
    does not (it has no session, so those numbers would be fabricated).
    """
    lines = ["solver statistics:"]
    if "compiles" in stats:
        lines.append(f"  compilations:        {stats['compiles']}")
    lines.append(f"  solves:              {stats.get('solves', 0)}")
    if "rebuilds" in stats:
        lines.append(f"  rebuild fallbacks:   {stats['rebuilds']}")
    lines.append(f"  warm-started solves: {stats.get('warm_started', 0)}")
    lines.append(f"  phase I skipped:     {stats.get('phase1_skipped', 0)}")
    lines.append(
        f"  Newton iterations:   {stats.get('newton_iterations', 0)} "
        f"(+{stats.get('phase1_newton_iterations', 0)} in phase I)"
    )
    if "structured" in stats:
        lines.append(
            "  Newton backend:      "
            + ("sparse block-structured (Schur)" if stats["structured"] else "dense")
        )
    if "sparse_solves" in stats:
        # Session aggregate: the sparse-vs-dense engagement split and how
        # often the cached factorisation pieces were reused across re-solves.
        lines.append(
            f"  sparse solves:       {stats['sparse_solves']} of "
            f"{stats.get('solves', 0)} "
            f"({stats.get('sparse_pieces_reused', 0)} reused cached pieces)"
        )
    if "sparse_nnz" in stats:
        lines.append(f"  constraint nonzeros: {stats['sparse_nnz']}")
    if "factorization_time" in stats:
        lines.append(
            f"  sparse time split:   {float(stats['factorization_time']):.4f} s "
            f"factorization, {float(stats.get('schur_time', 0.0)):.4f} s Schur "
            f"({stats.get('block_factorizations', 0)} block factorizations)"
        )
    if "decomposed_blocks" in stats:
        # Decomposed (price-coordination) mode: the per-application fan-out
        # and how hard the shared-capacity prices had to work.
        skipped = stats.get("coordination_skipped")
        lines.append(
            f"  decomposed solve:    {stats['decomposed_blocks']} subproblems, "
            f"{stats.get('decomposed_workers', 0) or stats['decomposed_blocks']} "
            f"{stats.get('decomposed_fanout', 'thread')} workers"
        )
        lines.append(
            "  price coordination:  "
            + (
                "skipped (standalone optima already fit)"
                if skipped
                else (
                    f"{stats.get('price_iterations', 0)} price iterations over "
                    f"{stats.get('price_rungs', 0)} rungs"
                    + (" + joint polish" if stats.get("joint_polish") else "")
                )
            )
        )
        if "parallel_speedup" in stats:
            lines.append(
                f"  parallel speedup:    {float(stats['parallel_speedup']):.2f}x "
                f"({stats.get('subproblem_solves', 0)} subproblem solves in "
                f"{float(stats.get('parallel_time', 0.0)):.4f} s)"
            )
    lines.append(f"  solve time:          {float(stats.get('solve_time', 0.0)):.4f} s")
    timings = stats.get("timings")
    if timings:
        lines.append("  phase breakdown:")
        for phase in ("compile", "phase1", "centering", "rounding"):
            if phase in timings:
                lines.append(
                    f"    {phase + ':':<18} {float(timings[phase]):.4f} s"
                )
    return "\n".join(lines)


def _cmd_admit(arguments: argparse.Namespace) -> int:
    from repro.core.admission import AdmissionController, load_trace, replay_trace
    from repro.exceptions import JournalError, SnapshotError
    from repro.taskgraph.workload import load_workload, mapped_workload_to_dict

    allocator = JointAllocator(
        weights=_weights(arguments.weights),
        options=_mode_options(arguments, run_simulation=False),
    )
    telemetry = _CliTelemetry(arguments)

    if arguments.journal and not arguments.trace:
        print("--journal requires --trace (durable replay)", file=sys.stderr)
        return EXIT_USAGE
    if arguments.restore and not arguments.journal:
        print("--restore requires --journal", file=sys.stderr)
        return EXIT_USAGE

    if arguments.trace:
        if arguments.workload or arguments.candidate:
            print(
                "admit takes either --trace or a workload + candidate, not both",
                file=sys.stderr,
            )
            return EXIT_USAGE
        trace = load_trace(arguments.trace)
        if arguments.journal:
            from repro.reliability import graceful_interrupts, replay_trace_durably

            try:
                with telemetry.scope(), graceful_interrupts():
                    result = replay_trace_durably(
                        trace,
                        arguments.journal,
                        snapshot_every=arguments.snapshot_every,
                        allocator=allocator,
                        resume=arguments.restore,
                    )
            except (JournalError, SnapshotError) as error:
                print(f"error: {error}", file=sys.stderr)
                return EXIT_USAGE
        else:
            with telemetry.scope():
                result = replay_trace(trace, allocator=allocator)
        print(render_table(result.rows()))
        print(
            f"\ntrace {trace.name!r}: {result.admitted} admitted, "
            f"{result.rejected} rejected, {result.departed} departed "
            f"({len(result.records)} events)"
        )
        if arguments.stats:
            print()
            print(_render_solve_stats(result.solver_stats))
        if arguments.output:
            payload = {
                "events": [record.as_dict() for record in result.records],
                "solver_stats": dict(result.solver_stats),
            }
            Path(arguments.output).write_text(
                json.dumps(payload, indent=2, sort_keys=True)
            )
            print(f"trace results written to {arguments.output}")
        telemetry.render()
        return EXIT_OK if result.admitted > 0 else EXIT_INFEASIBLE

    if not arguments.workload or not arguments.candidate:
        print(
            "admit needs a running workload JSON and a candidate configuration "
            "JSON (or --trace <trace.json>)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    workload = load_workload(arguments.workload)
    try:
        # Seeding takes the running applications over in one joint solve —
        # the candidate question below is then the only admission event.
        controller = AdmissionController(
            workload.platform, allocator=allocator, workload=workload
        )
    except InfeasibleProblemError as error:
        print(
            f"error: the running workload itself is not allocatable: {error}",
            file=sys.stderr,
        )
        return EXIT_INFEASIBLE
    candidate = _load_configuration(arguments.candidate)
    name = arguments.name or candidate.name
    with telemetry.scope():
        decision = controller.admit(name, candidate)
    if decision.verdict:
        print(
            f"anytime verdict: {decision.verdict} ({decision.verdict_stage}), "
            f"confirmed by the exact solve as "
            f"{'admitted' if decision.admitted else 'rejected'}"
        )
    if not decision.admitted:
        print(
            f"rejected: {name!r} cannot run alongside "
            f"{sorted(controller.running)} ({decision.stage}): {decision.reason}",
            file=sys.stderr,
        )
        telemetry.render()
        return EXIT_INFEASIBLE
    mapped = decision.mapped
    print(f"admitted {name!r} alongside {sorted(set(controller.running) - {name})}")
    print()
    print("budget split per shared processor:")
    print(render_table(mapped.budget_split_rows()))
    if arguments.stats:
        print()
        print(_render_solve_stats(controller.session_stats.as_dict()))
    if arguments.output:
        Path(arguments.output).write_text(
            json.dumps(mapped_workload_to_dict(mapped), indent=2, sort_keys=True)
        )
        print(f"mapped workload written to {arguments.output}")
    telemetry.render()
    return EXIT_OK


def _render_sweep_point_stats(curve) -> str:
    """Per-point warm-start/rung behaviour of a sweep (``--stats``).

    One row per swept point (warm start taken, phase I skipped, rungs
    climbed, Newton iterations, elimination blocks reused), followed by the
    cross-point distributions — the rows feed a scoped
    :class:`~repro.obs.metrics.MetricsRegistry`, whose histogram quantiles
    summarise how the warm-start chain behaved over the whole sweep.
    """
    from repro.obs.export import render_metrics
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry(enabled=True)
    rows = []
    for point in curve.points:
        stats = dict(point.solve_stats)
        rows.append(
            {
                "capacity": point.capacity_limit,
                "feasible": "yes" if point.feasible else "no",
                "warm": "yes" if stats.get("warm_started") else "no",
                "phase1": "skipped" if stats.get("phase1_skipped") else "run",
                "rungs": int(stats.get("outer_iterations", 0)),
                "newton": int(stats.get("newton_iterations", 0)),
                "elim reused": int(stats.get("elimination_blocks_reused", 0)),
            }
        )
        if stats.get("warm_started"):
            registry.counter("sweep.warm_started").inc()
        if stats.get("phase1_skipped"):
            registry.counter("sweep.phase1_skipped").inc()
        registry.histogram("sweep.newton_iterations").observe(
            float(stats.get("newton_iterations", 0))
        )
        registry.histogram("sweep.rungs").observe(
            float(stats.get("outer_iterations", 0))
        )
    return (
        "per-point solver behaviour:\n"
        + render_table(rows)
        + "\n\n"
        + render_metrics(registry.snapshot())
    )


def _cmd_sweep(arguments: argparse.Namespace) -> int:
    configuration = _load_configuration(arguments.configuration)
    capacities = arguments.capacities
    explorer = TradeoffExplorer(
        weights=_weights(arguments.weights),
        allocator_options=AllocatorOptions(backend=arguments.backend, run_simulation=False),
    )
    telemetry = _CliTelemetry(arguments)
    with telemetry.scope():
        curve = explorer.sweep_capacity_limit(configuration, capacities)
    print(render_table(curve.as_table()))
    if arguments.stats:
        print()
        print(_render_solve_stats(curve.solver_stats))
        print()
        print(_render_sweep_point_stats(curve))
    telemetry.render()
    return EXIT_OK if curve.feasible_points() else EXIT_INFEASIBLE


def _cmd_experiments(arguments: argparse.Namespace) -> int:
    from repro.experiments.runner import run_all

    run_all(backend=arguments.backend)
    return EXIT_OK


def _cmd_batch(arguments: argparse.Namespace) -> int:
    from repro.batch import load_campaign, per_item_rows, run_campaign
    from repro.obs import ProgressReporter

    spec = load_campaign(arguments.campaign)
    items = spec.expand()
    print(
        f"campaign {spec.name!r}: {len(items)} instances, "
        f"{arguments.workers} worker(s), cache "
        f"{'disabled' if arguments.no_cache else arguments.cache_dir}"
    )
    reporter: Optional[ProgressReporter] = None
    progress = None
    if not arguments.no_progress and items:
        # Live progress with throughput/ETA/feasibility, on stderr so the
        # machine-readable summary on stdout stays clean.
        reporter = ProgressReporter(total=len(items))
        progress = lambda index, result: reporter.update(result)  # noqa: E731
    telemetry_on = bool(arguments.telemetry or arguments.telemetry_log)
    executors: list = []
    # SIGTERM unwinds like Ctrl-C: the worker pool is torn down (no orphan
    # processes) and the cache / telemetry files stay valid.
    from repro.reliability import graceful_interrupts

    with graceful_interrupts():
        results, summary = run_campaign(
            spec,
            workers=arguments.workers,
            cache_dir=arguments.cache_dir,
            use_cache=not arguments.no_cache,
            timeout=arguments.timeout,
            progress=progress,
            items=items,
            telemetry=telemetry_on,
            executor_out=executors,
        )
    if reporter is not None:
        reporter.close()
    executor = executors[0]
    if arguments.per_item:
        print(render_table(per_item_rows(results)))
        print()
    print(summary.render())
    if arguments.stats:
        # Only count work done by *this* run: cached results carry their
        # original stats payload, but no solver ran for them here.  Every
        # fresh item counts as a solve (infeasible verdicts and non-barrier
        # backends included); the barrier-specific counters come from the
        # items whose backend reported them.
        fresh = [result for result in results if not result.from_cache]
        totals = {
            "solves": len(fresh),
            "phase1_skipped": sum(
                1 for result in fresh if result.stats.get("phase1_skipped")
            ),
            "warm_started": sum(
                1 for result in fresh if result.stats.get("warm_started")
            ),
            "newton_iterations": sum(
                int(result.stats.get("newton_iterations", 0)) for result in fresh
            ),
            "phase1_newton_iterations": sum(
                int(result.stats.get("phase1_newton_iterations", 0))
                for result in fresh
            ),
            "solve_time": sum(result.solve_seconds for result in fresh),
        }
        print()
        print(_render_solve_stats(totals))
        if telemetry_on:
            from repro.obs.export import render_metrics

            # The campaign aggregate: executor-side counters plus every
            # worker's metric snapshot merged in (Newton/rung quantiles
            # across all fresh items).
            print()
            print(render_metrics(executor.metrics.snapshot()))
    if arguments.telemetry_log:
        from repro.obs.export import JsonlSink

        with JsonlSink(arguments.telemetry_log) as sink:
            for result in results:
                for span_dict in (result.telemetry or {}).get("spans", []):
                    sink.emit_span(span_dict)
            snapshot = executor.metrics.snapshot()
            if snapshot:
                sink.emit_metrics(snapshot)
        print(f"telemetry written to {arguments.telemetry_log}")
    if arguments.output:
        payload = {
            "campaign": spec.to_dict(),
            "summary": summary.as_dict(),
            "results": [
                {**result.to_dict(), "from_cache": result.from_cache}
                for result in results
            ],
        }
        Path(arguments.output).write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"batch results written to {arguments.output}")
    return EXIT_OK if summary.feasible > 0 else EXIT_INFEASIBLE


# -- entry point -------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-map",
        description="Simultaneous budget and buffer-size computation for "
        "throughput-constrained task graphs (Wiggers et al., DATE 2010).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--backend",
            default="auto",
            choices=["auto", "barrier", "scipy"],
            help="cone-solver backend (default: auto)",
        )
        sub.add_argument(
            "--weights",
            default="prefer-budgets",
            choices=["balanced", "prefer-budgets", "prefer-buffers"],
            help="objective weighting preset (default: prefer-budgets)",
        )

    allocate_parser = subparsers.add_parser(
        "allocate", help="compute budgets and buffer capacities for a configuration"
    )
    allocate_parser.add_argument("configuration", help="path to a configuration JSON file")
    allocate_parser.add_argument("--output", help="write the mapped configuration JSON here")
    allocate_parser.add_argument(
        "--stats",
        action="store_true",
        help="print solver statistics (phase-I skips, Newton iterations, solve time)",
    )
    add_common(allocate_parser)
    _add_telemetry_flags(allocate_parser)
    allocate_parser.set_defaults(handler=_cmd_allocate)

    allocate_workload_parser = subparsers.add_parser(
        "allocate-workload",
        help="jointly allocate a multi-application workload on its shared platform",
        description="Solve the block-structured cone program of a workload "
        "(several applications sharing one platform) and report per-"
        "application budgets/capacities plus the per-processor budget split.",
    )
    allocate_workload_parser.add_argument(
        "workload", help="path to a workload JSON file"
    )
    allocate_workload_parser.add_argument(
        "--output", help="write the mapped workload JSON here"
    )
    allocate_workload_parser.add_argument(
        "--stats",
        action="store_true",
        help="print solver statistics (phase-I skips, Newton iterations, solve time)",
    )
    _add_mode_flags(allocate_workload_parser)
    add_common(allocate_workload_parser)
    _add_telemetry_flags(allocate_workload_parser)
    allocate_workload_parser.set_defaults(handler=_cmd_allocate_workload)

    admit_parser = subparsers.add_parser(
        "admit",
        help="run-time admission control: can this application join the "
        "running workload?",
        description="Answer the run-time admission question for one candidate "
        "configuration against a running workload (exit 0 = admitted, 1 = "
        "rejected with a structured reason), or replay a whole "
        "arrival/departure trace with --trace.",
    )
    admit_parser.add_argument(
        "workload",
        nargs="?",
        help="path to the running workload JSON (omit with --trace)",
    )
    admit_parser.add_argument(
        "candidate",
        nargs="?",
        help="path to the candidate configuration JSON (omit with --trace)",
    )
    admit_parser.add_argument(
        "--name",
        help="application name of the candidate (default: its configuration name)",
    )
    admit_parser.add_argument(
        "--trace", help="replay an arrival/departure trace JSON instead"
    )
    admit_parser.add_argument(
        "--journal",
        help="with --trace: append every committed event to this durable, "
        "checksummed journal file (crash-safe replay)",
    )
    admit_parser.add_argument(
        "--snapshot-every",
        type=int,
        default=0,
        metavar="N",
        help="with --journal: write a session snapshot next to the journal "
        "after every N events (0 = journal only)",
    )
    admit_parser.add_argument(
        "--restore",
        action="store_true",
        help="with --journal: resume a killed replay from the journal (and "
        "snapshot, if one exists) instead of starting over",
    )
    admit_parser.add_argument(
        "--output", help="write the mapped workload (or trace results) JSON here"
    )
    admit_parser.add_argument(
        "--stats",
        action="store_true",
        help="print aggregate solver statistics of the admission session",
    )
    _add_mode_flags(admit_parser)
    add_common(admit_parser)
    # --trace is taken by trace replay here; the span tree stays reachable
    # through --profile / --telemetry-log.
    _add_telemetry_flags(admit_parser, include_trace=False)
    admit_parser.set_defaults(handler=_cmd_admit)

    validate_parser = subparsers.add_parser(
        "validate", help="validate a configuration and run the feasibility screen"
    )
    validate_parser.add_argument("configuration", help="path to a configuration JSON file")
    validate_parser.set_defaults(handler=_cmd_validate)

    sweep_parser = subparsers.add_parser(
        "sweep", help="sweep the maximum buffer capacity and report the budget trade-off"
    )
    sweep_parser.add_argument("configuration", help="path to a configuration JSON file")
    sweep_parser.add_argument(
        "--capacities",
        type=_parse_capacity_range,
        default="1:10",
        help="capacity bounds to sweep, as 'low:high' or a comma-separated list (default 1:10)",
    )
    sweep_parser.add_argument(
        "--stats",
        action="store_true",
        help="print solver statistics (phase-I skips, Newton iterations, solve time)",
    )
    add_common(sweep_parser)
    _add_telemetry_flags(sweep_parser)
    sweep_parser.set_defaults(handler=_cmd_sweep)

    experiments_parser = subparsers.add_parser(
        "experiments", help="regenerate the figures of the paper's evaluation"
    )
    add_common(experiments_parser)
    experiments_parser.set_defaults(handler=_cmd_experiments)

    batch_parser = subparsers.add_parser(
        "batch",
        help="run a JSON campaign through the parallel batch engine",
        description="Expand a declarative campaign specification and solve "
        "every instance, skipping instances already in the result cache. "
        "The solver backend and objective preset come from the campaign "
        "document itself.",
    )
    batch_parser.add_argument("campaign", help="path to a campaign JSON file")
    batch_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the fan-out (default: 1, inline)",
    )
    batch_parser.add_argument(
        "--cache-dir",
        default=".repro-map-cache",
        help="directory of the persistent result cache (default: .repro-map-cache)",
    )
    batch_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="solve every instance even if a cached result exists",
    )
    batch_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-item timeout in seconds (parallel mode only)",
    )
    batch_parser.add_argument(
        "--per-item", action="store_true", help="print one table row per instance"
    )
    batch_parser.add_argument(
        "--stats",
        action="store_true",
        help="print aggregated solver statistics across the campaign's instances",
    )
    batch_parser.add_argument("--output", help="write the structured results JSON here")
    batch_parser.add_argument(
        "--no-progress",
        action="store_true",
        help="disable the live progress line (items/s, ETA, feasibility rate)",
    )
    batch_parser.add_argument(
        "--telemetry",
        action="store_true",
        help="capture per-item span trees and metrics inside the workers and "
        "merge them into the campaign aggregate (shown with --stats)",
    )
    batch_parser.add_argument(
        "--telemetry-log",
        metavar="PATH",
        help="write the captured telemetry (per-item span trees + merged "
        "metrics) as schema-versioned JSONL to PATH (implies --telemetry)",
    )
    batch_parser.set_defaults(handler=_cmd_batch)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        arguments = parser.parse_args(argv)
    except SystemExit as exit_error:
        return EXIT_USAGE if exit_error.code not in (0, None) else EXIT_OK
    try:
        return int(arguments.handler(arguments))
    except FileNotFoundError as error:
        print(f"file not found: {error.filename}", file=sys.stderr)
        return EXIT_USAGE
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_INFEASIBLE


if __name__ == "__main__":  # pragma: no cover - exercised through tests via main()
    raise SystemExit(main())
