"""Tests of dynamic workloads: incremental session editing and admission control.

The lock-in guarantees of the run-time layer:

* every ``add_application`` / ``remove_application`` / ``replace_application``
  event on a :class:`WorkloadSession` matches a from-scratch
  ``allocate_workload`` rebuild within 1e-6 (budgets, capacities, objective);
* unchanged applications keep their per-block equality eliminations across
  events (``SessionStats.elimination_blocks_reused`` grows, and only the
  edited application's block is factorised);
* :class:`AdmissionController` admits/rejects with structured reasons
  (load-screen vs solver-infeasible) and leaves the running workload intact
  on every rejection;
* traces replay deterministically and round-trip through JSON, including as
  batch-campaign ``trace`` entries.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.core import (
    AdmissionController,
    AllocatorOptions,
    JointAllocator,
    random_trace,
    replay_trace,
    trace_from_json,
    trace_to_dict,
    trace_to_json,
)
from repro.core.admission import (
    STAGE_LOAD_SCREEN,
    STAGE_SOLVER,
    AdmissionTrace,
    TraceEvent,
)
from repro.exceptions import InfeasibleModelError, ModelError
from repro.taskgraph import ConfigurationBuilder, Workload
from repro.taskgraph.generators import chain_configuration, random_dag_configuration


def options() -> AllocatorOptions:
    return AllocatorOptions(verify=False, run_simulation=False)


def pinned_pipeline(name: str, wcet: float = 1.0, period: float = 10.0, pin: float = 6.0):
    """A two-stage pipeline whose first task's budget is pinned exactly.

    The pinned bound compiles to an equality row, so every application block
    needs an equality elimination — the thing incremental session edits must
    reuse for unchanged applications.
    """
    return (
        ConfigurationBuilder(name=name, granularity=1.0)
        .processor("p1", replenishment_interval=40.0)
        .processor("p2", replenishment_interval=40.0)
        .memory("m1")
        .task_graph(name, period=period)
        .task(f"{name}_in", wcet=wcet, processor="p1", min_budget=pin, max_budget=pin)
        .task(f"{name}_out", wcet=wcet, processor="p2")
        .buffer(f"{name}_b", source=f"{name}_in", target=f"{name}_out", memory="m1")
        .build()
    )


def reference_allocation(workload: Workload):
    """A from-scratch rebuild of the session workload's current membership."""
    rebuilt = Workload(workload.platform, name="reference")
    for application in workload.applications:
        rebuilt.add_application(application.name, application.configuration)
    return JointAllocator(options=options()).allocate_workload(rebuilt)


def assert_matches_rebuild(mapped, reference):
    """Budgets, capacities and objective equal within 1e-6, per application."""
    assert set(mapped.applications) == set(reference.applications)
    assert mapped.objective_value == pytest.approx(
        reference.objective_value, abs=1e-6
    )
    for app_name, ref_app in reference.applications.items():
        app = mapped.application(app_name)
        assert app.buffer_capacities == ref_app.buffer_capacities
        for task_name, budget in ref_app.relaxed_budgets.items():
            assert app.relaxed_budgets[task_name] == pytest.approx(budget, abs=1e-6)
        for task_name, budget in ref_app.budgets.items():
            assert app.budgets[task_name] == pytest.approx(budget, abs=1e-6)
        for buffer_name, capacity in ref_app.relaxed_capacities.items():
            assert app.relaxed_capacities[buffer_name] == pytest.approx(
                capacity, abs=1e-6
            )


class TestWorkloadEditing:
    def test_remove_application_returns_and_forgets(self):
        video = pinned_pipeline("video")
        workload = Workload(video.platform, name="dyn")
        workload.add_application("video", video)
        workload.add_application("audio", pinned_pipeline("audio", pin=3.0))
        removed = workload.remove_application("video")
        assert removed.name == "video"
        assert workload.application_names == ["audio"]
        with pytest.raises(ModelError, match="video"):
            workload.remove_application("video")

    def test_replace_application_keeps_position(self):
        video = pinned_pipeline("video")
        workload = Workload(video.platform, name="dyn")
        workload.add_application("video", video)
        workload.add_application("audio", pinned_pipeline("audio", pin=3.0))
        previous = workload.replace_application("video", pinned_pipeline("video2"))
        assert previous.configuration is video
        assert workload.application_names == ["video", "audio"]
        assert workload.application("video").configuration.name == "video2"
        with pytest.raises(ModelError, match="ghost"):
            workload.replace_application("ghost", video)

    def test_rehomed_configuration_keeps_identity_on_shared_platform(self):
        video = pinned_pipeline("video")
        workload = Workload(video.platform, name="dyn")
        application = workload.add_application("video", video)
        assert application.configuration is video


class TestIncrementalSessionEquivalence:
    def test_every_event_matches_full_rebuild(self):
        """The acceptance lock-in: add/remove/replace events on a session
        equal a from-scratch ``allocate_workload`` within 1e-6, with only the
        edited application's elimination recomputed."""
        video = pinned_pipeline("video", pin=6.0)
        allocator = JointAllocator(options=options())
        workload = Workload(video.platform, name="dyn")
        workload.add_application("video", video)
        workload.add_application("audio", pinned_pipeline("audio", wcet=0.8, pin=4.0))
        session = allocator.workload_session(workload)

        mapped = session.allocate()
        assert_matches_rebuild(mapped, reference_allocation(workload))
        computed0 = session.stats.elimination_blocks_computed
        assert computed0 == 2  # one pinned-budget SVD per application

        events = [
            ("add", "pip", pinned_pipeline("pip", wcet=0.6, pin=5.0)),
            ("add", "game", pinned_pipeline("game", wcet=0.5, pin=3.0)),
            ("remove", "audio", None),
            ("replace", "pip", pinned_pipeline("pip2", wcet=0.7, pin=4.0)),
            ("add", "radio", pinned_pipeline("radio", wcet=0.4, pin=2.0)),
        ]
        for action, name, configuration in events:
            before_computed = session.stats.elimination_blocks_computed
            before_reused = session.stats.elimination_blocks_reused
            unchanged = len(session.workload) - (0 if action == "add" else 1)
            if action == "add":
                session.add_application(name, configuration)
            elif action == "remove":
                session.remove_application(name)
            else:
                session.replace_application(name, configuration)
            mapped = session.allocate()
            assert_matches_rebuild(mapped, reference_allocation(session.workload))
            delta_computed = (
                session.stats.elimination_blocks_computed - before_computed
            )
            delta_reused = session.stats.elimination_blocks_reused - before_reused
            # Only the edited application's block is factorised; every
            # unchanged application's elimination is reused.
            assert delta_computed == (0 if action == "remove" else 1), action
            assert delta_reused == unchanged, action

        assert session.stats.rebuilds == 0
        assert session.stats.compiles == 1 + len(events)
        assert session.stats.warm_started >= len(events)
        # The aggregate proves reuse outweighed recomputation across the run.
        assert (
            session.stats.elimination_blocks_reused
            > session.stats.elimination_blocks_computed
        )

    def test_random_workload_events_match_rebuild(self):
        """Same equivalence on unpinned random DAGs (no equality rows)."""
        applications = [
            random_dag_configuration(
                task_count=4, processor_count=4, seed=7 + index, wcet_range=(0.2, 0.6)
            )
            for index in range(4)
        ]
        allocator = JointAllocator(options=options())
        workload = Workload(applications[0].platform, name="dyn")
        workload.add_application("a0", applications[0])
        workload.add_application("a1", applications[1])
        session = allocator.workload_session(workload)
        session.allocate()
        session.add_application("a2", applications[2])
        assert_matches_rebuild(
            session.allocate(), reference_allocation(session.workload)
        )
        session.remove_application("a1")
        assert_matches_rebuild(
            session.allocate(), reference_allocation(session.workload)
        )
        session.add_application("a3", applications[3])
        assert_matches_rebuild(
            session.allocate(), reference_allocation(session.workload)
        )

    def test_limits_still_work_after_an_edit(self):
        """Per-application limits apply to the incrementally rebuilt program."""
        video = chain_configuration(stages=2)
        allocator = JointAllocator(options=options())
        workload = Workload(video.platform, name="dyn")
        workload.add_application("video", video)
        session = allocator.workload_session(workload)
        session.allocate()
        session.add_application("audio", chain_configuration(stages=2, period=20.0))
        limited = session.allocate(capacity_limits={"video": {"bab": 2}})
        assert limited.application("video").buffer_capacities["bab"] <= 2

    def test_failed_add_rolls_back_workload_and_session(self):
        video = chain_configuration(stages=2)
        allocator = JointAllocator(options=options())
        workload = Workload(video.platform, name="dyn")
        workload.add_application("video", video)
        session = allocator.workload_session(workload)
        before = session.allocate()
        # A near-saturating pipeline overloads the shared processors: the
        # combined-load screen rejects the add and nothing changes.
        overload = chain_configuration(stages=2, period=1.1)
        with pytest.raises(InfeasibleModelError):
            session.add_application("x", overload)
        assert session.workload.application_names == ["video"]
        after = session.allocate()
        assert after.objective_value == pytest.approx(
            before.objective_value, abs=1e-9
        )

    def test_failed_rebind_rolls_back_membership_and_keeps_the_session(self, monkeypatch):
        """A failure while rebuilding the formulation (not just a screen
        rejection) must restore the previous membership — order included —
        and leave the old compiled program usable."""
        video = chain_configuration(stages=2)
        allocator = JointAllocator(options=options())
        workload = Workload(video.platform, name="dyn")
        workload.add_application("video", video)
        workload.add_application("audio", chain_configuration(stages=2, period=20.0))
        session = allocator.workload_session(workload)
        before = session.allocate()

        # Fail *after* the new formulation is built: the reused blocks have
        # already re-registered their variables into the (discarded) new
        # program by then, which is exactly the state the rollback must undo.
        def exploding_transfer(*args, **kwargs):
            raise RuntimeError("synthetic elimination-transfer failure")

        monkeypatch.setattr(
            "repro.solver.barrier.transfer_block_eliminations", exploding_transfer
        )
        with pytest.raises(RuntimeError, match="synthetic"):
            session.add_application("pip", chain_configuration(stages=2, period=15.0))
        assert session.workload.application_names == ["video", "audio"]
        with pytest.raises(RuntimeError, match="synthetic"):
            session.remove_application("audio")
        assert session.workload.application_names == ["video", "audio"]
        monkeypatch.undo()
        # The kept session must still solve and extract per-application
        # results against its original compiled problem.
        after = session.allocate()
        assert after.objective_value == pytest.approx(
            before.objective_value, abs=1e-9
        )
        assert set(after.application("video").budgets) == set(
            before.application("video").budgets
        )
        # And further edits still work.
        session.add_application("pip", chain_configuration(stages=2, period=15.0))
        assert_matches_rebuild(
            session.allocate(), reference_allocation(session.workload)
        )

    def test_removing_the_last_application_is_rejected(self):
        video = chain_configuration(stages=2)
        allocator = JointAllocator(options=options())
        workload = Workload(video.platform, name="dyn")
        workload.add_application("video", video)
        session = allocator.workload_session(workload)
        with pytest.raises(ModelError, match="at least one"):
            session.remove_application("video")


class TestAdmissionController:
    def test_admit_then_reject_solver_stage(self):
        """Jointly infeasible capacity caps pass the load screens but fail the
        solver: the rejection is stage 'solver' and the running workload keeps
        its allocation."""
        video = chain_configuration(stages=2, max_capacity=3)
        controller = AdmissionController(
            video.platform, allocator=JointAllocator(options=options())
        )
        first = controller.admit("video", video)
        assert first.admitted and first.mapped is not None
        before = controller.mapped.objective_value
        second = controller.admit("audio", chain_configuration(stages=2, max_capacity=3))
        assert not second.admitted
        assert second.stage == STAGE_SOLVER
        assert second.reason
        assert controller.running == ["video"]
        assert controller.mapped.objective_value == pytest.approx(before, abs=1e-9)

    def test_reject_load_screen_stage(self):
        video = chain_configuration(stages=2)
        controller = AdmissionController(
            video.platform, allocator=JointAllocator(options=options())
        )
        assert controller.admit("video", video).admitted
        decision = controller.admit("heavy", chain_configuration(stages=2, period=1.1))
        assert not decision.admitted
        assert decision.stage == STAGE_LOAD_SCREEN
        assert "overloaded" in decision.reason
        assert controller.running == ["video"]

    def test_duplicate_name_is_a_structured_rejection(self):
        video = chain_configuration(stages=2)
        controller = AdmissionController(
            video.platform, allocator=JointAllocator(options=options())
        )
        assert controller.admit("video", video).admitted
        decision = controller.admit("video", chain_configuration(stages=2))
        assert not decision.admitted
        assert decision.stage == STAGE_LOAD_SCREEN
        assert "duplicate" in decision.reason

    def test_depart_to_empty_and_readmit_keeps_statistics(self):
        video = chain_configuration(stages=2)
        controller = AdmissionController(
            video.platform, allocator=JointAllocator(options=options())
        )
        assert controller.admit("video", video).admitted
        solves_before = controller.session_stats.solves
        assert controller.depart("video") is None
        assert controller.running == []
        assert controller.mapped is None
        # The aggregate survives the empty-platform gap.
        assert controller.admit("audio", chain_configuration(stages=2)).admitted
        assert controller.session_stats.solves == solves_before + 1

    def test_seeded_controller_takes_over_a_running_workload_in_one_solve(self):
        video = chain_configuration(stages=2)
        workload = Workload(video.platform, name="seeded")
        workload.add_application("video", video)
        workload.add_application("audio", chain_configuration(stages=2, period=20.0))
        controller = AdmissionController(
            video.platform,
            allocator=JointAllocator(options=options()),
            workload=workload,
        )
        assert sorted(controller.running) == ["audio", "video"]
        assert controller.mapped is not None
        assert controller.session_stats.solves == 1
        decision = controller.admit("pip", chain_configuration(stages=2, period=15.0))
        assert decision.admitted

    def test_seeded_controller_rejects_foreign_platform(self):
        video = chain_configuration(stages=2)
        other = chain_configuration(stages=2)
        workload = Workload(other.platform, name="foreign")
        workload.add_application("video", other)
        with pytest.raises(ModelError, match="platform"):
            AdmissionController(
                video.platform,
                allocator=JointAllocator(options=options()),
                workload=workload,
            )

    def test_solver_failure_degrades_to_a_structured_error_verdict(self, monkeypatch):
        """A persistent numerical failure is not an admission verdict and not a
        crash either: the degradation ladder (retry, from-scratch fallback)
        runs out and the event ends in a structured ``error`` decision with
        the candidate rolled back out of the running workload."""
        from repro.core.admission import STAGE_ERROR
        from repro.core.allocator import JointAllocator as AllocatorClass
        from repro.core.allocator import WorkloadSession
        from repro.exceptions import NumericalError

        video = chain_configuration(stages=2)
        controller = AdmissionController(
            video.platform, allocator=JointAllocator(options=options())
        )
        assert controller.admit("video", video).admitted

        session_allocate = WorkloadSession.allocate
        workload_allocate = AllocatorClass.allocate_workload

        def exploding(self, *args, **kwargs):
            raise NumericalError("synthetic solver breakdown")

        # Break the incremental path, its retry, and the from-scratch
        # fallback alike so the whole ladder is exhausted.
        monkeypatch.setattr(WorkloadSession, "allocate", exploding)
        monkeypatch.setattr(AllocatorClass, "allocate_workload", exploding)
        decision = controller.admit(
            "audio", chain_configuration(stages=2, period=20.0)
        )
        assert not decision.admitted
        assert decision.stage == STAGE_ERROR
        assert "synthetic solver breakdown" in (decision.reason or "")
        monkeypatch.setattr(WorkloadSession, "allocate", session_allocate)
        monkeypatch.setattr(AllocatorClass, "allocate_workload", workload_allocate)
        assert controller.running == ["video"]
        # The controller still works after the failure.
        assert controller.admit("audio", chain_configuration(stages=2, period=20.0)).admitted

    def test_transient_solver_failure_is_retried_and_admits(self, monkeypatch):
        """One numerical blow-up is absorbed by the retry rung of the ladder:
        the second attempt succeeds and the candidate is admitted normally."""
        from repro.core.allocator import WorkloadSession
        from repro.exceptions import NumericalError

        video = chain_configuration(stages=2)
        controller = AdmissionController(
            video.platform, allocator=JointAllocator(options=options())
        )
        assert controller.admit("video", video).admitted

        original = WorkloadSession.allocate
        calls = {"n": 0}

        def flaky_allocate(self, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise NumericalError("transient blow-up")
            return original(self, *args, **kwargs)

        monkeypatch.setattr(WorkloadSession, "allocate", flaky_allocate)
        decision = controller.admit(
            "audio", chain_configuration(stages=2, period=20.0)
        )
        assert decision.admitted
        assert calls["n"] >= 2
        assert sorted(controller.running) == ["audio", "video"]

    def test_depart_unknown_application_raises(self):
        video = chain_configuration(stages=2)
        controller = AdmissionController(
            video.platform, allocator=JointAllocator(options=options())
        )
        with pytest.raises(ModelError):
            controller.depart("ghost")
        assert controller.admit("video", video).admitted
        with pytest.raises(ModelError, match="ghost"):
            controller.depart("ghost")

    def test_admitted_mapping_matches_full_rebuild(self):
        video = pinned_pipeline("video", pin=6.0)
        controller = AdmissionController(
            video.platform, allocator=JointAllocator(options=options())
        )
        controller.admit("video", video)
        controller.admit("audio", pinned_pipeline("audio", wcet=0.8, pin=4.0))
        decision = controller.admit("pip", pinned_pipeline("pip", wcet=0.6, pin=5.0))
        assert decision.admitted
        workload = Workload(video.platform, name="check")
        for application in controller.workload.applications:
            workload.add_application(application.name, application.configuration)
        reference = JointAllocator(options=options()).allocate_workload(workload)
        assert_matches_rebuild(decision.mapped, reference)


class TestTraces:
    def test_trace_construction_validates_events(self):
        video = chain_configuration(stages=2)
        trace = AdmissionTrace(platform=video.platform)
        trace.arrive("video", video).depart("video")
        assert len(trace) == 2
        with pytest.raises(ModelError, match="needs a configuration"):
            TraceEvent("arrive", "x")
        with pytest.raises(ModelError, match="unknown trace action"):
            TraceEvent("explode", "x")

    def test_replay_records_the_timeline(self):
        video = chain_configuration(stages=2)
        trace = AdmissionTrace(platform=video.platform, name="tl")
        trace.arrive("video", video)
        trace.arrive("heavy", chain_configuration(stages=2, period=1.1))
        trace.depart("heavy")   # was rejected, so this is ignored
        trace.depart("video")
        result = replay_trace(trace, allocator=JointAllocator(options=options()))
        assert [record.status for record in result.records] == [
            "admitted",
            "rejected",
            "ignored",
            "departed",
        ]
        assert result.records[1].stage == STAGE_LOAD_SCREEN
        assert result.admitted == 1 and result.rejected == 1 and result.departed == 1
        assert result.final_mapped is None
        assert result.solver_stats["solves"] >= 1
        rows = result.rows()
        assert len(rows) == 4 and rows[0]["status"] == "admitted"

    def test_random_trace_is_deterministic_and_round_trips(self):
        trace = random_trace(event_count=9, seed=13)
        again = random_trace(event_count=9, seed=13)
        assert trace_to_dict(trace) == trace_to_dict(again)
        clone = trace_from_json(trace_to_json(trace))
        assert trace_to_dict(clone) == trace_to_dict(trace)
        allocator = JointAllocator(options=options())
        first = replay_trace(trace, allocator=allocator)
        second = replay_trace(clone, allocator=JointAllocator(options=options()))
        assert [r.status for r in first.records] == [r.status for r in second.records]
        for a, b in zip(first.records, second.records):
            if a.objective_value is None:
                assert b.objective_value is None
            else:
                assert math.isclose(
                    a.objective_value, b.objective_value, rel_tol=1e-9, abs_tol=1e-9
                )

    def test_random_trace_first_event_is_an_arrival(self):
        for seed in range(5):
            trace = random_trace(event_count=6, seed=seed)
            assert trace.events[0].action == "arrive"

    def test_incremental_replay_matches_rebuild_per_event(self):
        """Trace replay through the incremental session equals replaying every
        event with a from-scratch controller state (the 1e-6 lock-in, driven
        through the trace surface)."""
        trace = random_trace(event_count=8, seed=21, task_count=3)
        result = replay_trace(trace, allocator=JointAllocator(options=options()))
        # Rebuild per prefix: a fresh controller replayed over the first k
        # events must land on the same objective after event k.
        for k, record in enumerate(result.records):
            if record.objective_value is None:
                continue
            prefix = AdmissionTrace(
                platform=trace.platform, events=list(trace.events[: k + 1])
            )
            fresh = replay_trace(prefix, allocator=JointAllocator(options=options()))
            assert fresh.records[-1].objective_value == pytest.approx(
                record.objective_value, abs=1e-6
            )


class TestTraceCampaigns:
    def test_trace_entry_expands_and_solves(self, tmp_path):
        from repro.batch import CampaignSpec, run_campaign

        trace = random_trace(event_count=6, seed=3)
        spec = CampaignSpec.from_dict(
            {
                "name": "trace-smoke",
                "entries": [{"trace": trace_to_dict(trace)}],
            }
        )
        restored = CampaignSpec.from_dict(spec.to_dict())
        assert [e.to_dict() for e in restored.entries] == [
            e.to_dict() for e in spec.entries
        ]
        items = spec.expand()
        assert [item.label for item in items] == [f"0:{trace.name}"]
        assert items[0].trace is not None
        results, summary = run_campaign(spec, cache_dir=tmp_path / "cache")
        result = results[0]
        assert result.status == "ok"
        assert len(result.stats["events"]) == len(trace)
        assert result.stats["admitted"] >= 1
        # A warm (cached) re-run reproduces the cold run.
        warm, _ = run_campaign(spec, cache_dir=tmp_path / "cache")
        assert warm[0].from_cache is True
        assert warm[0].deterministic_dict() == result.deterministic_dict()

    def test_trace_path_entries_resolve_against_campaign_dir(self, tmp_path):
        from repro.batch import load_campaign
        from repro.core.admission import save_trace

        save_trace(random_trace(event_count=4, seed=5), tmp_path / "t.json")
        campaign_path = tmp_path / "campaign.json"
        campaign_path.write_text(
            json.dumps({"name": "by-path", "entries": [{"trace_path": "t.json"}]})
        )
        items = load_campaign(campaign_path).expand()
        assert len(items) == 1 and items[0].trace is not None

    def test_capacity_sweep_on_a_trace_is_rejected(self):
        from repro.batch import CampaignEntry

        trace = random_trace(event_count=4, seed=5)
        with pytest.raises(ModelError, match="does not apply to trace"):
            CampaignEntry.from_dict(
                {"trace": trace_to_dict(trace), "capacity_sweep": [2, 3]}
            )


class TestAdmitCommand:
    @pytest.fixture
    def workload_path(self, tmp_path):
        from repro.taskgraph.workload import save_workload

        video = chain_configuration(stages=2)
        workload = Workload(video.platform, name="duo")
        workload.add_application("video", video)
        workload.add_application("audio", chain_configuration(stages=2, period=20.0))
        path = tmp_path / "duo.json"
        save_workload(workload, path)
        return str(path)

    def test_admit_accepts_a_fitting_candidate(self, workload_path, tmp_path, capsys):
        from repro.cli import EXIT_OK, main
        from repro.taskgraph import serialization

        candidate = tmp_path / "candidate.json"
        serialization.save_configuration(
            chain_configuration(stages=2, period=15.0), candidate
        )
        exit_code = main(
            ["admit", workload_path, str(candidate), "--name", "pip", "--stats"]
        )
        output = capsys.readouterr().out
        assert exit_code == EXIT_OK
        assert "admitted 'pip'" in output
        assert "budget split" in output
        assert "solver statistics" in output

    def test_admit_rejects_an_overloading_candidate(
        self, workload_path, tmp_path, capsys
    ):
        from repro.cli import EXIT_INFEASIBLE, main
        from repro.taskgraph import serialization

        candidate = tmp_path / "candidate.json"
        serialization.save_configuration(
            chain_configuration(stages=2, period=1.1), candidate
        )
        exit_code = main(["admit", workload_path, str(candidate)])
        captured = capsys.readouterr()
        assert exit_code == EXIT_INFEASIBLE
        assert "rejected" in captured.err
        assert "load-screen" in captured.err

    def test_admit_replays_a_trace(self, tmp_path, capsys):
        from repro.cli import EXIT_OK, main
        from repro.core.admission import save_trace

        trace_path = tmp_path / "trace.json"
        save_trace(random_trace(event_count=5, seed=1), trace_path)
        out_path = tmp_path / "results.json"
        exit_code = main(
            ["admit", "--trace", str(trace_path), "--output", str(out_path)]
        )
        output = capsys.readouterr().out
        assert exit_code == EXIT_OK
        assert "admitted" in output
        payload = json.loads(out_path.read_text())
        assert len(payload["events"]) == 5

    def test_admit_without_arguments_is_a_usage_error(self, capsys):
        from repro.cli import EXIT_USAGE, main

        assert main(["admit"]) == EXIT_USAGE
        assert "candidate" in capsys.readouterr().err

    def test_admit_trace_and_workload_together_is_a_usage_error(
        self, workload_path, tmp_path, capsys
    ):
        from repro.cli import EXIT_USAGE, main
        from repro.core.admission import save_trace

        trace_path = tmp_path / "trace.json"
        save_trace(random_trace(event_count=3, seed=2), trace_path)
        assert (
            main(["admit", workload_path, workload_path, "--trace", str(trace_path)])
            == EXIT_USAGE
        )
