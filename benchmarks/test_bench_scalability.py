"""Ablation A3: polynomial-complexity claim — runtime growth with problem size.

The paper argues that the SOCP formulation is solvable in polynomial time.
This benchmark measures the end-to-end allocation time on growing pipeline
and random-DAG workloads.  The assertion is deliberately loose (each instance
solves within tens of seconds and the solution verifies); the recorded
timings are the actual data for EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.core import AllocatorOptions, JointAllocator, ObjectiveWeights
from repro.core.validation import verify_mapping
from repro.taskgraph.generators import chain_configuration, random_dag_configuration

CHAIN_SIZES = (4, 8, 16)
DAG_SIZES = ((8, 4), (16, 8))


def _allocator() -> JointAllocator:
    return JointAllocator(
        weights=ObjectiveWeights.prefer_budgets(),
        options=AllocatorOptions(verify=False, run_simulation=False),
    )


@pytest.mark.benchmark(group="scalability-chain")
@pytest.mark.parametrize("stages", CHAIN_SIZES)
def test_chain_scalability(benchmark, stages):
    allocator = _allocator()
    config = chain_configuration(stages=stages, max_capacity=8)
    mapped = benchmark.pedantic(
        lambda: allocator.allocate(config), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info["stages"] = stages
    benchmark.extra_info["tasks"] = stages
    benchmark.extra_info["total_budget_mcycles"] = round(sum(mapped.budgets.values()), 2)
    assert verify_mapping(mapped, run_simulation=False).is_valid
    assert benchmark.stats["mean"] < 30.0


@pytest.mark.benchmark(group="scalability-dag")
@pytest.mark.parametrize("tasks,processors", DAG_SIZES)
def test_random_dag_scalability(benchmark, tasks, processors):
    allocator = _allocator()
    config = random_dag_configuration(task_count=tasks, processor_count=processors, seed=1)
    mapped = benchmark.pedantic(
        lambda: allocator.allocate(config), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info["tasks"] = tasks
    benchmark.extra_info["processors"] = processors
    benchmark.extra_info["buffers"] = len(mapped.buffer_capacities)
    benchmark.extra_info["total_budget_mcycles"] = round(sum(mapped.budgets.values()), 2)
    assert verify_mapping(mapped, run_simulation=False).is_valid
    assert benchmark.stats["mean"] < 60.0
