"""Tests of the baseline flows and independent oracles."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import AllocationError, InfeasibleProblemError
from repro.baselines import (
    TwoPhaseOrder,
    bisect_uniform_budget,
    compare_with_joint,
    is_uniform_budget_feasible,
    minimal_budgets_fixed_capacities,
    minimal_buffer_capacities,
    minimum_buffer_capacities,
    minimum_throughput_budgets,
    producer_consumer_minimum_budget,
    run_two_phase,
)
from repro.core import ObjectiveWeights, allocate
from repro.taskgraph.generators import chain_configuration, producer_consumer_configuration


class TestClosedForm:
    def test_matches_manual_values(self):
        # d = 10 hits the self-loop floor of 4 Mcycles.
        assert producer_consumer_minimum_budget(10) == pytest.approx(4.0)
        # d = 1: 2(40 − β) + 2·40/β = 10  =>  β ≈ 36.108.
        assert producer_consumer_minimum_budget(1) == pytest.approx(36.1078, abs=1e-3)

    def test_monotone_in_capacity(self):
        values = [producer_consumer_minimum_budget(d) for d in range(1, 12)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_rejects_zero_capacity(self):
        with pytest.raises(InfeasibleProblemError):
            producer_consumer_minimum_budget(0)


class TestBisectionOracle:
    def test_agrees_with_closed_form(self):
        config = producer_consumer_configuration()
        for capacity in (2, 4, 9):
            oracle = bisect_uniform_budget(config, {"bab": capacity})
            assert oracle == pytest.approx(
                producer_consumer_minimum_budget(capacity), rel=1e-4
            )

    def test_feasibility_predicate(self):
        config = producer_consumer_configuration()
        beta = producer_consumer_minimum_budget(5)
        assert is_uniform_budget_feasible(config, beta * 1.01, {"bab": 5})
        assert not is_uniform_budget_feasible(config, beta * 0.95, {"bab": 5})
        assert not is_uniform_budget_feasible(config, -1.0, {"bab": 5})
        assert not is_uniform_budget_feasible(config, 100.0, {"bab": 5})

    def test_infeasible_case_raises(self):
        # With one container the cycle needs 2(̺ − β) + 2̺χ/β ≤ µ; even the
        # full budget gives 2 Mcycles, so a 1.5-Mcycle period is hopeless.
        config = producer_consumer_configuration(period=1.5)
        with pytest.raises(InfeasibleProblemError):
            bisect_uniform_budget(config, {"bab": 1})

    def test_socp_with_fixed_capacities_matches_oracle(self):
        config = producer_consumer_configuration()
        mapped = minimal_budgets_fixed_capacities(config, {"bab": 6})
        oracle = bisect_uniform_budget(config, {"bab": 6})
        assert mapped.relaxed_budgets["wa"] == pytest.approx(oracle, rel=1e-3)


class TestBufferSizingLP:
    def test_minimal_capacity_for_generous_budgets(self):
        config = producer_consumer_configuration()
        capacities = minimal_buffer_capacities(config, {"wa": 39.0, "wb": 39.0})
        # With nearly full budgets the cycle needs ⌈(2·1 + 2·40/39)/10⌉ = 1... the
        # exact value is small; what matters is that it is minimal and feasible.
        assert capacities["bab"] >= 1
        from repro.core import verify_mapping
        from repro.taskgraph import MappedConfiguration

        mapped = MappedConfiguration(
            configuration=config,
            budgets={"wa": 39.0, "wb": 39.0},
            buffer_capacities=capacities,
        )
        assert verify_mapping(mapped).is_valid

    def test_capacity_grows_as_budget_shrinks(self):
        config = producer_consumer_configuration()
        small = minimal_buffer_capacities(config, {"wa": 36.0, "wb": 36.0})
        large = minimal_buffer_capacities(config, {"wa": 5.0, "wb": 5.0})
        assert large["bab"] > small["bab"]

    def test_matches_closed_form_inverse(self):
        config = producer_consumer_configuration()
        for capacity in (3, 6, 9):
            beta = producer_consumer_minimum_budget(capacity) * 1.001
            sized = minimal_buffer_capacities(config, {"wa": beta, "wb": beta})
            assert sized["bab"] == capacity

    def test_missing_budget_rejected(self):
        config = producer_consumer_configuration()
        with pytest.raises(AllocationError):
            minimal_buffer_capacities(config, {"wa": 10.0})

    def test_infeasible_when_budget_below_floor(self):
        config = producer_consumer_configuration()
        with pytest.raises(InfeasibleProblemError):
            # 2 Mcycles < the 4-Mcycle floor: no finite buffer can help.
            minimal_buffer_capacities(config, {"wa": 2.0, "wb": 2.0})


class TestTwoPhaseFlows:
    def test_minimum_throughput_budgets(self):
        config = producer_consumer_configuration()
        budgets = minimum_throughput_budgets(config)
        assert budgets == {"wa": 4.0, "wb": 4.0}

    def test_minimum_buffer_capacities(self):
        config = producer_consumer_configuration()
        assert minimum_buffer_capacities(config) == {"bab": 1}

    def test_budget_first_allocates_minimal_budgets_and_large_buffers(self):
        config = producer_consumer_configuration()
        result = run_two_phase(config, TwoPhaseOrder.BUDGET_FIRST)
        assert result.feasible
        assert result.mapped is not None
        assert result.mapped.budgets == {"wa": 4.0, "wb": 4.0}
        assert result.mapped.buffer_capacities["bab"] == 10

    def test_buffer_first_allocates_minimal_buffers_and_large_budgets(self):
        config = producer_consumer_configuration()
        result = run_two_phase(config, TwoPhaseOrder.BUFFER_FIRST)
        assert result.feasible
        assert result.mapped is not None
        assert result.mapped.buffer_capacities["bab"] == 1
        assert result.mapped.budgets["wa"] == pytest.approx(37.0)

    def test_budget_first_false_negative_under_memory_pressure(self):
        """The motivating failure of the two-phase flow (paper, Section I).

        With a memory of 6 containers the joint formulation finds a mapping
        (e.g. 5 containers with ≈ 18-Mcycle budgets), but the budget-first
        flow fixes 4-Mcycle budgets, then needs 10 containers and fails.
        """
        config = producer_consumer_configuration(memory_capacity=6.0)
        joint = allocate(config, weights=ObjectiveWeights.prefer_budgets())
        assert sum(joint.budgets.values()) <= 2 * 39.0
        result = run_two_phase(config, TwoPhaseOrder.BUDGET_FIRST)
        assert not result.feasible
        assert result.total_budget == math.inf

    def test_buffer_first_overallocates_budget(self):
        config = producer_consumer_configuration()
        joint = allocate(config, weights=ObjectiveWeights.prefer_budgets())
        buffer_first = run_two_phase(config, TwoPhaseOrder.BUFFER_FIRST)
        assert buffer_first.feasible
        assert buffer_first.total_budget > sum(joint.budgets.values()) + 10.0

    def test_compare_with_joint_summary(self):
        config = producer_consumer_configuration(memory_capacity=6.0)
        joint = allocate(config, weights=ObjectiveWeights.prefer_budgets())
        summary = compare_with_joint(config, joint)
        assert summary["joint"]["feasible"] is True
        assert summary[TwoPhaseOrder.BUDGET_FIRST.value]["feasible"] is False
        assert summary[TwoPhaseOrder.BUFFER_FIRST.value]["feasible"] is True

    def test_two_phase_on_chain(self):
        config = chain_configuration(stages=3)
        for order in TwoPhaseOrder:
            result = run_two_phase(config, order)
            assert result.feasible
            assert result.total_capacity >= 2


@settings(max_examples=15, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=10),
    replenishment=st.floats(min_value=20.0, max_value=80.0, allow_nan=False),
    wcet=st.floats(min_value=0.5, max_value=2.0, allow_nan=False),
)
def test_joint_allocator_matches_closed_form_for_random_parameters(
    capacity, replenishment, wcet
):
    """Property: on producer-consumer instances with random parameters the
    relaxed SOCP optimum equals the closed-form minimum budget."""
    period = 10.0
    try:
        expected = producer_consumer_minimum_budget(
            capacity, replenishment_interval=replenishment, wcet=wcet, period=period
        )
    except InfeasibleProblemError:
        expected = None
    config = producer_consumer_configuration(
        replenishment_interval=replenishment,
        wcet=wcet,
        period=period,
        max_capacity=capacity,
    )
    if expected is None or expected > replenishment - 1.0:
        # The configuration is infeasible (or only feasible without rounding
        # slack); the allocator must refuse rather than return something wrong.
        with pytest.raises(InfeasibleProblemError):
            allocate(config, weights=ObjectiveWeights.prefer_budgets(), verify=True)
        return
    mapped = allocate(config, weights=ObjectiveWeights.prefer_budgets())
    assert mapped.relaxed_budgets["wa"] == pytest.approx(expected, rel=2e-3)
