"""repro — simultaneous budget and buffer-size computation for throughput-constrained task graphs.

A from-scratch reproduction of Wiggers, Bekooij, Geilen and Basten,
*"Simultaneous Budget and Buffer Size Computation for Throughput-Constrained
Task Graphs"*, DATE 2010.

The library is organised in layers:

* :mod:`repro.taskgraph` — the application model (task graphs, FIFO buffers,
  processors, memories, configurations, multi-application workloads sharing
  one platform).
* :mod:`repro.dataflow` — the single-rate dataflow substrate (SRDF graphs,
  periodic admissible schedules, maximum cycle ratio, self-timed simulation,
  the two-actor-per-task construction for budget schedulers).
* :mod:`repro.scheduling` — budget schedulers (TDM) and their latency-rate
  characterisation.
* :mod:`repro.solver` — the convex optimisation substrate (modelling layer,
  log-barrier interior-point SOCP solver, LP and scipy backends).
* :mod:`repro.core` — the paper's contribution: the joint SOCP (Algorithm 1),
  the allocator with conservative rounding and verification, and trade-off
  exploration.
* :mod:`repro.baselines` — the classical two-phase flows and independent
  oracles used for comparison and validation.
* :mod:`repro.analysis` — throughput/feasibility/sensitivity analysis and
  report rendering.
* :mod:`repro.experiments` — drivers that regenerate the paper's figures.
* :mod:`repro.batch` — batch campaigns: declarative JSON campaign specs over
  the generator family, a parallel allocation engine with worker-process
  fan-out and solver-backend fallback, a persistent content-addressed result
  cache, and campaign-level aggregation (feasibility rates, resource
  percentiles, allocations/sec).

Quickstart
----------

>>> from repro import ConfigurationBuilder, allocate
>>> config = (
...     ConfigurationBuilder(name="demo")
...     .processor("p1", replenishment_interval=40.0)
...     .processor("p2", replenishment_interval=40.0)
...     .memory("m1")
...     .task_graph("job", period=10.0)
...     .task("producer", wcet=1.0, processor="p1")
...     .task("consumer", wcet=1.0, processor="p2")
...     .buffer("stream", source="producer", target="consumer", memory="m1")
...     .build()
... )
>>> mapping = allocate(config)
>>> mapping.budget("producer") >= 4.0
True
"""

from repro.batch import (
    BatchExecutor,
    CampaignItem,
    CampaignSpec,
    CampaignSummary,
    ExecutorConfig,
    ItemResult,
    ResultCache,
    aggregate_results,
    load_campaign,
    run_campaign,
)
from repro.core import (
    AdmissionController,
    AdmissionDecision,
    AdmissionTrace,
    AllocatorOptions,
    JointAllocator,
    ObjectiveWeights,
    SocpFormulation,
    TradeoffCurve,
    TradeoffExplorer,
    TradeoffPoint,
    VerificationReport,
    WorkloadSocpFormulation,
    allocate,
    allocate_workload,
    random_trace,
    replay_trace,
    verify_mapping,
)
from repro.exceptions import (
    AllocationError,
    AnalysisError,
    BindingError,
    FormulationError,
    GraphStructureError,
    InfeasibleModelError,
    InfeasibleProblemError,
    ModelError,
    NumericalError,
    ReproError,
    SimulationError,
    SolverError,
    UnboundedProblemError,
)
from repro.taskgraph import (
    Buffer,
    Configuration,
    ConfigurationBuilder,
    MappedConfiguration,
    MappedWorkload,
    Memory,
    Platform,
    Processor,
    Task,
    TaskGraph,
    Workload,
    homogeneous_platform,
    load_workload,
    random_workload,
    save_workload,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionTrace",
    "AllocationError",
    "AllocatorOptions",
    "AnalysisError",
    "BatchExecutor",
    "BindingError",
    "Buffer",
    "CampaignItem",
    "CampaignSpec",
    "CampaignSummary",
    "Configuration",
    "ConfigurationBuilder",
    "ExecutorConfig",
    "ItemResult",
    "ResultCache",
    "FormulationError",
    "GraphStructureError",
    "InfeasibleModelError",
    "InfeasibleProblemError",
    "JointAllocator",
    "MappedConfiguration",
    "MappedWorkload",
    "Memory",
    "ModelError",
    "NumericalError",
    "ObjectiveWeights",
    "Platform",
    "Processor",
    "ReproError",
    "SimulationError",
    "SocpFormulation",
    "SolverError",
    "Task",
    "TaskGraph",
    "TradeoffCurve",
    "TradeoffExplorer",
    "TradeoffPoint",
    "UnboundedProblemError",
    "VerificationReport",
    "Workload",
    "WorkloadSocpFormulation",
    "aggregate_results",
    "allocate",
    "allocate_workload",
    "homogeneous_platform",
    "load_campaign",
    "load_workload",
    "random_trace",
    "random_workload",
    "replay_trace",
    "run_campaign",
    "save_workload",
    "verify_mapping",
    "__version__",
]
