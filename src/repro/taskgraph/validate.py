"""Structural validation of configurations.

The checks here catch modelling mistakes *before* the optimiser runs, so that
infeasibility reported by the solver can be attributed to genuine resource
shortage rather than to malformed input:

* every task is bound to an existing processor, every buffer to an existing
  memory;
* worst-case execution times fit within the processor's replenishment
  interval and within the throughput period (otherwise no budget can ever
  satisfy the constraint ``̺·χ/β ≤ µ`` with ``β ≤ ̺``);
* per-processor load (lower bound) does not obviously exceed capacity;
* buffer capacity bounds are consistent with the number of initial tokens.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import (
    BindingError,
    GraphStructureError,
    InfeasibleModelError,
    ModelError,
)
from repro.taskgraph.configuration import Configuration
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.platform import Platform


def validate_task_graph(graph: TaskGraph, platform: Platform) -> None:
    """Validate one task graph against a platform."""
    if not graph.tasks:
        raise GraphStructureError(f"task graph {graph.name!r} contains no tasks")
    if graph.is_cyclo_static:
        for buffer in graph.buffers:
            source = graph.task(buffer.source)
            target = graph.task(buffer.target)
            if (
                buffer.production_rates is not None
                and len(buffer.production_rates) != source.phase_count
            ):
                raise ModelError(
                    f"buffer {buffer.name!r}: production rates have "
                    f"{len(buffer.production_rates)} entries but task "
                    f"{source.name!r} has {source.phase_count} phase(s)"
                )
            if (
                buffer.consumption_rates is not None
                and len(buffer.consumption_rates) != target.phase_count
            ):
                raise ModelError(
                    f"buffer {buffer.name!r}: consumption rates have "
                    f"{len(buffer.consumption_rates)} entries but task "
                    f"{target.name!r} has {target.phase_count} phase(s)"
                )
        graph.repetitions()  # raises ModelError on inconsistent rates
    for task in graph.tasks:
        if not platform.has_processor(task.processor):
            raise BindingError(
                f"task {task.name!r} of graph {graph.name!r} is bound to unknown "
                f"processor {task.processor!r}"
            )
        processor = platform.processor(task.processor)
        effective_total = graph.period_cycles(task.name, processor)
        if effective_total > graph.period:
            # A genuine infeasibility of the operating point (not a malformed
            # model): a DVFS down-clock can push a task past the period, and
            # sweeps treat this as an infeasible point rather than an error.
            raise InfeasibleModelError(
                f"task {task.name!r}: worst-case execution time {effective_total} exceeds "
                f"the throughput period {graph.period}; even a full budget cannot "
                f"satisfy the requirement"
            )
        if task.max_budget is not None and task.max_budget > processor.allocatable_capacity:
            raise ModelError(
                f"task {task.name!r}: max_budget {task.max_budget} exceeds the "
                f"allocatable capacity {processor.allocatable_capacity} of processor "
                f"{task.processor!r}"
            )
    for buffer in graph.buffers:
        if not platform.has_memory(buffer.memory):
            raise BindingError(
                f"buffer {buffer.name!r} of graph {graph.name!r} is placed in unknown "
                f"memory {buffer.memory!r}"
            )
        memory = platform.memory(buffer.memory)
        if memory.is_bounded:
            minimal = buffer.storage_for(buffer.smallest_feasible_capacity)
            if minimal > memory.capacity:
                raise ModelError(
                    f"buffer {buffer.name!r}: even its smallest feasible capacity "
                    f"({buffer.smallest_feasible_capacity} containers) does not fit "
                    f"in memory {buffer.memory!r} (capacity {memory.capacity})"
                )


def validate_configuration(configuration: Configuration) -> None:
    """Validate a full configuration.

    Raises the first problem found as a :class:`~repro.exceptions.ModelError`
    subclass.
    """
    if not configuration.task_graphs:
        raise ModelError(
            f"configuration {configuration.name!r} contains no task graphs"
        )
    for graph in configuration.task_graphs:
        validate_task_graph(graph, configuration.platform)

    _check_processor_load(configuration)
    _check_memory_lower_bounds(configuration)


def processor_load_lower_bound(
    processor, processor_name: str, configurations
) -> float:
    """Lower bound on a processor's budget demand across configurations.

    The budget of task ``w`` must satisfy ``̺(p)·χ(w)/β(w) ≤ µ(T)``, i.e.
    ``β(w) ≥ ̺(p)·χ(w)/µ(T)``.  Summing this lower bound (plus one granule of
    rounding slack per task at its configuration's granularity, cf.
    Constraint (9)) over the tasks bound to the processor gives a quick
    necessary condition for feasibility.  The single definition of the
    screen's arithmetic, shared by the per-configuration check and the
    combined-workload check of :meth:`repro.taskgraph.workload.Workload.
    validate` (which passes one configuration per application).
    """
    lower_bound = processor.scheduling_overhead
    for configuration in configurations:
        for graph in configuration.task_graphs:
            for task in graph.tasks:
                if task.processor != processor_name:
                    continue
                minimum_budget = (
                    processor.replenishment_interval
                    * graph.period_cycles(task.name, processor)
                    / graph.period
                )
                if task.min_budget is not None:
                    minimum_budget = max(minimum_budget, task.min_budget)
                lower_bound += minimum_budget + configuration.granularity
    return lower_bound


def memory_minimal_storage(memory_name: str, configurations) -> float:
    """Total storage of the smallest feasible buffer capacities in one memory.

    Like :func:`processor_load_lower_bound`, shared between the
    per-configuration screen and the combined-workload screen.
    """
    minimal_storage = 0.0
    for configuration in configurations:
        for _, buffer in configuration.all_buffers():
            if buffer.memory != memory_name:
                continue
            minimal_storage += buffer.storage_for(buffer.smallest_feasible_capacity)
    return minimal_storage


def _check_processor_load(configuration: Configuration) -> None:
    """Reject configurations whose minimum possible load already exceeds capacity."""
    for processor_name, processor in configuration.platform.processors.items():
        lower_bound = processor_load_lower_bound(
            processor, processor_name, [configuration]
        )
        if lower_bound > processor.replenishment_interval + 1e-9:
            raise InfeasibleModelError(
                f"processor {processor_name!r} is overloaded: the throughput "
                f"requirements alone need at least {lower_bound:.6g} budget per "
                f"replenishment interval of {processor.replenishment_interval:.6g}"
            )


def _check_memory_lower_bounds(configuration: Configuration) -> None:
    """Reject configurations whose minimal buffer capacities do not fit in memory."""
    for memory_name, memory in configuration.platform.memories.items():
        if not memory.is_bounded:
            continue
        minimal_storage = memory_minimal_storage(memory_name, [configuration])
        if minimal_storage > memory.capacity + 1e-9:
            raise InfeasibleModelError(
                f"memory {memory_name!r} is too small: the smallest feasible buffer "
                f"capacities already need {minimal_storage:.6g} of {memory.capacity:.6g}"
            )


def collect_warnings(configuration: Configuration) -> List[str]:
    """Non-fatal observations about a configuration (used by reports)."""
    warnings: List[str] = []
    for graph in configuration.task_graphs:
        if not graph.is_connected():
            warnings.append(
                f"task graph {graph.name!r} is not weakly connected; its components "
                f"are analysed jointly but do not constrain each other"
            )
        if not graph.buffers:
            warnings.append(f"task graph {graph.name!r} has no buffers")
        for task in graph.tasks:
            processor = configuration.platform.processor(task.processor)
            if task.wcet > 0.5 * processor.replenishment_interval:
                warnings.append(
                    f"task {task.name!r} occupies more than half the replenishment "
                    f"interval of {task.processor!r} in the worst case"
                )
    return warnings
