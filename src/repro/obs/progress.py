"""Live progress reporting for long-running batch campaigns.

:class:`ProgressReporter` turns the batch executor's per-item completion
callback into a terminal progress line with throughput, ETA and a rolling
feasibility rate::

    [ 412/100000]   0.4%  ok=398 infeasible=12 failed=2  18.3 items/s  ETA 1h 30m

On a TTY the line redraws in place (carriage return, throttled to
:attr:`min_interval` seconds); on a non-interactive stream it degrades to one
plain line roughly every 10 % of the campaign (and always at completion), so
captured logs stay readable.  Progress goes to ``stderr`` by default — the
machine-readable summary on ``stdout`` is unaffected.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

__all__ = ["ProgressReporter", "format_eta"]


def format_eta(seconds: float) -> str:
    """Compact duration: ``42s``, ``3m 20s``, ``1h 05m``."""
    seconds = max(0, int(round(seconds)))
    if seconds < 60:
        return f"{seconds}s"
    minutes, secs = divmod(seconds, 60)
    if minutes < 60:
        return f"{minutes}m {secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h {minutes:02d}m"


class ProgressReporter:
    """Render batch progress as items complete.

    Call :meth:`update` once per finished item (any object with ``status``
    and ``from_cache`` attributes, i.e. :class:`repro.batch.executor.
    ItemResult`) and :meth:`close` when the run ends.
    """

    def __init__(
        self,
        total: int,
        stream: Optional[TextIO] = None,
        min_interval: float = 0.2,
    ) -> None:
        self.total = max(0, int(total))
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = float(min_interval)
        self.done = 0
        self.feasible = 0
        self.infeasible = 0
        self.failed = 0
        self.cached = 0
        self._start = time.perf_counter()
        self._last_render = 0.0
        self._interactive = bool(getattr(self.stream, "isatty", lambda: False)())
        #: Non-TTY cadence: one line about every 10 % of the campaign.
        self._stride = max(1, self.total // 10)
        self._dirty = False

    # -- accounting ---------------------------------------------------------
    def update(self, result) -> None:
        """Account one finished item and re-render when due."""
        self.done += 1
        status = getattr(result, "status", "ok")
        if status == "ok":
            self.feasible += 1
        elif status == "infeasible":
            self.infeasible += 1
        else:
            self.failed += 1
        if getattr(result, "from_cache", False):
            self.cached += 1
        self._dirty = True
        self._maybe_render()

    # -- derived figures -----------------------------------------------------
    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._start

    @property
    def rate(self) -> float:
        """Overall throughput in items/second."""
        elapsed = self.elapsed
        return self.done / elapsed if elapsed > 0 else 0.0

    @property
    def eta_seconds(self) -> float:
        rate = self.rate
        remaining = max(0, self.total - self.done)
        return remaining / rate if rate > 0 else float("inf")

    @property
    def feasibility_rate(self) -> float:
        return self.feasible / self.done if self.done else 0.0

    def line(self) -> str:
        width = len(str(self.total))
        percent = 100.0 * self.done / self.total if self.total else 100.0
        eta = self.eta_seconds
        parts = [
            f"[{self.done:>{width}}/{self.total}] {percent:5.1f}%",
            f"ok={self.feasible} infeasible={self.infeasible} failed={self.failed}",
            f"feasible {100.0 * self.feasibility_rate:.1f}%",
            f"{self.rate:.2f} items/s",
            f"ETA {format_eta(eta) if eta != float('inf') else '?'}",
        ]
        if self.cached:
            parts.insert(2, f"cached={self.cached}")
        return "  ".join(parts)

    # -- rendering ----------------------------------------------------------
    def _maybe_render(self) -> None:
        if self._interactive:
            now = time.perf_counter()
            if self.done < self.total and now - self._last_render < self.min_interval:
                return
            self._last_render = now
            self.stream.write("\r" + self.line() + "\x1b[K")
            self.stream.flush()
            self._dirty = False
            return
        if self.done % self._stride == 0 or self.done == self.total:
            self.stream.write(self.line() + "\n")
            self.stream.flush()
            self._dirty = False

    def close(self) -> None:
        """Finish the progress display (always emits the final state)."""
        if self._interactive:
            self.stream.write("\r" + self.line() + "\x1b[K\n")
            self.stream.flush()
        elif self._dirty:
            self.stream.write(self.line() + "\n")
            self.stream.flush()
        self._dirty = False
