"""Linear-programming backend built on :func:`scipy.optimize.linprog` (HiGHS).

Used for the pure-LP sub-problems of the library — most prominently the
buffer-sizing-for-fixed-budgets step of the two-phase baseline flow
(:mod:`repro.baselines`), which is a classical LP [Wiggers 2009].
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import FormulationError
from repro.solver.problem import CompiledProblem
from repro.solver.result import Solution, SolverStatus

_STATUS_MAP = {
    0: SolverStatus.OPTIMAL,
    1: SolverStatus.MAX_ITERATIONS,
    2: SolverStatus.INFEASIBLE,
    3: SolverStatus.UNBOUNDED,
    4: SolverStatus.NUMERICAL_ERROR,
}


def solve_with_linprog(
    problem: CompiledProblem,
    method: str = "highs",
) -> Solution:
    """Solve a compiled problem that contains no cone constraints."""
    # Imported lazily: scipy.optimize is a heavyweight import and the barrier
    # backend does not need it at all.
    from scipy.optimize import linprog

    if problem.hyperbolic or problem.cones:
        raise FormulationError(
            "the LP backend cannot handle hyperbolic or second-order cone "
            "constraints; use the barrier backend instead"
        )

    n = problem.num_variables
    if n == 0:
        return Solution(
            status=SolverStatus.OPTIMAL,
            objective=problem.c0,
            values={},
            backend="linprog",
        )

    A_ub: Optional[np.ndarray] = problem.G if problem.G.size else None
    b_ub: Optional[np.ndarray] = problem.h if problem.G.size else None
    A_eq: Optional[np.ndarray] = problem.A if problem.A.size else None
    b_eq: Optional[np.ndarray] = problem.b if problem.A.size else None

    result = linprog(
        c=problem.c,
        A_ub=A_ub,
        b_ub=b_ub,
        A_eq=A_eq,
        b_eq=b_eq,
        bounds=[(None, None)] * n,
        method=method,
    )

    status = _STATUS_MAP.get(result.status, SolverStatus.NUMERICAL_ERROR)
    if result.x is None:
        return Solution(status=status, backend="linprog", message=str(result.message))

    x = np.asarray(result.x, dtype=float)
    return Solution(
        status=status,
        objective=problem.objective_value(x),
        values=problem.point_as_mapping(x),
        backend="linprog",
        iterations=int(getattr(result, "nit", 0) or 0),
        message=str(result.message),
    )
