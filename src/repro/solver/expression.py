"""Affine expression algebra for the modelling layer.

The modelling layer mirrors the structure of small algebraic modelling
front-ends (PuLP, cvxpy): decision variables are combined with Python
arithmetic into :class:`AffineExpression` objects, which constraints and
objectives are built from.  Only *affine* expressions are representable here;
the single non-affine construct needed by Algorithm 1 of the paper —
``λ(w)·β'(w) ≥ 1`` — is expressed through a dedicated constraint type
(:class:`repro.solver.constraints.HyperbolicConstraint`).
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.exceptions import FormulationError

Number = Union[int, float]

_variable_counter = itertools.count()


class Variable:
    """A scalar decision variable.

    Parameters
    ----------
    name:
        Human-readable identifier.  Names must be unique within a
        :class:`~repro.solver.problem.ConeProgram`.
    lower, upper:
        Optional bounds.  ``None`` means unbounded in that direction.
    """

    __slots__ = ("name", "lower", "upper", "_uid")

    def __init__(
        self,
        name: str,
        lower: Optional[Number] = None,
        upper: Optional[Number] = None,
    ) -> None:
        if not name:
            raise FormulationError("variable name must be a non-empty string")
        if lower is not None and upper is not None and float(lower) > float(upper):
            raise FormulationError(
                f"variable {name!r} has contradictory bounds [{lower}, {upper}]"
            )
        self.name = str(name)
        self.lower = None if lower is None else float(lower)
        self.upper = None if upper is None else float(upper)
        self._uid = next(_variable_counter)

    # -- arithmetic -------------------------------------------------------
    def _as_expression(self) -> "AffineExpression":
        return AffineExpression({self: 1.0}, 0.0)

    def __add__(self, other: "ExpressionLike") -> "AffineExpression":
        return self._as_expression() + other

    __radd__ = __add__

    def __sub__(self, other: "ExpressionLike") -> "AffineExpression":
        return self._as_expression() - other

    def __rsub__(self, other: "ExpressionLike") -> "AffineExpression":
        return (-self._as_expression()) + other

    def __mul__(self, other: Number) -> "AffineExpression":
        return self._as_expression() * other

    __rmul__ = __mul__

    def __truediv__(self, other: Number) -> "AffineExpression":
        return self._as_expression() / other

    def __neg__(self) -> "AffineExpression":
        return self._as_expression() * -1.0

    def __pos__(self) -> "AffineExpression":
        return self._as_expression()

    # -- identity ---------------------------------------------------------
    def __hash__(self) -> int:
        return self._uid

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bounds = ""
        if self.lower is not None or self.upper is not None:
            bounds = f" in [{self.lower}, {self.upper}]"
        return f"Variable({self.name!r}{bounds})"


ExpressionLike = Union[Variable, "AffineExpression", Number]


class AffineExpression:
    """A linear combination of variables plus a constant offset."""

    __slots__ = ("terms", "constant")

    def __init__(
        self,
        terms: Optional[Mapping[Variable, Number]] = None,
        constant: Number = 0.0,
    ) -> None:
        self.terms: Dict[Variable, float] = {}
        if terms:
            for var, coeff in terms.items():
                coeff = float(coeff)
                if coeff != 0.0:
                    self.terms[var] = coeff
        self.constant = float(constant)

    # -- construction helpers --------------------------------------------
    @staticmethod
    def coerce(value: ExpressionLike) -> "AffineExpression":
        """Convert a variable or number into an :class:`AffineExpression`."""
        if isinstance(value, AffineExpression):
            return value
        if isinstance(value, Variable):
            return value._as_expression()
        if isinstance(value, (int, float)):
            if not math.isfinite(float(value)):
                raise FormulationError(f"non-finite constant {value!r} in expression")
            return AffineExpression({}, float(value))
        raise FormulationError(
            f"cannot interpret {value!r} as an affine expression"
        )

    def copy(self) -> "AffineExpression":
        return AffineExpression(dict(self.terms), self.constant)

    # -- algebra ----------------------------------------------------------
    def __add__(self, other: ExpressionLike) -> "AffineExpression":
        other = AffineExpression.coerce(other)
        result = dict(self.terms)
        for var, coeff in other.terms.items():
            result[var] = result.get(var, 0.0) + coeff
        return AffineExpression(result, self.constant + other.constant)

    __radd__ = __add__

    def __sub__(self, other: ExpressionLike) -> "AffineExpression":
        return self + (AffineExpression.coerce(other) * -1.0)

    def __rsub__(self, other: ExpressionLike) -> "AffineExpression":
        return (self * -1.0) + other

    def __mul__(self, factor: Number) -> "AffineExpression":
        if isinstance(factor, (Variable, AffineExpression)):
            raise FormulationError(
                "products of expressions are not affine; use a "
                "HyperbolicConstraint for bilinear constraints"
            )
        factor = float(factor)
        return AffineExpression(
            {var: coeff * factor for var, coeff in self.terms.items()},
            self.constant * factor,
        )

    __rmul__ = __mul__

    def __truediv__(self, divisor: Number) -> "AffineExpression":
        divisor = float(divisor)
        if divisor == 0.0:
            raise FormulationError("division of an expression by zero")
        return self * (1.0 / divisor)

    def __neg__(self) -> "AffineExpression":
        return self * -1.0

    def __pos__(self) -> "AffineExpression":
        return self.copy()

    # -- inspection --------------------------------------------------------
    def variables(self) -> Iterable[Variable]:
        """Iterate over the variables with a non-zero coefficient."""
        return self.terms.keys()

    def coefficient(self, variable: Variable) -> float:
        """Return the coefficient of ``variable`` (0.0 if absent)."""
        return self.terms.get(variable, 0.0)

    def is_constant(self) -> bool:
        """True when the expression contains no variables."""
        return not self.terms

    def evaluate(self, values: Mapping[Variable, Number]) -> float:
        """Evaluate the expression at a variable assignment.

        Raises
        ------
        FormulationError
            If a variable of the expression is missing from ``values``.
        """
        total = self.constant
        for var, coeff in self.terms.items():
            if var not in values:
                raise FormulationError(
                    f"missing value for variable {var.name!r} during evaluation"
                )
            total += coeff * float(values[var])
        return total

    def as_pairs(self) -> Tuple[Tuple[Variable, float], ...]:
        """Return the (variable, coefficient) pairs in deterministic order."""
        return tuple(sorted(self.terms.items(), key=lambda item: item[0]._uid))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{coeff:+g}*{var.name}" for var, coeff in self.as_pairs()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


def linear_sum(values: Iterable[ExpressionLike]) -> AffineExpression:
    """Sum an iterable of expressions/variables/constants into one expression.

    This is the analogue of ``pulp.lpSum`` and avoids the quadratic behaviour
    of repeatedly calling ``__add__`` on growing dictionaries for long sums.
    """
    terms: Dict[Variable, float] = {}
    constant = 0.0
    for value in values:
        expr = AffineExpression.coerce(value)
        constant += expr.constant
        for var, coeff in expr.terms.items():
            terms[var] = terms.get(var, 0.0) + coeff
    return AffineExpression(terms, constant)
