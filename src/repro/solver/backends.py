"""Backend dispatcher for :meth:`repro.solver.problem.ConeProgram.solve`."""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

import numpy as np

from repro.exceptions import FormulationError
from repro.solver.barrier import BarrierOptions, solve_with_barrier
from repro.solver.linprog_backend import solve_with_linprog
from repro.solver.problem import CompiledProblem
from repro.solver.result import Solution, SolverStatus
from repro.solver.expression import Variable

#: Names accepted by the ``backend`` argument of :meth:`ConeProgram.solve`.
BACKENDS = ("auto", "barrier", "decomposed", "linprog", "scipy")


#: Warm-start forms accepted by :func:`solve_compiled`: a point keyed by
#: variable, or a dense vector already in compiled variable order (the form
#: :class:`repro.solver.parametric.SolveSession` caches between solves).
InitialPoint = Union[Mapping[Variable, float], np.ndarray]


def _initial_vector(
    problem: CompiledProblem, initial_point: Optional[InitialPoint]
) -> Optional[np.ndarray]:
    if initial_point is None:
        return None
    if isinstance(initial_point, np.ndarray):
        return np.asarray(initial_point, dtype=float)
    return problem.vector_from_mapping(initial_point)


def solve_compiled(
    problem: CompiledProblem,
    backend: str = "auto",
    initial_point: Optional[InitialPoint] = None,
    options: Optional[Dict[str, object]] = None,
    interior_point: Optional[np.ndarray] = None,
) -> Solution:
    """Solve a compiled problem with the requested backend.

    With ``backend="auto"`` the dispatcher uses the LP backend for pure
    linear programs, the barrier interior-point method otherwise, and falls
    back to the scipy backend when the barrier method does not reach an
    optimal status.

    ``interior_point`` is an optional well-interior hint for the barrier
    backend (see :meth:`repro.solver.barrier.BarrierSolver.solve`); the other
    backends ignore it.
    """
    if backend not in BACKENDS:
        raise FormulationError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    options = dict(options or {})
    x0 = _initial_vector(problem, initial_point)

    if backend == "linprog":
        return solve_with_linprog(problem)
    if backend == "scipy":
        from repro.solver.scipy_backend import solve_with_scipy

        return solve_with_scipy(problem, initial_point=x0)
    if backend == "barrier":
        return solve_with_barrier(
            problem,
            initial_point=x0,
            options=_barrier_options(options),
            interior_point=interior_point,
        )
    if backend == "decomposed":
        from repro.solver.decomposed import solve_decomposed

        return solve_decomposed(problem, initial_point=x0, options=options)

    # backend == "auto"
    if not problem.hyperbolic and not problem.cones:
        solution = solve_with_linprog(problem)
        if solution.status in (SolverStatus.OPTIMAL, SolverStatus.INFEASIBLE, SolverStatus.UNBOUNDED):
            return solution

    solution = solve_with_barrier(
        problem,
        initial_point=x0,
        options=_barrier_options(options),
        interior_point=interior_point,
    )
    if solution.status in (SolverStatus.OPTIMAL, SolverStatus.UNBOUNDED):
        return solution

    from repro.solver.scipy_backend import solve_with_scipy

    fallback = solve_with_scipy(problem, initial_point=x0)
    if fallback.is_optimal:
        return fallback
    # Prefer a definitive infeasibility verdict over a numerical failure.
    if solution.status is SolverStatus.INFEASIBLE or fallback.status is SolverStatus.INFEASIBLE:
        return solution if solution.status is SolverStatus.INFEASIBLE else fallback
    return fallback


def _barrier_options(options: Dict[str, object]) -> BarrierOptions:
    barrier_options = BarrierOptions()
    for key, value in options.items():
        if hasattr(barrier_options, key):
            setattr(barrier_options, key, value)
    return barrier_options
