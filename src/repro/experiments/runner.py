"""Command-line style experiment runner.

``python -m repro.experiments.runner`` regenerates the data behind every
figure of the paper's evaluation section and prints it as plain-text tables
(the same rows the benchmarks assert on and EXPERIMENTS.md records).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import render_table
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3


def run_all(backend: str = "auto", stream=None) -> Dict[str, object]:
    """Run every experiment, print the tables, and return the raw results."""
    stream = stream or sys.stdout
    results: Dict[str, object] = {}

    start = time.perf_counter()
    figure2 = run_figure2(backend=backend)
    elapsed2 = time.perf_counter() - start
    results["figure2"] = figure2
    print("Figure 2(a): producer-consumer budget vs. buffer capacity", file=stream)
    print(render_table(figure2.rows()), file=stream)
    print("", file=stream)
    print("Figure 2(b): budget reduction per extra container", file=stream)
    print(render_table(figure2.reduction_rows()), file=stream)
    print(f"(sweep solved in {elapsed2:.3f} s)", file=stream)
    print("", file=stream)

    start = time.perf_counter()
    figure3 = run_figure3(backend=backend)
    elapsed3 = time.perf_counter() - start
    results["figure3"] = figure3
    print("Figure 3: three-task chain, per-task budgets vs. common capacity bound", file=stream)
    print(render_table(figure3.rows()), file=stream)
    print(f"(sweep solved in {elapsed3:.3f} s)", file=stream)

    results["runtime_seconds"] = {"figure2": elapsed2, "figure3": elapsed3}
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        default="auto",
        choices=["auto", "barrier", "scipy"],
        help="cone-solver backend to use (default: auto)",
    )
    arguments = parser.parse_args(argv)
    run_all(backend=arguments.backend)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via examples
    raise SystemExit(main())
