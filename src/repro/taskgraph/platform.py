"""Multiprocessor platform model: processors, memories and the platform itself.

This mirrors Section II-A of the paper.  A processor ``p`` runs a budget
scheduler (e.g. TDM) with a replenishment interval ``̺(p)`` and a worst-case
scheduling overhead ``o(p)`` per replenishment interval; a memory ``m`` has a
maximum storage capacity ``ς(m)`` that bounds the total size of the FIFO
buffers placed in it.

Beyond the paper, processors carry a *type/speed* model: ``proc_type`` names
the processor family (tasks may declare per-type base cycle counts),
``speed`` scales cycle costs down (a speed-2 processor executes the same
cycles in half the time), and ``dvfs_levels`` optionally enumerates the
discrete speeds the processor can be set to — swept as discrete dimensions
by the trade-off layer.  The defaults (``"generic"``, ``1.0``, ``None``)
reproduce the paper's uniform platform exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.exceptions import BindingError, ModelError


@dataclass(frozen=True)
class Processor:
    """A processor running a budget scheduler.

    Attributes
    ----------
    name:
        Unique identifier within the platform.
    replenishment_interval:
        The interval ``̺(p)`` over which every task's budget is guaranteed.
        Expressed in the same time unit as all other durations.
    scheduling_overhead:
        Worst-case scheduler overhead ``o(p)`` per replenishment interval;
        pre-allocated budget that is not available to tasks (Constraint (9)).
    proc_type:
        Processor family name; tasks with a ``cycles_by_type`` table resolve
        their base cycle count against it.  ``"generic"`` is the uniform
        default.
    speed:
        Relative clock-speed factor: effective execution time of a firing is
        ``base_cycles / speed``.  ``1.0`` is the paper's uniform platform.
    dvfs_levels:
        Optional tuple of discrete speeds this processor can run at (must
        include ``speed``); ``None`` means the speed is fixed.
    """

    name: str
    replenishment_interval: float
    scheduling_overhead: float = 0.0
    proc_type: str = "generic"
    speed: float = 1.0
    dvfs_levels: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("processor name must be non-empty")
        if self.replenishment_interval <= 0.0:
            raise ModelError(
                f"processor {self.name!r} needs a positive replenishment interval, "
                f"got {self.replenishment_interval!r}"
            )
        if self.scheduling_overhead < 0.0:
            raise ModelError(
                f"processor {self.name!r} has negative scheduling overhead"
            )
        if self.scheduling_overhead >= self.replenishment_interval:
            raise ModelError(
                f"processor {self.name!r}: scheduling overhead "
                f"{self.scheduling_overhead} leaves no budget within the "
                f"replenishment interval {self.replenishment_interval}"
            )
        if not self.proc_type:
            raise ModelError(f"processor {self.name!r} needs a non-empty proc_type")
        if self.speed <= 0.0:
            raise ModelError(
                f"processor {self.name!r} needs a positive speed, got {self.speed!r}"
            )
        if self.dvfs_levels is not None:
            levels = tuple(float(level) for level in self.dvfs_levels)
            if not levels:
                raise ModelError(
                    f"processor {self.name!r}: dvfs_levels must be non-empty "
                    f"when given"
                )
            for level in levels:
                if level <= 0.0:
                    raise ModelError(
                        f"processor {self.name!r}: DVFS level {level!r} must "
                        f"be positive"
                    )
            if len(set(levels)) != len(levels):
                raise ModelError(
                    f"processor {self.name!r} has duplicate DVFS levels"
                )
            if self.speed not in levels:
                raise ModelError(
                    f"processor {self.name!r}: current speed {self.speed} is "
                    f"not one of its DVFS levels {sorted(levels)}"
                )
            object.__setattr__(self, "dvfs_levels", levels)

    @property
    def allocatable_capacity(self) -> float:
        """Budget available to tasks per replenishment interval."""
        return self.replenishment_interval - self.scheduling_overhead

    def at_speed(self, speed: float) -> "Processor":
        """This processor set to a different DVFS level.

        Requires ``dvfs_levels`` to be declared and to contain ``speed``;
        a fixed-speed processor cannot be re-clocked.
        """
        if self.dvfs_levels is None:
            raise ModelError(
                f"processor {self.name!r} has no DVFS levels; cannot set "
                f"speed {speed!r}"
            )
        if speed not in self.dvfs_levels:
            raise ModelError(
                f"processor {self.name!r}: speed {speed!r} is not one of its "
                f"DVFS levels {sorted(self.dvfs_levels)}"
            )
        return replace(self, speed=speed)


@dataclass(frozen=True)
class Memory:
    """A memory in which FIFO buffers are placed.

    ``capacity`` is the maximum total storage ``ς(m)``, in the same unit as
    the buffers' container sizes (e.g. bytes or words); ``None`` means the
    memory is unconstrained.
    """

    name: str
    capacity: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("memory name must be non-empty")
        if self.capacity is not None and self.capacity <= 0.0:
            raise ModelError(
                f"memory {self.name!r} needs a positive capacity or None, got {self.capacity!r}"
            )

    @property
    def is_bounded(self) -> bool:
        return self.capacity is not None


class Platform:
    """A set of processors and memories.

    The platform corresponds to the ``(P, M, ̺, o, ς)`` part of the paper's
    configuration tuple.
    """

    def __init__(
        self,
        processors: Iterable[Processor] = (),
        memories: Iterable[Memory] = (),
        name: str = "platform",
    ) -> None:
        self.name = name
        self._processors: Dict[str, Processor] = {}
        self._memories: Dict[str, Memory] = {}
        for processor in processors:
            self.add_processor(processor)
        for memory in memories:
            self.add_memory(memory)

    # -- construction -------------------------------------------------------
    def add_processor(self, processor: Processor) -> Processor:
        if processor.name in self._processors:
            raise ModelError(f"duplicate processor name {processor.name!r}")
        self._processors[processor.name] = processor
        return processor

    def add_memory(self, memory: Memory) -> Memory:
        if memory.name in self._memories:
            raise ModelError(f"duplicate memory name {memory.name!r}")
        self._memories[memory.name] = memory
        return memory

    # -- lookup --------------------------------------------------------------
    def processor(self, name: str) -> Processor:
        try:
            return self._processors[name]
        except KeyError:
            raise BindingError(f"unknown processor {name!r}") from None

    def memory(self, name: str) -> Memory:
        try:
            return self._memories[name]
        except KeyError:
            raise BindingError(f"unknown memory {name!r}") from None

    def has_processor(self, name: str) -> bool:
        return name in self._processors

    def has_memory(self, name: str) -> bool:
        return name in self._memories

    @property
    def processors(self) -> Dict[str, Processor]:
        return dict(self._processors)

    @property
    def memories(self) -> Dict[str, Memory]:
        return dict(self._memories)

    @property
    def is_uniform_speed(self) -> bool:
        """Whether every processor runs at unit speed (the paper's platform)."""
        return all(p.speed == 1.0 for p in self._processors.values())

    def with_speeds(self, speeds: Mapping[str, float]) -> "Platform":
        """A copy of this platform with some processors re-clocked.

        ``speeds`` maps processor names to target DVFS levels; unnamed
        processors are kept as-is.  Used by the trade-off layer's discrete
        DVFS sweeps, which rebuild the configuration per sweep point.
        """
        for name in speeds:
            self.processor(name)  # raise BindingError on unknown names
        processors = [
            p.at_speed(speeds[p.name]) if p.name in speeds else p
            for p in self._processors.values()
        ]
        return Platform(
            processors=processors,
            memories=self._memories.values(),
            name=self.name,
        )

    def __iter__(self) -> Iterator[Processor]:
        return iter(self._processors.values())

    def __len__(self) -> int:
        return len(self._processors)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Platform({self.name!r}, processors={sorted(self._processors)}, "
            f"memories={sorted(self._memories)})"
        )


def homogeneous_platform(
    processor_count: int,
    replenishment_interval: float,
    scheduling_overhead: float = 0.0,
    memory_capacity: Optional[float] = None,
    memory_count: int = 1,
    name: str = "platform",
) -> Platform:
    """Create a platform with identical processors and memories.

    Convenience used by the experiments: the paper's platforms consist of
    identical TDM-scheduled processors with a 40 Mcycle replenishment
    interval.
    """
    if processor_count <= 0:
        raise ModelError("processor_count must be positive")
    if memory_count <= 0:
        raise ModelError("memory_count must be positive")
    processors = [
        Processor(
            name=f"p{i + 1}",
            replenishment_interval=replenishment_interval,
            scheduling_overhead=scheduling_overhead,
        )
        for i in range(processor_count)
    ]
    memories = [
        Memory(name=f"m{i + 1}", capacity=memory_capacity) for i in range(memory_count)
    ]
    return Platform(processors=processors, memories=memories, name=name)


def heterogeneous_platform(
    processor_types: Mapping[str, Mapping[str, object]],
    replenishment_interval: float,
    scheduling_overhead: float = 0.0,
    memory_capacity: Optional[float] = None,
    memory_count: int = 1,
    name: str = "platform",
) -> Platform:
    """Create a platform mixing several processor types.

    ``processor_types`` maps a type name to its spec, e.g.::

        heterogeneous_platform(
            {
                "risc": {"count": 2, "speed": 1.0},
                "dsp": {"count": 1, "speed": 2.0, "dvfs_levels": (1.0, 2.0)},
            },
            replenishment_interval=40.0,
        )

    Each spec accepts ``count`` (default 1), ``speed`` (default 1.0),
    ``dvfs_levels`` (default None) and per-type overrides of
    ``replenishment_interval`` / ``scheduling_overhead``.  Processors are
    named ``f"{type}{i + 1}"`` (``risc1``, ``risc2``, ``dsp1``, …); memories
    follow the ``homogeneous_platform`` convention.
    """
    if not processor_types:
        raise ModelError("processor_types must be non-empty")
    if memory_count <= 0:
        raise ModelError("memory_count must be positive")
    processors = []
    for proc_type, spec in processor_types.items():
        count = int(spec.get("count", 1))
        if count <= 0:
            raise ModelError(
                f"processor type {proc_type!r} needs a positive count, "
                f"got {spec.get('count')!r}"
            )
        speed = float(spec.get("speed", 1.0))
        dvfs_levels = spec.get("dvfs_levels")
        if dvfs_levels is not None:
            dvfs_levels = tuple(float(level) for level in dvfs_levels)
        interval = float(spec.get("replenishment_interval", replenishment_interval))
        overhead = float(spec.get("scheduling_overhead", scheduling_overhead))
        for i in range(count):
            processors.append(
                Processor(
                    name=f"{proc_type}{i + 1}",
                    replenishment_interval=interval,
                    scheduling_overhead=overhead,
                    proc_type=proc_type,
                    speed=speed,
                    dvfs_levels=dvfs_levels,
                )
            )
    memories = [
        Memory(name=f"m{i + 1}", capacity=memory_capacity) for i in range(memory_count)
    ]
    return Platform(processors=processors, memories=memories, name=name)
