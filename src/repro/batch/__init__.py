"""Batch campaigns: declarative specs, a parallel allocation engine, a result cache.

This layer turns the single-shot allocator into a high-throughput batch
service:

* :mod:`repro.batch.campaign` — declarative JSON campaign specifications
  composing the synthetic generators, explicit configurations and
  multi-application workloads into deterministic parameter sweeps.
* :mod:`repro.batch.executor` — the parallel engine: result-cache lookup,
  process-pool fan-out, per-item timeouts, solver-backend fallback, and
  streaming structured results.
* :mod:`repro.batch.cache` — the persistent content-addressed result cache.
* :mod:`repro.batch.aggregate` — campaign-level summary statistics
  (feasibility rate, resource percentiles, allocations/sec).

The one-call entry point is :func:`run_campaign`::

    >>> from repro.batch import CampaignSpec, run_campaign
    >>> spec = CampaignSpec.from_dict({
    ...     "name": "demo",
    ...     "entries": [{"generator": "chain", "sweep": {"stages": [2, 3]}}],
    ... })
    >>> results, summary = run_campaign(spec)
    >>> summary.total
    2
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.batch.aggregate import (
    CampaignSummary,
    aggregate_results,
    per_item_rows,
    percentile,
)
from repro.batch.cache import NullCache, ResultCache, cache_key, canonical_json
from repro.batch.campaign import (
    GENERATORS,
    CampaignEntry,
    CampaignItem,
    CampaignSpec,
    load_campaign,
    parse_capacity_values,
)
from repro.batch.executor import (
    BatchExecutor,
    ExecutorConfig,
    ItemResult,
    SweepResult,
    make_cache,
    resolve_weights,
)

__all__ = [
    "BatchExecutor",
    "CampaignEntry",
    "CampaignItem",
    "CampaignSpec",
    "CampaignSummary",
    "ExecutorConfig",
    "GENERATORS",
    "ItemResult",
    "NullCache",
    "ResultCache",
    "SweepResult",
    "aggregate_results",
    "cache_key",
    "canonical_json",
    "load_campaign",
    "make_cache",
    "parse_capacity_values",
    "per_item_rows",
    "percentile",
    "resolve_weights",
    "run_campaign",
]


def run_campaign(
    spec: Union[CampaignSpec, str, Path],
    workers: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    use_cache: bool = True,
    timeout: Optional[float] = None,
    progress=None,
    items: Optional[List[CampaignItem]] = None,
    telemetry: bool = False,
    executor_out: Optional[List[BatchExecutor]] = None,
) -> Tuple[List[ItemResult], CampaignSummary]:
    """Expand, execute and aggregate a campaign in one call.

    Parameters
    ----------
    spec:
        A :class:`CampaignSpec`, or a path to a campaign JSON file.
    workers:
        Process-pool size; ``1`` solves inline.
    cache_dir:
        Directory of the persistent result cache (``None`` disables caching).
    use_cache:
        Set to ``False`` to force re-solving even with a ``cache_dir``.
    timeout:
        Optional per-item timeout in seconds (parallel mode only).
    progress:
        Optional callback ``(index, ItemResult)`` invoked as items finish.
    items:
        Pre-expanded campaign items; pass them when the caller already
        expanded the spec (expansion runs the generators, so repeating it
        for large campaigns is wasteful).
    telemetry:
        Capture per-item span trees and metrics inside the workers and merge
        the metric snapshots into the executor's campaign aggregate (a pure
        observability knob: results and cache keys are unaffected).
    executor_out:
        When given, the :class:`BatchExecutor` used for the run is appended
        to this list so the caller can read ``executor.metrics`` (and any
        per-item telemetry) after the campaign.
    """
    if not isinstance(spec, CampaignSpec):
        spec = load_campaign(spec)
    if items is None:
        items = spec.expand()
    executor = BatchExecutor(
        config=ExecutorConfig(
            workers=workers,
            backend=spec.backend,
            weights=spec.weights,
            timeout=timeout,
            telemetry=telemetry,
        ),
        cache=make_cache(cache_dir, enabled=use_cache),
    )
    if executor_out is not None:
        executor_out.append(executor)
    start = time.perf_counter()
    try:
        results = executor.run(items, progress=progress)
    finally:
        # One-shot convenience entry point: release the persistent worker
        # pool (callers holding the executor via executor_out keep access to
        # its metrics; a later run would simply re-create the pool).
        executor.close()
    elapsed = time.perf_counter() - start
    summary = aggregate_results(spec.name, results, elapsed_seconds=elapsed)
    return results, summary
