"""FIFO buffer model.

Tasks communicate over fixed-capacity FIFO buffers.  A buffer ``b`` from task
``w_a`` to task ``w_b`` is placed in memory ``ν(b)``, has containers of size
``ζ(b)`` and starts with ``ι(b)`` initially filled containers.  Its capacity
``γ(b)`` — the total number of containers — is an *output* of the joint
budget/buffer computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.exceptions import ModelError


def _normalize_rates(
    buffer_name: str, which: str, rates: Optional[Sequence[int]]
) -> Optional[Tuple[int, ...]]:
    if rates is None:
        return None
    normalized = []
    for index, rate in enumerate(rates):
        value = int(rate)
        if value != rate:
            raise ModelError(
                f"buffer {buffer_name!r}: {which} rate {rate!r} at phase "
                f"{index} must be an integer"
            )
        if value < 0:
            raise ModelError(
                f"buffer {buffer_name!r}: {which} rate at phase {index} "
                f"must be non-negative, got {rate!r}"
            )
        normalized.append(value)
    if not normalized:
        raise ModelError(
            f"buffer {buffer_name!r}: {which} rates must be non-empty when given"
        )
    if sum(normalized) == 0:
        raise ModelError(
            f"buffer {buffer_name!r}: {which} rates must not all be zero"
        )
    return tuple(normalized)


@dataclass(frozen=True)
class Buffer:
    """A FIFO buffer between two tasks of the same task graph.

    Attributes
    ----------
    name:
        Unique identifier (unique within the whole configuration).
    source, target:
        Names of the producing and consuming tasks.  Self-edges
        (``source == target``) are allowed and model cyclic state of a task.
    memory:
        Name of the memory ``ν(b)`` the buffer is placed in.
    container_size:
        Size ``ζ(b)`` of one container, in the memory's capacity unit.
    initial_tokens:
        Number ``ι(b)`` of initially *filled* containers.
    capacity_weight:
        Coefficient ``b(b)`` of this buffer's capacity in the objective
        function of the joint optimisation.
    min_capacity, max_capacity:
        Optional bounds on the computed capacity ``γ(b)`` in containers.  The
        capacity always has to be at least ``max(initial_tokens, 1)``.
    production_rates, consumption_rates:
        Optional cyclo-static token rates: containers produced per source
        phase / consumed per target phase.  The length must match the
        adjacent task's phase count (validated at the graph level).  ``None``
        means one container per firing — the paper's single-rate model.
    """

    name: str
    source: str
    target: str
    memory: str
    container_size: float = 1.0
    initial_tokens: int = 0
    capacity_weight: float = 1.0
    min_capacity: Optional[int] = None
    max_capacity: Optional[int] = None
    production_rates: Optional[Tuple[int, ...]] = None
    consumption_rates: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("buffer name must be non-empty")
        object.__setattr__(
            self,
            "production_rates",
            _normalize_rates(self.name, "production", self.production_rates),
        )
        object.__setattr__(
            self,
            "consumption_rates",
            _normalize_rates(self.name, "consumption", self.consumption_rates),
        )
        if not self.source or not self.target:
            raise ModelError(
                f"buffer {self.name!r} must connect two tasks (source and target)"
            )
        if not self.memory:
            raise ModelError(f"buffer {self.name!r} must be placed in a memory")
        if self.container_size <= 0.0:
            raise ModelError(
                f"buffer {self.name!r} needs a positive container size, got "
                f"{self.container_size!r}"
            )
        if self.initial_tokens < 0:
            raise ModelError(
                f"buffer {self.name!r} has a negative number of initial tokens"
            )
        if self.capacity_weight < 0.0:
            raise ModelError(f"buffer {self.name!r} has a negative capacity weight")
        if self.min_capacity is not None and self.min_capacity < 1:
            raise ModelError(f"buffer {self.name!r}: min_capacity must be at least 1")
        if self.max_capacity is not None and self.max_capacity < 1:
            raise ModelError(f"buffer {self.name!r}: max_capacity must be at least 1")
        if (
            self.min_capacity is not None
            and self.max_capacity is not None
            and self.min_capacity > self.max_capacity
        ):
            raise ModelError(
                f"buffer {self.name!r}: min_capacity {self.min_capacity} exceeds "
                f"max_capacity {self.max_capacity}"
            )
        if self.max_capacity is not None and self.max_capacity < self.initial_tokens:
            raise ModelError(
                f"buffer {self.name!r}: max_capacity {self.max_capacity} is smaller "
                f"than the number of initially filled containers {self.initial_tokens}"
            )

    @property
    def is_multi_rate(self) -> bool:
        """Whether any declared rate profile differs from one-per-firing."""
        return any(
            rates is not None and (len(rates) > 1 or rates[0] != 1)
            for rates in (self.production_rates, self.consumption_rates)
        )

    @property
    def total_production(self) -> int:
        """Containers produced per full source phase cycle (1 if single-rate)."""
        return sum(self.production_rates) if self.production_rates else 1

    @property
    def total_consumption(self) -> int:
        """Containers consumed per full target phase cycle (1 if single-rate)."""
        return sum(self.consumption_rates) if self.consumption_rates else 1

    @property
    def smallest_feasible_capacity(self) -> int:
        """Smallest capacity that can hold the initial tokens and one transfer."""
        lower = max(1, self.initial_tokens)
        if self.production_rates is not None:
            lower = max(lower, max(self.production_rates))
        if self.consumption_rates is not None:
            lower = max(lower, max(self.consumption_rates))
        if self.min_capacity is not None:
            lower = max(lower, self.min_capacity)
        return lower

    def storage_for(self, capacity: int) -> float:
        """Memory footprint of this buffer for a given capacity in containers."""
        if capacity < 1:
            raise ModelError(
                f"buffer {self.name!r}: capacity must be at least one container"
            )
        return capacity * self.container_size

    def with_bounds(
        self, min_capacity: Optional[int] = None, max_capacity: Optional[int] = None
    ) -> "Buffer":
        """Return a copy with different capacity bounds (used by sweeps)."""
        return Buffer(
            name=self.name,
            source=self.source,
            target=self.target,
            memory=self.memory,
            container_size=self.container_size,
            initial_tokens=self.initial_tokens,
            capacity_weight=self.capacity_weight,
            min_capacity=min_capacity,
            max_capacity=max_capacity,
            production_rates=self.production_rates,
            consumption_rates=self.consumption_rates,
        )
