#!/usr/bin/env python3
"""Multi-job mapping under memory pressure: joint vs. two-phase flows.

The scenario from the paper's introduction: a car-entertainment-style system
runs a video job (10-Mcycle period) and an audio job (40-Mcycle period) that
share the same two processors, and all FIFO buffers live in a small on-chip
memory.  The example

1. screens the configuration with the closed-form feasibility checks,
2. computes a joint budget/buffer mapping with Algorithm 1,
3. runs the classical two-phase flows (budget-first and buffer-first) on the
   same configuration and compares the outcomes, and
4. prints the resulting TDM slot tables.

Run with:  python examples/multi_job_mapping.py
"""

from __future__ import annotations

from repro import ConfigurationBuilder, JointAllocator, ObjectiveWeights
from repro.analysis import analyse_throughput, render_table, screen_configuration
from repro.baselines import TwoPhaseOrder, run_two_phase
from repro.scheduling import allocations_from_mapping


def build_configuration():
    return (
        ConfigurationBuilder(name="car-entertainment", granularity=1.0)
        .processor("p1", replenishment_interval=40.0, scheduling_overhead=1.0)
        .processor("p2", replenishment_interval=40.0, scheduling_overhead=1.0)
        .memory("sram", capacity=9.0)
        .task_graph("video", period=10.0)
        .task("vdec", wcet=1.0, processor="p1")
        .task("vscale", wcet=1.0, processor="p2")
        .buffer("vframes", source="vdec", target="vscale", memory="sram")
        .task_graph("audio", period=40.0)
        .task("adec", wcet=1.0, processor="p1")
        .task("amix", wcet=1.0, processor="p2")
        .buffer("asamples", source="adec", target="amix", memory="sram")
        .build()
    )


def main() -> None:
    configuration = build_configuration()

    screen = screen_configuration(configuration)
    print("Feasibility screen (closed-form necessary conditions)")
    print(
        render_table(
            [
                {"resource": name, "minimum load": round(load, 3)}
                for name, load in {**screen.processor_load, **screen.memory_load}.items()
            ]
        )
    )
    print()

    allocator = JointAllocator(weights=ObjectiveWeights.prefer_budgets())
    joint = allocator.allocate(configuration)

    print("Joint mapping (Algorithm 1)")
    print(
        render_table(
            [
                {"task": name, "budget (Mcycles)": budget}
                for name, budget in sorted(joint.budgets.items())
            ]
        )
    )
    print(
        render_table(
            [
                {"buffer": name, "capacity (containers)": capacity}
                for name, capacity in sorted(joint.buffer_capacities.items())
            ]
        )
    )
    for report in analyse_throughput(joint).values():
        status = "meets" if report.meets_requirement else "MISSES"
        print(
            f"  {report.graph_name}: minimum period {report.minimum_period:.2f} Mcycles "
            f"({status} the {report.required_period:.0f}-Mcycle requirement)"
        )
    print()

    print("Classical two-phase flows on the same configuration")
    comparison_rows = []
    for order in TwoPhaseOrder:
        result = run_two_phase(configuration, order)
        comparison_rows.append(
            {
                "flow": order.value,
                "feasible": result.feasible,
                "total budget (Mcycles)": None if not result.feasible else round(result.total_budget, 1),
                "total containers": None if not result.feasible else result.total_capacity,
            }
        )
    comparison_rows.append(
        {
            "flow": "joint (this paper)",
            "feasible": True,
            "total budget (Mcycles)": round(sum(joint.budgets.values()), 1),
            "total containers": sum(joint.buffer_capacities.values()),
        }
    )
    print(render_table(comparison_rows))
    print()

    print("TDM slot tables realising the joint budgets")
    for processor_name, allocation in allocations_from_mapping(joint).items():
        table = allocation.slot_table()
        owners = "".join((owner or ".")[0] for owner in table.owners)
        print(f"  {processor_name}: [{owners}]")


if __name__ == "__main__":
    main()
