"""Tests of the workload model: construction, validation, (de)serialisation."""

from __future__ import annotations

import pytest

from repro.exceptions import BindingError, ModelError
from repro.taskgraph import (
    Workload,
    load_workload,
    random_workload,
    save_workload,
    workload_from_configurations,
    workload_from_dict,
    workload_from_json,
    workload_to_dict,
    workload_to_json,
)
from repro.taskgraph.buffer import Buffer
from repro.taskgraph.configuration import Configuration
from repro.taskgraph.generators import (
    chain_configuration,
    producer_consumer_configuration,
)
from repro.taskgraph.graph import TaskGraph
from repro.taskgraph.platform import homogeneous_platform
from repro.taskgraph.task import Task


def two_app_workload() -> Workload:
    video = chain_configuration(stages=2)
    audio = chain_configuration(stages=2, period=20.0)
    workload = Workload(video.platform, name="set-top-box")
    workload.add_application("video", video)
    workload.add_application("audio", audio)
    return workload


class TestConstruction:
    def test_applications_are_rehomed_onto_the_shared_platform(self):
        shared = homogeneous_platform(processor_count=2, replenishment_interval=40.0)
        app = producer_consumer_configuration()
        workload = Workload(shared, name="wl")
        application = workload.add_application("pc", app)
        assert application.configuration.platform is shared
        assert workload.application("pc").name == "pc"
        assert len(workload) == 1

    def test_duplicate_application_names_are_rejected(self):
        workload = two_app_workload()
        with pytest.raises(ModelError, match="duplicate application name"):
            workload.add_application("video", chain_configuration(stages=2))

    def test_empty_application_name_is_rejected(self):
        shared = homogeneous_platform(processor_count=2, replenishment_interval=40.0)
        with pytest.raises(ModelError, match="non-empty"):
            Workload(shared).add_application("", producer_consumer_configuration())

    def test_application_name_with_slash_is_rejected(self):
        # "/" is the namespace separator of qualified variable names and
        # flattened "app/name" result keys.
        shared = homogeneous_platform(processor_count=2, replenishment_interval=40.0)
        with pytest.raises(ModelError, match="must not contain '/'"):
            Workload(shared).add_application(
                "cam/left", producer_consumer_configuration()
            )

    def test_unknown_application_lookup_raises(self):
        with pytest.raises(ModelError, match="no application named"):
            two_app_workload().application("ghost")

    def test_duplicate_task_names_across_applications_are_allowed(self):
        # Two instances of the same pipeline: task names collide across
        # applications, which the per-application namespacing supports.
        workload = Workload(
            chain_configuration(stages=2).platform, name="two-decoders"
        )
        workload.add_application("left", chain_configuration(stages=2))
        workload.add_application("right", chain_configuration(stages=2))
        workload.validate()
        assert workload.application("left").task_names() == (
            workload.application("right").task_names()
        )

    def test_from_configurations_uses_configuration_names(self):
        workload = workload_from_configurations(
            [chain_configuration(stages=2), producer_consumer_configuration()],
            name="mixed",
        )
        assert set(workload.application_names) == {"chain-2", "producer-consumer"}


class TestValidation:
    def test_application_referencing_missing_processor_is_rejected(self):
        shared = homogeneous_platform(processor_count=1, replenishment_interval=40.0)
        app = producer_consumer_configuration()  # binds tasks to p1 and p2
        with pytest.raises(BindingError, match="p2"):
            Workload(shared).add_application("pc", app)

    def test_application_referencing_missing_memory_is_rejected(self):
        shared = homogeneous_platform(
            processor_count=2, replenishment_interval=40.0, memory_count=1
        )
        graph = TaskGraph(name="t", period=10.0)
        graph.add_task(Task(name="a", wcet=1.0, processor="p1"))
        graph.add_task(Task(name="b", wcet=1.0, processor="p2"))
        graph.add_buffer(
            Buffer(name="ab", source="a", target="b", memory="m9")
        )
        app = Configuration(platform=shared, task_graphs=[graph])
        with pytest.raises(BindingError, match="m9"):
            Workload(shared).add_application("t", app)

    def test_empty_workload_is_rejected(self):
        shared = homogeneous_platform(processor_count=1, replenishment_interval=40.0)
        with pytest.raises(ModelError, match="no applications"):
            Workload(shared, name="empty").validate()

    def test_combined_processor_overload_is_rejected(self):
        # Each app alone fits (needs 20 + 1 granule of the 40-cycle
        # interval), but three of them cannot share one processor.
        def heavy_app():
            graph = TaskGraph(name="t", period=10.0)
            graph.add_task(Task(name="a", wcet=5.0, processor="p1"))
            graph.add_task(Task(name="b", wcet=1.0, processor="p2"))
            graph.add_buffer(Buffer(name="ab", source="a", target="b", memory="m1"))
            return Configuration(
                platform=homogeneous_platform(
                    processor_count=2, replenishment_interval=40.0
                ),
                task_graphs=[graph],
            )

        shared = homogeneous_platform(processor_count=2, replenishment_interval=40.0)
        workload = Workload(shared, name="overloaded")
        for index in range(3):
            app = heavy_app()
            app.validate()  # each application is fine on its own
            workload.add_application(f"app{index}", app)
        with pytest.raises(ModelError, match="overloaded across the workload"):
            workload.validate()
        # The overload screen is a definite infeasibility verdict, so the
        # allocation layers (sweeps, batch items) can treat it as one.
        from repro.exceptions import InfeasibleProblemError

        with pytest.raises(InfeasibleProblemError):
            workload.validate()


class TestSerialization:
    def test_json_round_trip(self, tmp_path):
        workload = two_app_workload()
        text = workload_to_json(workload)
        restored = workload_from_json(text)
        assert workload_to_dict(restored) == workload_to_dict(workload)
        assert restored.name == workload.name
        assert restored.application_names == workload.application_names
        assert (
            restored.application("audio").granularity
            == workload.application("audio").granularity
        )

        path = tmp_path / "workload.json"
        save_workload(workload, path)
        assert workload_to_dict(load_workload(path)) == workload_to_dict(workload)

    def test_round_trip_preserves_periods_and_granularity(self):
        workload = two_app_workload()
        restored = workload_from_json(workload_to_json(workload))
        audio = restored.application("audio").configuration
        assert audio.task_graphs[0].period == pytest.approx(20.0)

    def test_newer_format_version_is_rejected(self):
        data = workload_to_dict(two_app_workload())
        data["format_version"] = 99
        with pytest.raises(ModelError, match="newer than supported"):
            workload_from_dict(data)

    def test_missing_platform_is_rejected(self):
        data = workload_to_dict(two_app_workload())
        del data["platform"]
        with pytest.raises(ModelError, match="platform"):
            workload_from_dict(data)

    def test_empty_applications_list_is_rejected(self):
        data = workload_to_dict(two_app_workload())
        data["applications"] = []
        with pytest.raises(ModelError, match="non-empty 'applications'"):
            workload_from_dict(data)

    def test_application_without_name_is_rejected(self):
        data = workload_to_dict(two_app_workload())
        del data["applications"][0]["name"]
        with pytest.raises(ModelError, match="needs a 'name'"):
            workload_from_dict(data)

    def test_duplicate_application_names_in_document_are_rejected(self):
        data = workload_to_dict(two_app_workload())
        data["applications"][1]["name"] = data["applications"][0]["name"]
        with pytest.raises(ModelError, match="duplicate application name"):
            workload_from_dict(data)

    def test_document_referencing_missing_processor_is_rejected(self):
        data = workload_to_dict(two_app_workload())
        data["applications"][0]["task_graphs"][0]["tasks"][0]["processor"] = "p9"
        with pytest.raises(BindingError, match="p9"):
            workload_from_dict(data)


class TestGenerators:
    def test_random_workload_is_deterministic(self):
        first = random_workload(application_count=2, task_count=4, seed=7)
        second = random_workload(application_count=2, task_count=4, seed=7)
        assert workload_to_dict(first) == workload_to_dict(second)
        third = random_workload(application_count=2, task_count=4, seed=8)
        assert workload_to_dict(first) != workload_to_dict(third)

    def test_random_workload_shares_one_platform(self):
        workload = random_workload(application_count=3, task_count=4, seed=1)
        assert len(workload) == 3
        platforms = {
            id(application.configuration.platform)
            for application in workload.applications
        }
        assert len(platforms) == 1
        workload.validate()

    def test_random_workload_rejects_zero_applications(self):
        with pytest.raises(ModelError):
            random_workload(application_count=0)
