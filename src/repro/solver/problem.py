"""Problem container and compilation to numerical form.

:class:`ConeProgram` is the modelling entry point of the optimisation
substrate: variables and constraints are registered on it, an affine
objective is chosen, and :meth:`ConeProgram.solve` dispatches to one of the
backends (:mod:`repro.solver.barrier`, :mod:`repro.solver.linprog_backend`,
:mod:`repro.solver.scipy_backend`).

The numerical backends do not operate on the symbolic objects directly;
:meth:`ConeProgram.compile` lowers the program into a
:class:`CompiledProblem` made of dense numpy arrays:

* objective vector ``c`` and offset ``c0``,
* inequalities ``G·x ≤ h`` (variable bounds folded in),
* equalities ``A·x = b``,
* hyperbolic constraints as coefficient-vector tuples,
* second-order cone constraints as matrix/vector tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

try:  # scipy is the expected substrate; the dense path below survives without it
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - exercised only on scipy-less installs
    _sparse = None

from repro.exceptions import FormulationError
from repro.obs.trace import span as obs_span
from repro.solver.constraints import (
    EQUAL,
    GREATER_EQUAL,
    LESS_EQUAL,
    HyperbolicConstraint,
    LinearConstraint,
    SecondOrderConeConstraint,
)
from repro.solver.expression import (
    AffineExpression,
    ExpressionLike,
    Variable,
    linear_sum,
)
from repro.solver.result import Solution

Constraint = Union[LinearConstraint, HyperbolicConstraint, SecondOrderConeConstraint]


def bounds_collapse(lower: float, upper: float) -> bool:
    """Bounds close enough that compilation emits an equality row.

    The single definition shared by :meth:`ConeProgram.compile` and the
    parametric layers (:class:`repro.core.formulation.
    ParametricSocpFormulation` detects this case to fall back to a rebuild,
    since an equality row cannot be produced by mutating inequality
    right-hand sides).
    """
    return abs(upper - lower) <= 1e-12 * max(1.0, abs(lower))


@dataclass
class CompiledHyperbolic:
    """Numerical form of ``(p·x + p0)·(q·x + q0) ≥ bound``."""

    p: np.ndarray
    p0: float
    q: np.ndarray
    q0: float
    bound: float
    name: str = ""


@dataclass
class CompiledCone:
    """Numerical form of ``‖A·x + b‖₂ ≤ c·x + d``."""

    A: np.ndarray
    b: np.ndarray
    c: np.ndarray
    d: float
    name: str = ""


@dataclass
class BlockStructure:
    """Block partition of a compiled problem's variables and constraints.

    Emitted by :meth:`ConeProgram.compile` when the program declared variable
    blocks (:meth:`ConeProgram.declare_blocks`) — per-application blocks in
    :class:`repro.core.formulation._BlockAssembly` — and every non-linear and
    equality constraint turned out to be confined to a single block.  The
    barrier backend uses it to eliminate equalities blockwise and to replace
    the dense Newton solve with a block-Cholesky + Schur-complement solve on
    the arrow-structured KKT system (see
    :class:`repro.solver.barrier.BarrierSolver`).

    ``ranges`` are half-open variable index ranges, one per block, covering
    every variable exactly once in order.  ``row_blocks`` assigns each
    inequality row the block its support lies in, with ``-1`` marking the
    *coupling rows* whose support spans several blocks (the shared processor
    and memory capacity rows of a workload program).
    """

    ranges: List[Tuple[int, int]]
    row_blocks: np.ndarray          #: block per inequality row; -1 = coupling
    equality_blocks: np.ndarray     #: block per equality row (always single-block)
    hyperbolic_blocks: List[int]    #: block per hyperbolic constraint
    cone_blocks: List[int]          #: block per SOC constraint

    @property
    def num_blocks(self) -> int:
        return len(self.ranges)

    @property
    def coupling_rows(self) -> np.ndarray:
        """Indices of the inequality rows whose support spans several blocks."""
        return np.flatnonzero(self.row_blocks < 0)


class CompiledProblem:
    """Numerical representation of a :class:`ConeProgram`.

    The constraint matrices ``G`` (inequalities) and ``A`` (equalities) are
    stored in CSR form when scipy is available — for workload programs they
    are extremely sparse (a few entries per row against thousands of columns)
    and the block-Newton solver consumes them blockwise.  The dense views
    remain available as the :attr:`G` / :attr:`A` properties, densified
    lazily and cached, so backends and tests that want plain arrays keep
    working; sparse-aware code uses :attr:`G_sparse` / :attr:`A_sparse`.

    ``h`` and ``b`` stay plain mutable ndarrays: the parametric layer
    (:class:`repro.solver.parametric.ParametricProblem`) re-solves a compiled
    program by mutating ``h`` rows in place.
    """

    def __init__(
        self,
        variables: List[Variable],
        c: np.ndarray,
        c0: float,
        G: object,
        h: np.ndarray,
        A: object,
        b: np.ndarray,
        hyperbolic: List[CompiledHyperbolic],
        cones: List[CompiledCone],
        inequality_names: Optional[List[str]] = None,
        block_structure: Optional[BlockStructure] = None,
    ) -> None:
        self.variables = variables
        self.c = c
        self.c0 = c0
        self.h = h
        self.b = b
        self.hyperbolic = hyperbolic
        self.cones = cones
        self.inequality_names = list(inequality_names or [])
        #: Optional per-application block partition (see
        #: :class:`BlockStructure`); ``None`` for unstructured programs.
        self.block_structure = block_structure
        #: Cache of the equality-elimination result (particular point +
        #: null-space basis), written by the barrier backend on first use.
        #: Valid as long as ``A`` and ``b`` are unchanged — parametric
        #: re-solves mutate only ``h``, so warm-started sessions reuse one
        #: elimination across every solve.
        self.elimination_cache: Optional[object] = None
        #: Optional per-block elimination seed (block index → validated basis
        #: carried over from a *different* compiled problem), installed by
        #: :func:`repro.solver.barrier.transfer_block_eliminations` when a
        #: session is edited incrementally.  The blockwise elimination
        #: verifies each seeded block's equality data before reusing its
        #: basis, then drops the seed so retired blocks cannot accumulate.
        self.elimination_seed: Optional[Dict[int, object]] = None
        self._G_dense: Optional[np.ndarray] = None
        self._A_dense: Optional[np.ndarray] = None
        self._G_sparse = None
        self._A_sparse = None
        if _sparse is not None and _sparse.issparse(G):
            self._G_sparse = G.tocsr()
        else:
            self._G_dense = np.asarray(G, dtype=float)
        if _sparse is not None and _sparse.issparse(A):
            self._A_sparse = A.tocsr()
        else:
            self._A_dense = np.asarray(A, dtype=float)

    # -- constraint matrix views ------------------------------------------
    @property
    def G(self) -> np.ndarray:
        """Dense inequality matrix (densified lazily from CSR, then cached)."""
        if self._G_dense is None:
            self._G_dense = self._G_sparse.toarray()
        return self._G_dense

    @property
    def A(self) -> np.ndarray:
        """Dense equality matrix (densified lazily from CSR, then cached)."""
        if self._A_dense is None:
            self._A_dense = self._A_sparse.toarray()
        return self._A_dense

    @property
    def G_sparse(self):
        """CSR inequality matrix, or ``None`` when scipy is unavailable."""
        if self._G_sparse is None and _sparse is not None:
            self._G_sparse = _sparse.csr_matrix(self._G_dense)
        return self._G_sparse

    @property
    def A_sparse(self):
        """CSR equality matrix, or ``None`` when scipy is unavailable."""
        if self._A_sparse is None and _sparse is not None:
            self._A_sparse = _sparse.csr_matrix(self._A_dense)
        return self._A_sparse

    @property
    def constraint_nnz(self) -> int:
        """Stored non-zeros across ``G`` and ``A`` (sparse-backend telemetry)."""
        total = 0
        for sparse_mat, dense_mat in (
            (self._G_sparse, self._G_dense),
            (self._A_sparse, self._A_dense),
        ):
            if sparse_mat is not None:
                total += int(sparse_mat.nnz)
            elif dense_mat is not None:
                total += int(np.count_nonzero(dense_mat))
        return total

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    def index_of(self, variable: Variable) -> int:
        try:
            return self._index[variable]
        except AttributeError:
            self._index = {var: i for i, var in enumerate(self.variables)}
            return self._index[variable]

    def objective_value(self, x: np.ndarray) -> float:
        return float(self.c @ x + self.c0)

    def point_as_mapping(self, x: np.ndarray) -> Dict[Variable, float]:
        return {var: float(x[i]) for i, var in enumerate(self.variables)}

    def vector_from_mapping(
        self, values: Mapping[Variable, float], default: float = 0.0
    ) -> np.ndarray:
        x = np.full(self.num_variables, float(default))
        for i, var in enumerate(self.variables):
            if var in values:
                x[i] = float(values[var])
        return x

    # -- feasibility inspection -------------------------------------------
    def _apply_G(self, x: np.ndarray) -> np.ndarray:
        """``G @ x`` via whichever representation is already materialised."""
        matrix = self._G_sparse if self._G_dense is None else self._G_dense
        return matrix @ x

    def _apply_A(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` via whichever representation is already materialised."""
        matrix = self._A_sparse if self._A_dense is None else self._A_dense
        return matrix @ x

    def max_linear_violation(self, x: np.ndarray) -> float:
        violation = 0.0
        if self.h.size:
            violation = max(violation, float(np.max(self._apply_G(x) - self.h)))
        if self.b.size:
            violation = max(violation, float(np.max(np.abs(self._apply_A(x) - self.b))))
        return violation

    def min_cone_margin(self, x: np.ndarray) -> float:
        margin = np.inf
        for hyp in self.hyperbolic:
            p = float(hyp.p @ x + hyp.p0)
            q = float(hyp.q @ x + hyp.q0)
            margin = min(margin, p * q - hyp.bound, p, q)
        for cone in self.cones:
            u = cone.A @ x + cone.b
            v = float(cone.c @ x + cone.d)
            margin = min(margin, v - float(np.linalg.norm(u)))
        return margin


class ConeProgram:
    """A convex optimisation problem with linear and second-order cone constraints."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._variables: List[Variable] = []
        self._names: Dict[str, Variable] = {}
        self._linear: List[LinearConstraint] = []
        self._hyperbolic: List[HyperbolicConstraint] = []
        self._cones: List[SecondOrderConeConstraint] = []
        self._objective: AffineExpression = AffineExpression()
        self._sense: str = "min"
        self._block_groups: Optional[List[Tuple[Variable, ...]]] = None

    # -- variables ---------------------------------------------------------
    def add_variable(
        self,
        name: str,
        lower: Optional[float] = None,
        upper: Optional[float] = None,
    ) -> Variable:
        """Create and register a decision variable with optional bounds."""
        if name in self._names:
            raise FormulationError(f"duplicate variable name {name!r}")
        variable = Variable(name, lower, upper)
        self._variables.append(variable)
        self._names[name] = variable
        return variable

    def variable(self, name: str) -> Variable:
        """Look up a registered variable by name."""
        try:
            return self._names[name]
        except KeyError:
            raise FormulationError(f"unknown variable {name!r}") from None

    @property
    def variables(self) -> Tuple[Variable, ...]:
        return tuple(self._variables)

    @property
    def num_variables(self) -> int:
        """Number of registered variables (without copying the tuple)."""
        return len(self._variables)

    def variable_slice(self, start: int, stop: Optional[int] = None) -> Tuple[Variable, ...]:
        """The registered variables in ``[start, stop)``.

        Block assembly snapshots each application's variable group right
        after registering it; going through this accessor instead of the
        :attr:`variables` property keeps that loop linear — the property
        copies the *entire* variable list on every access, which is
        quadratic over hundreds of applications.
        """
        return tuple(self._variables[start:stop])

    def declare_blocks(self, groups: Sequence[Sequence[Variable]]) -> None:
        """Declare a block partition of the variables for the solver.

        ``groups`` lists the variables of each block (per application, in the
        workload formulation).  :meth:`compile` turns the declaration into a
        :class:`BlockStructure` when the groups partition the variables into
        contiguous index ranges and every equality / hyperbolic / SOC
        constraint is confined to one block; otherwise the compiled problem
        simply carries no structure and the solver uses its dense path, so
        declaring blocks is always safe.
        """
        for group in groups:
            for var in group:
                if self._names.get(var.name) is not var:
                    raise FormulationError(
                        f"block declaration references variable {var.name!r} "
                        f"that is not registered with program {self.name!r}"
                    )
        self._block_groups = [tuple(group) for group in groups]

    # -- constraints --------------------------------------------------------
    def add_constraint(self, constraint: Constraint) -> Constraint:
        """Register an already-constructed constraint object."""
        if isinstance(constraint, LinearConstraint):
            self._check_known_variables(constraint.expression)
            self._linear.append(constraint)
        elif isinstance(constraint, HyperbolicConstraint):
            self._check_known_variables(constraint.x)
            self._check_known_variables(constraint.y)
            self._hyperbolic.append(constraint)
        elif isinstance(constraint, SecondOrderConeConstraint):
            for row in constraint.rows:
                self._check_known_variables(row)
            self._check_known_variables(constraint.rhs)
            self._cones.append(constraint)
        else:
            raise FormulationError(
                f"unsupported constraint type {type(constraint).__name__}"
            )
        return constraint

    def add_linear(
        self,
        lhs: ExpressionLike,
        sense: str,
        rhs: ExpressionLike,
        name: Optional[str] = None,
    ) -> LinearConstraint:
        """Add an affine constraint ``lhs <sense> rhs``."""
        constraint = LinearConstraint(lhs, sense, rhs, name=name)
        return self.add_constraint(constraint)  # type: ignore[return-value]

    def add_less_equal(
        self, lhs: ExpressionLike, rhs: ExpressionLike, name: Optional[str] = None
    ) -> LinearConstraint:
        return self.add_linear(lhs, LESS_EQUAL, rhs, name=name)

    def add_greater_equal(
        self, lhs: ExpressionLike, rhs: ExpressionLike, name: Optional[str] = None
    ) -> LinearConstraint:
        return self.add_linear(lhs, GREATER_EQUAL, rhs, name=name)

    def add_equality(
        self, lhs: ExpressionLike, rhs: ExpressionLike, name: Optional[str] = None
    ) -> LinearConstraint:
        return self.add_linear(lhs, EQUAL, rhs, name=name)

    def add_hyperbolic(
        self,
        x: ExpressionLike,
        y: ExpressionLike,
        bound: float = 1.0,
        name: Optional[str] = None,
    ) -> HyperbolicConstraint:
        """Add the convex constraint ``x·y ≥ bound`` (``x, y > 0``)."""
        constraint = HyperbolicConstraint(x, y, bound, name=name)
        return self.add_constraint(constraint)  # type: ignore[return-value]

    def add_second_order_cone(
        self,
        rows: Sequence[ExpressionLike],
        rhs: ExpressionLike,
        name: Optional[str] = None,
    ) -> SecondOrderConeConstraint:
        """Add the constraint ``‖rows‖₂ ≤ rhs``."""
        constraint = SecondOrderConeConstraint(rows, rhs, name=name)
        return self.add_constraint(constraint)  # type: ignore[return-value]

    @property
    def linear_constraints(self) -> Tuple[LinearConstraint, ...]:
        return tuple(self._linear)

    @property
    def hyperbolic_constraints(self) -> Tuple[HyperbolicConstraint, ...]:
        return tuple(self._hyperbolic)

    @property
    def cone_constraints(self) -> Tuple[SecondOrderConeConstraint, ...]:
        return tuple(self._cones)

    @property
    def is_linear(self) -> bool:
        """True when the program contains no cone constraints (pure LP)."""
        return not self._hyperbolic and not self._cones

    # -- objective -----------------------------------------------------------
    def minimize(self, expression: ExpressionLike) -> None:
        """Set the objective to minimise the given affine expression."""
        expr = AffineExpression.coerce(expression)
        self._check_known_variables(expr)
        self._objective = expr
        self._sense = "min"

    def maximize(self, expression: ExpressionLike) -> None:
        """Set the objective to maximise the given affine expression."""
        expr = AffineExpression.coerce(expression)
        self._check_known_variables(expr)
        self._objective = expr
        self._sense = "max"

    @property
    def objective(self) -> AffineExpression:
        return self._objective

    @property
    def sense(self) -> str:
        return self._sense

    def _check_known_variables(self, expression: AffineExpression) -> None:
        for var in expression.variables():
            if self._names.get(var.name) is not var:
                raise FormulationError(
                    f"expression references variable {var.name!r} that is not "
                    f"registered with program {self.name!r}"
                )

    # -- compilation -----------------------------------------------------------
    def _vectorise(self, expression: AffineExpression, index: Dict[Variable, int]) -> Tuple[np.ndarray, float]:
        row = np.zeros(len(self._variables))
        for var, coeff in expression.terms.items():
            row[index[var]] = coeff
        return row, expression.constant

    @staticmethod
    def _build_rows(
        rows: List[Tuple[List[int], List[float]]], n: int
    ) -> object:
        """Stack sparse row triplets into a CSR matrix (dense without scipy)."""
        if _sparse is None:
            matrix = np.zeros((len(rows), n))
            for i, (cols, vals) in enumerate(rows):
                matrix[i, cols] = vals
            return matrix
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        for i, (cols, _) in enumerate(rows):
            indptr[i + 1] = indptr[i] + len(cols)
        indices = np.empty(indptr[-1], dtype=np.int64)
        data = np.empty(indptr[-1])
        for i, (cols, vals) in enumerate(rows):
            indices[indptr[i]:indptr[i + 1]] = cols
            data[indptr[i]:indptr[i + 1]] = vals
        matrix = _sparse.csr_matrix((data, indices, indptr), shape=(len(rows), n))
        matrix.sort_indices()
        return matrix

    def compile(self) -> CompiledProblem:
        """Lower the symbolic program into numerical (CSR + dense) form."""
        index = {var: i for i, var in enumerate(self._variables)}
        n = len(self._variables)

        # Objective (always converted to minimisation form).
        c, c0 = self._vectorise(self._objective, index)
        if self._sense == "max":
            c, c0 = -c, -c0

        g_rows: List[Tuple[List[int], List[float]]] = []
        h_vals: List[float] = []
        ineq_names: List[str] = []
        a_rows: List[Tuple[List[int], List[float]]] = []
        b_vals: List[float] = []

        def sparse_row(expression: AffineExpression) -> Tuple[List[int], List[float], float]:
            cols: List[int] = []
            vals: List[float] = []
            for var, coeff in expression.terms.items():
                if coeff != 0.0:
                    cols.append(index[var])
                    vals.append(float(coeff))
            return cols, vals, expression.constant

        # Variable bounds become inequality rows.  A variable whose bounds
        # coincide is emitted as an equality instead: two opposing
        # inequalities would leave the feasible region without an interior,
        # which the barrier method cannot handle.
        for var, i in index.items():
            if (
                var.lower is not None
                and var.upper is not None
                and bounds_collapse(var.lower, var.upper)
            ):
                a_rows.append(([i], [1.0]))
                b_vals.append(var.lower)
                continue
            if var.lower is not None:
                g_rows.append(([i], [-1.0]))
                h_vals.append(-var.lower)
                ineq_names.append(f"lb[{var.name}]")
            if var.upper is not None:
                g_rows.append(([i], [1.0]))
                h_vals.append(var.upper)
                ineq_names.append(f"ub[{var.name}]")

        for constraint in self._linear:
            cols, vals, const = sparse_row(constraint.expression)
            if constraint.is_equality:
                a_rows.append((cols, vals))
                b_vals.append(-const)
            else:
                # expression <= 0  ->  row @ x <= -const
                g_rows.append((cols, vals))
                h_vals.append(-const)
                ineq_names.append(constraint.name)

        hyperbolic = []
        for constraint in self._hyperbolic:
            p, p0 = self._vectorise(constraint.x, index)
            q, q0 = self._vectorise(constraint.y, index)
            hyperbolic.append(
                CompiledHyperbolic(p=p, p0=p0, q=q, q0=q0, bound=constraint.bound,
                                   name=constraint.name)
            )

        cones = []
        for constraint in self._cones:
            rows = [self._vectorise(row, index) for row in constraint.rows]
            A = np.vstack([r for r, _ in rows]) if rows else np.zeros((0, n))
            b = np.array([const for _, const in rows])
            cvec, d = self._vectorise(constraint.rhs, index)
            cones.append(CompiledCone(A=A, b=b, c=cvec, d=d, name=constraint.name))

        G = self._build_rows(g_rows, n)
        h = np.array(h_vals)
        A = self._build_rows(a_rows, n)
        b = np.array(b_vals)

        return CompiledProblem(
            variables=list(self._variables),
            c=c,
            c0=c0,
            G=G,
            h=h,
            A=A,
            b=b,
            hyperbolic=hyperbolic,
            cones=cones,
            inequality_names=ineq_names,
            block_structure=self._compile_block_structure(
                index, G, A, hyperbolic, cones
            ),
        )

    def _compile_block_structure(
        self,
        index: Dict[Variable, int],
        G: object,
        A: object,
        hyperbolic: List[CompiledHyperbolic],
        cones: List[CompiledCone],
    ) -> Optional[BlockStructure]:
        """Turn a :meth:`declare_blocks` declaration into a :class:`BlockStructure`.

        Returns ``None`` (no structure, dense solver path) when no blocks were
        declared, when the groups do not form contiguous index ranges covering
        every variable, or when an equality / hyperbolic / SOC constraint
        spans several blocks — only *linear inequality* rows may couple
        blocks, because only their barrier Hessian contribution is the
        low-rank term the Schur-complement solve handles.

        Row/block membership is detected in O(nnz) straight from the CSR
        index arrays; no dense column scans, so compilation stays linear in
        the number of applications.
        """
        if not self._block_groups:
            return None
        n = len(self._variables)
        col_block = np.full(n, -1, dtype=int)
        ranges: List[Tuple[int, int]] = []
        for block_index, group in enumerate(self._block_groups):
            if not group:
                return None
            columns = sorted(index[var] for var in group)
            start, stop = columns[0], columns[-1] + 1
            if stop - start != len(columns) or np.any(col_block[start:stop] >= 0):
                return None
            col_block[start:stop] = block_index
            ranges.append((start, stop))
        if np.any(col_block < 0):
            return None

        def blocks_of(rows: np.ndarray) -> np.ndarray:
            """Distinct blocks touched by the support of stacked row vectors."""
            columns = np.flatnonzero(np.any(np.atleast_2d(rows) != 0.0, axis=0))
            return np.unique(col_block[columns])

        def single_block(rows: np.ndarray) -> Optional[int]:
            touched = blocks_of(rows)
            if touched.size > 1:
                return None
            return int(touched[0]) if touched.size else 0

        def row_block_spans(matrix: object) -> Tuple[np.ndarray, np.ndarray]:
            """Per-row (lowest, highest) touched block; empty rows give (0, 0)."""
            if _sparse is not None and _sparse.issparse(matrix):
                csr = matrix.tocsr()
                counts = np.diff(csr.indptr)
                lo = np.zeros(csr.shape[0], dtype=int)
                hi = np.zeros(csr.shape[0], dtype=int)
                nonempty = np.flatnonzero(counts > 0)
                if nonempty.size:
                    entry_blocks = col_block[csr.indices]
                    starts = csr.indptr[nonempty]
                    # reduceat segments between consecutive non-empty row
                    # starts cover exactly those rows' entries (empty rows
                    # contribute no gap), so this is per-row min/max.
                    lo[nonempty] = np.minimum.reduceat(entry_blocks, starts)
                    hi[nonempty] = np.maximum.reduceat(entry_blocks, starts)
                return lo, hi
            dense = np.asarray(matrix)
            touched_per_block = np.vstack(
                [(dense[:, start:stop] != 0.0).any(axis=1) for start, stop in ranges]
            ) if dense.shape[0] else np.zeros((len(ranges), 0), dtype=bool)
            touched = np.where(touched_per_block, np.arange(len(ranges))[:, None], -1)
            hi = touched.max(axis=0)
            touched_lo = np.where(touched_per_block, np.arange(len(ranges))[:, None], len(ranges))
            lo = touched_lo.min(axis=0)
            empty = ~touched_per_block.any(axis=0)
            lo[empty] = 0
            hi[empty] = 0
            return lo.astype(int), hi.astype(int)

        g_lo, g_hi = row_block_spans(G)
        row_blocks = np.where(g_lo != g_hi, -1, g_lo).astype(int)
        a_lo, a_hi = row_block_spans(A)
        if np.any(a_lo != a_hi):
            return None
        equality_blocks = a_lo.astype(int)
        hyperbolic_blocks: List[int] = []
        for hyp in hyperbolic:
            block = single_block(np.vstack([hyp.p, hyp.q]))
            if block is None:
                return None
            hyperbolic_blocks.append(block)
        cone_blocks: List[int] = []
        for cone in cones:
            block = single_block(np.vstack([cone.A, cone.c.reshape(1, -1)]))
            if block is None:
                return None
            cone_blocks.append(block)
        return BlockStructure(
            ranges=ranges,
            row_blocks=row_blocks,
            equality_blocks=equality_blocks,
            hyperbolic_blocks=hyperbolic_blocks,
            cone_blocks=cone_blocks,
        )

    # -- solving -----------------------------------------------------------------
    def solve(
        self,
        backend: str = "auto",
        initial_point: Optional[Mapping[Variable, float]] = None,
        **options: object,
    ) -> Solution:
        """Solve the program and return a :class:`Solution`.

        Parameters
        ----------
        backend:
            ``"auto"`` (default) picks the LP backend for pure linear programs
            and the barrier interior-point method otherwise, falling back to
            the scipy backend if the barrier method fails to converge.
            ``"barrier"``, ``"linprog"`` and ``"scipy"`` force a backend.
            ``"decomposed"`` solves block-structured programs by price
            coordination over per-block subproblems
            (:func:`repro.solver.decomposed.solve_decomposed`), accepting
            ``decomposed_``-prefixed options such as ``decomposed_workers``
            and ``decomposed_fanout`` alongside the barrier options.
        initial_point:
            Optional warm-start / strictly feasible hint keyed by variable.
        """
        from repro.solver import backends

        with obs_span("compile", program=self.name) as compile_span:
            compiled = self.compile()
        with obs_span("solve", program=self.name, backend=backend) as solve_span:
            solution = backends.solve_compiled(
                compiled, backend=backend, initial_point=initial_point, options=dict(options)
            )
            solve_span.set(backend_used=solution.backend, status=solution.status.value)
        solution.solve_time = solve_span.seconds
        solution.stats = dict(solution.stats)
        solution.stats["compile_time"] = compile_span.seconds
        if self._sense == "max" and solution.objective is not None:
            solution.objective = -solution.objective
        return solution

    def parametric(self) -> "ParametricProblem":  # noqa: F821 - forward ref
        """Compile once and wrap the result for repeated parametric re-solve.

        Returns a :class:`repro.solver.parametric.ParametricProblem`; register
        named right-hand-side / bound parameters on it and drive it through a
        :class:`repro.solver.parametric.SolveSession` to solve a family of
        related programs without re-compiling.
        """
        from repro.solver.parametric import ParametricProblem

        return ParametricProblem(self)

    def session(self, backend: str = "auto", **options: object) -> "SolveSession":  # noqa: F821
        """Shorthand for ``SolveSession(self.parametric(), backend, options)``."""
        from repro.solver.parametric import SolveSession

        return SolveSession(self.parametric(), backend=backend, options=options)

    # -- convenience -------------------------------------------------------------
    def sum(self, values: Sequence[ExpressionLike]) -> AffineExpression:
        """Alias for :func:`repro.solver.expression.linear_sum`."""
        return linear_sum(values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConeProgram({self.name!r}, variables={len(self._variables)}, "
            f"linear={len(self._linear)}, hyperbolic={len(self._hyperbolic)}, "
            f"cones={len(self._cones)})"
        )
