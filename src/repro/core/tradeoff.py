"""Budget / buffer-size trade-off exploration.

The experiments of the paper explore the non-linear trade-off between budgets
and buffer capacities by constraining the maximum buffer capacity and
recording the minimal budgets the SOCP returns (Figures 2(a), 2(b), 3).
:class:`TradeoffExplorer` automates that sweep for arbitrary configurations.

Every sweep point solves the *same* cone program up to a handful of bound
values, so the explorer drives an :class:`~repro.core.allocator.
AllocationSession`: the program is built and compiled once per sweep and each
point re-solves with the previous point's optimum as a warm start.  Per-point
solver statistics land in :attr:`TradeoffPoint.solve_stats` and the session
aggregate in :attr:`TradeoffCurve.solver_stats`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.exceptions import (
    InfeasibleModelError,
    InfeasibleProblemError,
    ModelError,
)
from repro.core.allocator import AllocatorOptions, JointAllocator
from repro.core.objective import ObjectiveWeights
from repro.taskgraph.configuration import Configuration, MappedConfiguration
from repro.taskgraph.workload import Workload


@dataclass
class TradeoffPoint:
    """One point of the trade-off curve: a capacity bound and the resulting mapping."""

    capacity_limit: int
    feasible: bool
    budgets: Dict[str, float] = field(default_factory=dict)
    relaxed_budgets: Dict[str, float] = field(default_factory=dict)
    capacities: Dict[str, int] = field(default_factory=dict)
    objective_value: Optional[float] = None
    #: Per-point solver statistics (phase-I skipped, Newton iterations, …).
    solve_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def total_budget(self) -> float:
        return sum(self.budgets.values())

    @property
    def total_relaxed_budget(self) -> float:
        return sum(self.relaxed_budgets.values())

    def budget(self, task_name: str) -> float:
        return self.budgets[task_name]


@dataclass
class TradeoffCurve:
    """A sequence of trade-off points indexed by the capacity limit."""

    configuration_name: str
    points: List[TradeoffPoint] = field(default_factory=list)
    #: Aggregate session statistics for the whole sweep
    #: (:meth:`repro.solver.parametric.SessionStats.as_dict`).
    solver_stats: Dict[str, object] = field(default_factory=dict)

    def feasible_points(self) -> List[TradeoffPoint]:
        return [point for point in self.points if point.feasible]

    def capacity_limits(self) -> List[int]:
        return [point.capacity_limit for point in self.points]

    def budgets_of(self, task_name: str, relaxed: bool = False) -> List[float]:
        """Budget of one task along the sweep (feasible points only)."""
        source = "relaxed_budgets" if relaxed else "budgets"
        return [getattr(point, source)[task_name] for point in self.feasible_points()]

    def total_budgets(self, relaxed: bool = False) -> List[float]:
        if relaxed:
            return [point.total_relaxed_budget for point in self.feasible_points()]
        return [point.total_budget for point in self.feasible_points()]

    def budget_reductions(self, task_name: Optional[str] = None, relaxed: bool = True) -> List[float]:
        """Per-step budget reduction (Figure 2(b) of the paper).

        Element ``i`` is the budget required at capacity limit ``d_i`` minus
        the budget required at ``d_{i+1}`` — the gain of adding one container.
        Relaxed budgets are used by default because the paper's plot is the
        continuous (pre-rounding) trade-off.
        """
        feasible = self.feasible_points()
        values: List[float] = []
        for before, after in zip(feasible, feasible[1:]):
            if task_name is None:
                values.append(
                    (before.total_relaxed_budget if relaxed else before.total_budget)
                    - (after.total_relaxed_budget if relaxed else after.total_budget)
                )
            else:
                source = "relaxed_budgets" if relaxed else "budgets"
                values.append(
                    getattr(before, source)[task_name] - getattr(after, source)[task_name]
                )
        return values

    def as_table(self) -> List[Dict[str, object]]:
        """Plain-dict rows used by the reporting helpers and benchmarks."""
        rows: List[Dict[str, object]] = []
        for point in self.points:
            row: Dict[str, object] = {
                "capacity_limit": point.capacity_limit,
                "feasible": point.feasible,
                "objective": point.objective_value,
                "total_budget": point.total_budget if point.feasible else None,
            }
            for task_name, budget in sorted(point.budgets.items()):
                row[f"budget[{task_name}]"] = budget
            for buffer_name, capacity in sorted(point.capacities.items()):
                row[f"capacity[{buffer_name}]"] = capacity
            rows.append(row)
        return rows


@dataclass
class DvfsPoint:
    """One point of a DVFS sweep: a speed assignment and the resulting mapping."""

    speeds: Dict[str, float]
    feasible: bool
    budgets: Dict[str, float] = field(default_factory=dict)
    relaxed_budgets: Dict[str, float] = field(default_factory=dict)
    capacities: Dict[str, int] = field(default_factory=dict)
    objective_value: Optional[float] = None

    @property
    def total_budget(self) -> float:
        return sum(self.budgets.values())


@dataclass
class DvfsSweep:
    """The full cartesian DVFS sweep of a configuration."""

    configuration_name: str
    points: List[DvfsPoint] = field(default_factory=list)

    def feasible_points(self) -> List[DvfsPoint]:
        return [point for point in self.points if point.feasible]

    def best(self) -> Optional[DvfsPoint]:
        """The feasible point with the lowest objective value, if any."""
        feasible = self.feasible_points()
        if not feasible:
            return None
        return min(feasible, key=lambda point: point.objective_value)


class TradeoffExplorer:
    """Sweep the maximum buffer capacity and record the minimal budgets."""

    def __init__(
        self,
        weights: Optional[ObjectiveWeights] = None,
        allocator_options: Optional[AllocatorOptions] = None,
    ) -> None:
        # The paper's sweeps minimise budgets first; buffer capacities enter
        # the objective only as a tie-breaker.
        self.weights = weights or ObjectiveWeights.prefer_budgets()
        self.allocator = JointAllocator(
            weights=self.weights, options=allocator_options or AllocatorOptions()
        )

    def sweep_capacity_limit(
        self,
        configuration: Configuration,
        capacity_limits: Sequence[int],
        buffers: Optional[Iterable[str]] = None,
    ) -> TradeoffCurve:
        """Solve the joint problem for each maximum capacity in ``capacity_limits``.

        Parameters
        ----------
        configuration:
            The configuration to sweep.
        capacity_limits:
            The capacity bounds to apply (in containers); each bound is applied
            to every buffer in ``buffers`` (default: all buffers).
        """
        buffer_names = list(buffers) if buffers is not None else [
            buffer.name for _, buffer in configuration.all_buffers()
        ]
        curve = TradeoffCurve(configuration_name=configuration.name)
        try:
            session = self.allocator.session(configuration)
        except InfeasibleProblemError:
            # The *unlimited* program is already contradictory (e.g. a task's
            # max_budget below its throughput-implied floor); capacity limits
            # only tighten it, so every sweep point is infeasible.
            curve.points = [
                TradeoffPoint(capacity_limit=int(limit), feasible=False)
                for limit in capacity_limits
            ]
            return curve
        for limit in capacity_limits:
            limits = {name: int(limit) for name in buffer_names}
            try:
                mapped = session.allocate(capacity_limits=limits)
            except InfeasibleProblemError:
                # A genuinely infeasible point is part of the curve; solver
                # failures (any other SolverError) propagate to the caller.
                curve.points.append(TradeoffPoint(capacity_limit=int(limit), feasible=False))
                continue
            curve.points.append(
                TradeoffPoint(
                    capacity_limit=int(limit),
                    feasible=True,
                    budgets=dict(mapped.budgets),
                    relaxed_budgets=dict(mapped.relaxed_budgets),
                    capacities=dict(mapped.buffer_capacities),
                    objective_value=mapped.objective_value,
                    solve_stats=dict(mapped.solver_info.get("solve_stats", {})),
                )
            )
        curve.solver_stats = session.stats.as_dict()
        return curve

    def sweep_application_capacity(
        self,
        workload: Workload,
        application: str,
        capacity_limits: Sequence[int],
        buffers: Optional[Iterable[str]] = None,
    ) -> TradeoffCurve:
        """Sweep one application's buffer-capacity bound inside a loaded platform.

        The rest of the workload stays untouched: every sweep point re-solves
        the *whole* block-structured program (the other applications' budgets
        may shift, since all applications share the processor capacity rows),
        but only the named application's buffers are constrained.  This is the
        admission-style question of the paper's setting: how much budget does
        one application need at each buffering level, given the platform is
        already shared?

        The sweep runs through a :class:`~repro.core.allocator.
        WorkloadSession`, so the program compiles once and every point
        warm-starts from its neighbour.  Budgets and capacities in the
        returned points are keyed ``"<application>/<name>"`` across *all*
        applications of the workload.

        Parameters
        ----------
        workload:
            The multi-application workload to sweep.
        application:
            Name of the application whose buffers are constrained.
        capacity_limits:
            The capacity bounds to apply (in containers); each bound is
            applied to every buffer in ``buffers`` (default: all of the
            application's buffers).
        """
        app = workload.application(application)
        buffer_names = list(buffers) if buffers is not None else app.buffer_names()
        unknown = sorted(set(buffer_names) - set(app.buffer_names()))
        if unknown:
            # A misspelled buffer would otherwise sweep the unconstrained
            # program silently, point after point.
            raise ModelError(
                f"application {application!r} has no buffer(s) {unknown}"
            )
        curve = TradeoffCurve(configuration_name=f"{workload.name}:{application}")
        try:
            session = self.allocator.workload_session(workload)
        except InfeasibleProblemError:
            # The *unlimited* workload program is already contradictory;
            # capacity limits only tighten it.
            curve.points = [
                TradeoffPoint(capacity_limit=int(limit), feasible=False)
                for limit in capacity_limits
            ]
            return curve
        for limit in capacity_limits:
            limits = {application: {name: int(limit) for name in buffer_names}}
            try:
                mapped = session.allocate(capacity_limits=limits)
            except InfeasibleProblemError:
                curve.points.append(
                    TradeoffPoint(capacity_limit=int(limit), feasible=False)
                )
                continue
            curve.points.append(
                TradeoffPoint(
                    capacity_limit=int(limit),
                    feasible=True,
                    budgets=mapped.flattened("budgets"),
                    relaxed_budgets=mapped.flattened("relaxed_budgets"),
                    capacities=mapped.flattened("buffer_capacities"),
                    objective_value=mapped.objective_value,
                    solve_stats=dict(mapped.solver_info.get("solve_stats", {})),
                )
            )
        curve.solver_stats = session.stats.as_dict()
        return curve

    def sweep_dvfs(
        self,
        configuration: Configuration,
        processors: Optional[Iterable[str]] = None,
    ) -> DvfsSweep:
        """Solve the joint problem at every discrete DVFS operating point.

        The cartesian product of the ``dvfs_levels`` of the swept processors
        (default: every processor that declares levels) is enumerated in
        deterministic order.  Unlike the capacity sweeps, a speed change
        alters the *coefficients* of the throughput constraints, which the
        parametric warm-start layer cannot express — so each point rebuilds
        the configuration via :meth:`~repro.taskgraph.platform.Platform.
        with_speeds` and solves it from scratch.  Operating points whose
        load screen or cone program is infeasible become infeasible sweep
        points rather than errors.
        """
        platform = configuration.platform
        if processors is None:
            names = [p.name for p in platform if p.dvfs_levels is not None]
        else:
            names = list(processors)
            for name in names:
                if platform.processor(name).dvfs_levels is None:
                    raise ModelError(
                        f"processor {name!r} declares no DVFS levels to sweep"
                    )
        if not names:
            raise ModelError(
                f"configuration {configuration.name!r} has no processor with "
                f"DVFS levels; nothing to sweep"
            )
        axes = [platform.processor(name).dvfs_levels for name in names]
        sweep = DvfsSweep(configuration_name=configuration.name)
        for combination in itertools.product(*axes):
            speeds = dict(zip(names, combination))
            clocked = Configuration(
                platform=platform.with_speeds(speeds),
                task_graphs=configuration.task_graphs,
                granularity=configuration.granularity,
                name=configuration.name,
            )
            try:
                mapped = self.allocator.allocate(clocked)
            except (InfeasibleModelError, InfeasibleProblemError):
                sweep.points.append(DvfsPoint(speeds=speeds, feasible=False))
                continue
            sweep.points.append(
                DvfsPoint(
                    speeds=speeds,
                    feasible=True,
                    budgets=dict(mapped.budgets),
                    relaxed_budgets=dict(mapped.relaxed_budgets),
                    capacities=dict(mapped.buffer_capacities),
                    objective_value=mapped.objective_value,
                )
            )
        return sweep

    def minimal_capacity_for_budget(
        self,
        configuration: Configuration,
        budget_limit: float,
        capacity_limits: Sequence[int],
    ) -> Optional[MappedConfiguration]:
        """Smallest capacity bound under which every task budget fits ``budget_limit``.

        Returns the mapped configuration at the first (smallest) feasible
        capacity bound, or ``None`` when even the largest bound is infeasible.
        This explores the trade-off from the other side: given scarce
        processor budget, how much buffering is needed?

        Only genuine infeasibility (:class:`InfeasibleProblemError`) advances
        the search to the next bound.  Any other
        :class:`~repro.exceptions.SolverError` — numerical failure, an
        unbounded program — propagates: silently treating a solver failure as
        "needs more buffering" would corrupt the reported minimal capacity.
        """
        budget_limits = {
            task.name: float(budget_limit)
            for _, task in configuration.all_tasks()
        }
        try:
            session = self.allocator.session(configuration)
        except InfeasibleProblemError:
            # The unlimited program is already contradictory; no capacity
            # bound can help.
            return None
        for limit in sorted(int(v) for v in capacity_limits):
            limits = {
                buffer.name: limit for _, buffer in configuration.all_buffers()
            }
            try:
                return session.allocate(
                    capacity_limits=limits, budget_limits=budget_limits
                )
            except InfeasibleProblemError:
                # Definite answer for this bound; try the next one.  Solver
                # failures (NumericalError, UnboundedProblemError, any other
                # SolverError) deliberately propagate.
                continue
        return None
