"""Unit tests for configurations, builders, validation and serialisation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import BindingError, ModelError
from repro.taskgraph import (
    Configuration,
    ConfigurationBuilder,
    MappedConfiguration,
    Memory,
    Platform,
    Processor,
    Task,
    TaskGraph,
)
from repro.taskgraph import serialization
from repro.taskgraph.validate import collect_warnings, validate_configuration


def _simple_configuration(memory_capacity=None, period=10.0) -> Configuration:
    builder = (
        ConfigurationBuilder(name="test", granularity=1.0)
        .processor("p1", replenishment_interval=40.0)
        .processor("p2", replenishment_interval=40.0)
        .memory("m1", capacity=memory_capacity)
        .task_graph("job", period=period)
        .task("a", wcet=1.0, processor="p1")
        .task("b", wcet=1.0, processor="p2")
        .buffer("ab", source="a", target="b", memory="m1")
    )
    return builder.build()


class TestConfiguration:
    def test_builder_produces_valid_configuration(self):
        config = _simple_configuration()
        assert len(config) == 1
        assert [t.name for _, t in config.all_tasks()] == ["a", "b"]
        assert [b.name for _, b in config.all_buffers()] == ["ab"]

    def test_duplicate_task_names_across_graphs_rejected(self):
        platform = Platform(processors=[Processor("p1", 40.0)], memories=[Memory("m1")])
        graph1 = TaskGraph("g1", period=10.0, tasks=[Task("a", 1.0, "p1")])
        graph2 = TaskGraph("g2", period=10.0, tasks=[Task("a", 1.0, "p1")])
        with pytest.raises(ModelError):
            Configuration(platform=platform, task_graphs=[graph1, graph2])

    def test_rejects_non_positive_granularity(self):
        platform = Platform(processors=[Processor("p1", 40.0)])
        with pytest.raises(ModelError):
            Configuration(platform=platform, granularity=0.0)

    def test_tasks_on_processor(self):
        config = _simple_configuration()
        assert [t.name for t in config.tasks_on_processor("p1")] == ["a"]
        with pytest.raises(BindingError):
            config.tasks_on_processor("p99")

    def test_buffers_in_memory(self):
        config = _simple_configuration()
        assert [b.name for b in config.buffers_in_memory("m1")] == ["ab"]

    def test_find_task_and_buffer(self):
        config = _simple_configuration()
        graph, task = config.find_task("b")
        assert graph.name == "job" and task.processor == "p2"
        with pytest.raises(ModelError):
            config.find_task("nope")
        with pytest.raises(ModelError):
            config.find_buffer("nope")


class TestValidation:
    def test_valid_configuration_passes(self):
        validate_configuration(_simple_configuration())

    def test_unknown_processor_binding_detected(self):
        platform = Platform(processors=[Processor("p1", 40.0)], memories=[Memory("m1")])
        graph = TaskGraph("g", period=10.0, tasks=[Task("a", 1.0, "p_missing")])
        config = Configuration(platform=platform, task_graphs=[graph])
        with pytest.raises(BindingError):
            validate_configuration(config)

    def test_wcet_exceeding_period_detected(self):
        with pytest.raises(ModelError):
            _simple_configuration(period=0.5).validate()

    def test_overloaded_processor_detected(self):
        builder = (
            ConfigurationBuilder(name="overload", granularity=1.0)
            .processor("p1", replenishment_interval=40.0)
            .memory("m1")
            .task_graph("job", period=10.0)
        )
        # Each task needs at least 40·4/10 = 16 budget + 1 granule; four such
        # tasks cannot fit in a 40-cycle replenishment interval.
        for i in range(4):
            builder.task(f"t{i}", wcet=4.0, processor="p1")
        with pytest.raises(ModelError):
            builder.build()

    def test_memory_too_small_detected(self):
        with pytest.raises(ModelError):
            _simple_configuration(memory_capacity=0.5).validate()

    def test_empty_configuration_rejected(self):
        platform = Platform(processors=[Processor("p1", 40.0)])
        config = Configuration(platform=platform)
        with pytest.raises(ModelError):
            validate_configuration(config)

    def test_warnings_for_disconnected_graph(self):
        config = _simple_configuration()
        graph = config.task_graph("job")
        graph.add_task(Task("orphan", wcet=1.0, processor="p1"))
        warnings = collect_warnings(config)
        assert any("not weakly connected" in w for w in warnings)

    def test_warning_for_large_wcet(self):
        builder = (
            ConfigurationBuilder(name="warn", granularity=1.0)
            .processor("p1", replenishment_interval=40.0)
            .processor("p2", replenishment_interval=40.0)
            .memory("m1")
            .task_graph("job", period=30.0)
            .task("a", wcet=25.0, processor="p1")
            .task("b", wcet=1.0, processor="p2")
            .buffer("ab", source="a", target="b", memory="m1")
        )
        warnings = collect_warnings(builder.build())
        assert any("more than half" in w for w in warnings)


class TestBuilder:
    def test_task_before_graph_rejected(self):
        builder = ConfigurationBuilder().processor("p1", 40.0).memory("m1")
        with pytest.raises(ModelError):
            builder.task("a", wcet=1.0, processor="p1")

    def test_multiple_graphs(self):
        config = (
            ConfigurationBuilder(name="multi")
            .processor("p1", 40.0)
            .processor("p2", 40.0)
            .memory("m1")
            .task_graph("j1", period=10.0)
            .task("a1", wcet=1.0, processor="p1")
            .task("b1", wcet=1.0, processor="p2")
            .buffer("f1", source="a1", target="b1", memory="m1")
            .task_graph("j2", period=20.0)
            .task("a2", wcet=1.0, processor="p1")
            .task("b2", wcet=1.0, processor="p2")
            .buffer("f2", source="a2", target="b2", memory="m1")
            .build()
        )
        assert len(config) == 2
        assert config.task_graph("j2").period == 20.0


class TestMappedConfiguration:
    def _mapped(self) -> MappedConfiguration:
        config = _simple_configuration()
        return MappedConfiguration(
            configuration=config,
            budgets={"a": 18.0, "b": 20.0},
            buffer_capacities={"ab": 5},
        )

    def test_accessors(self):
        mapped = self._mapped()
        assert mapped.budget("a") == 18.0
        assert mapped.capacity("ab") == 5
        with pytest.raises(ModelError):
            mapped.budget("zzz")
        with pytest.raises(ModelError):
            mapped.capacity("zzz")

    def test_totals_and_utilisation(self):
        mapped = self._mapped()
        assert mapped.total_budget() == pytest.approx(38.0)
        assert mapped.total_budget("p1") == pytest.approx(18.0)
        assert mapped.total_storage() == pytest.approx(5.0)
        assert mapped.processor_utilisation("p2") == pytest.approx(0.5)

    def test_as_dict(self):
        data = self._mapped().as_dict()
        assert data["budgets"]["a"] == 18.0
        assert data["buffer_capacities"]["ab"] == 5


class TestSerialization:
    def test_round_trip(self):
        config = _simple_configuration(memory_capacity=64.0)
        text = serialization.configuration_to_json(config)
        restored = serialization.configuration_from_json(text)
        assert restored.name == config.name
        assert restored.granularity == config.granularity
        assert sorted(restored.platform.processors) == sorted(config.platform.processors)
        original_graph = config.task_graph("job")
        restored_graph = restored.task_graph("job")
        assert restored_graph.period == original_graph.period
        assert restored_graph.task("a").wcet == original_graph.task("a").wcet
        assert restored_graph.buffer("ab").memory == "m1"

    def test_save_and_load(self, tmp_path):
        config = _simple_configuration()
        path = tmp_path / "config.json"
        serialization.save_configuration(config, path)
        restored = serialization.load_configuration(path)
        assert restored.name == config.name

    def test_newer_format_version_rejected(self):
        data = serialization.configuration_to_dict(_simple_configuration())
        data["format_version"] = 99
        with pytest.raises(ModelError):
            serialization.configuration_from_dict(data)

    def test_mapped_configuration_to_dict_embeds_configuration(self):
        config = _simple_configuration()
        mapped = MappedConfiguration(
            configuration=config, budgets={"a": 4.0, "b": 4.0}, buffer_capacities={"ab": 10}
        )
        data = serialization.mapped_configuration_to_dict(mapped)
        assert data["configuration"]["name"] == "test"
        assert data["budgets"]["a"] == 4.0


@settings(max_examples=30, deadline=None)
@given(
    processors=st.integers(min_value=1, max_value=4),
    period=st.floats(min_value=5.0, max_value=50.0, allow_nan=False),
    wcet=st.floats(min_value=0.1, max_value=2.0, allow_nan=False),
    container=st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
    tokens=st.integers(min_value=0, max_value=3),
)
def test_serialization_round_trip_property(processors, period, wcet, container, tokens):
    """Property: configurations survive a dict round-trip unchanged."""
    builder = ConfigurationBuilder(name="prop", granularity=1.0)
    for i in range(processors):
        builder.processor(f"p{i + 1}", replenishment_interval=40.0)
    builder.memory("m1")
    builder.task_graph("job", period=period)
    builder.task("src", wcet=min(wcet, period), processor="p1")
    builder.task("dst", wcet=min(wcet, period), processor=f"p{processors}")
    builder.buffer(
        "flow",
        source="src",
        target="dst",
        memory="m1",
        container_size=container,
        initial_tokens=tokens,
    )
    config = builder.build(validate=False)
    restored = serialization.configuration_from_dict(
        serialization.configuration_to_dict(config)
    )
    graph = restored.task_graph("job")
    assert graph.period == pytest.approx(period)
    assert graph.task("src").wcet == pytest.approx(min(wcet, period))
    assert graph.buffer("flow").container_size == pytest.approx(container)
    assert graph.buffer("flow").initial_tokens == tokens
    assert len(restored.platform.processors) == processors
